#!/usr/bin/env python3
"""Cache-model enhancements: hardware prefetching and non-allocating stores.

The paper's headline conclusion is that the cache-coherent model, once
extended with a stream prefetcher and "Prepare For Store" (PFS)
non-allocating writes, matches the streaming memory system.  This script
demonstrates both mechanisms on FIR and MergeSort (Sections 5.4 / 5.5):

1. prefetching at 2 cores / 3.2 GHz / 12.8 GB/s virtually eliminates
   data stalls (Figure 7),
2. PFS on the output stream removes the superfluous write-allocate
   refills, restoring off-chip-traffic parity with streaming (Figure 8).
"""

from repro import run_workload


def show(label, result):
    f = result.breakdown.fractions()
    print(f"  {label:14s} time={result.exec_time_ms:8.3f} ms  "
          f"load-stall={f['load'] * 100:5.1f}%  "
          f"read={result.traffic.read_bytes / 1e6:6.2f} MB  "
          f"write={result.traffic.write_bytes / 1e6:6.2f} MB  "
          f"energy={result.energy.total * 1e3:7.3f} mJ")


def main() -> None:
    kwargs = dict(cores=2, clock_ghz=3.2, bandwidth_gbps=12.8,
                  preset="small")

    print("== Hardware prefetching (Figure 7 conditions) ==")
    for app in ("merge", "art"):
        print(f"{app}:")
        show("CC", run_workload(app, "cc", **kwargs))
        show("CC + prefetch", run_workload(app, "cc", prefetch=True, **kwargs))
        show("STR", run_workload(app, "str", **kwargs))

    print("\n== Prepare For Store (Figure 8 conditions, 16 cores) ==")
    for app in ("fir", "merge", "mpeg2"):
        print(f"{app}:")
        show("CC", run_workload(app, "cc", cores=16, preset="small"))
        show("CC + PFS", run_workload(app, "cc", cores=16, preset="small",
                                      overrides={"pfs": True}))
        show("STR", run_workload(app, "str", cores=16, preset="small"))

    print("\nWith prefetching hiding latency and PFS eliminating refills,")
    print("the cache-based system matches streaming — the paper's central")
    print("argument against building pure streaming memory systems.")


if __name__ == "__main__":
    main()
