#!/usr/bin/env python3
"""Core-count scaling of both memory models (the paper's Figure 2).

Sweeps 2-16 cores for a selection of applications and prints the
normalized execution-time breakdown, reproducing the central result of
the paper: for data-parallel applications with reuse the two models
perform and scale equally well, while data-bound applications reveal
streaming's latency tolerance (FIR, MergeSort) or its write-back
overhead (BitonicSort).

Usage::

    python examples/memory_model_comparison.py [app ...]

Defaults to a representative subset; pass ``all`` for the full suite
(several minutes).
"""

import sys

from repro.harness import Runner, figure2
from repro.harness.experiments import ALL_WORKLOADS

DEFAULT_APPS = ["depth", "fir", "merge", "bitonic"]


def main() -> None:
    args = sys.argv[1:]
    if args == ["all"]:
        apps = ALL_WORKLOADS
    elif args:
        apps = args
    else:
        apps = DEFAULT_APPS

    runner = Runner(preset="small")
    result = figure2(runner, workloads=apps)

    for app in apps:
        print(f"\n== {app} (normalized to 1 cache-based core) ==")
        print(f"{'cores':>5s} | {'CC total':>9s} {'useful':>7s} {'sync':>6s} "
              f"{'load':>6s} | {'STR total':>9s} {'useful':>7s} {'sync':>6s}")
        for cores in (2, 4, 8, 16):
            cc = result.one(app=app, model="cc", cores=cores)
            st = result.one(app=app, model="str", cores=cores)
            print(f"{cores:5d} | {cc['normalized_time']:9.4f} "
                  f"{cc['useful']:7.4f} {cc['sync']:6.4f} {cc['load']:6.4f} "
                  f"| {st['normalized_time']:9.4f} {st['useful']:7.4f} "
                  f"{st['sync']:6.4f}")
        cc16 = result.one(app=app, model="cc", cores=16)["normalized_time"]
        st16 = result.one(app=app, model="str", cores=16)["normalized_time"]
        who = "streaming" if st16 < cc16 else "cache-coherent"
        print(f"   -> at 16 cores, {who} is "
              f"{abs(cc16 - st16) / max(cc16, st16) * 100:.0f}% ahead")


if __name__ == "__main__":
    main()
