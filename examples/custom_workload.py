#!/usr/bin/env python3
"""Writing your own workload against the simulator's public API.

The eleven paper applications are all built from the same small
vocabulary: threads are generators yielding operations
(:mod:`repro.core.ops`), synchronized with barriers/task queues, over
arrays laid out by an :class:`~repro.workloads.base.Arena`.  This example
builds a simple histogram kernel from scratch in both memory models and
runs it — the pattern to follow for studying your own kernels.
"""

from repro import MachineConfig, run_program
from repro.core.ops import (
    barrier_wait,
    compute,
    dma_get,
    dma_wait,
    load,
    local_load,
    store,
)
from repro.core.sync import Barrier
from repro.workloads.base import Arena, Env, Program, partition

N_ITEMS = 1 << 16          # 256 KB of 32-bit samples
BINS = 256
CYCLES_PER_ITEM = 6        # hash + increment on the 3-way VLIW


def build_histogram(model: str, num_cores: int) -> Program:
    """Per-core private histograms, merged after a barrier."""
    arena = Arena()
    samples = arena.alloc(N_ITEMS * 4, "samples")
    histograms = arena.alloc(num_cores * BINS * 4, "histograms")
    merged = arena.alloc(BINS * 4, "merged")
    barrier = Barrier(num_cores, "hist.merge")

    def cached_thread(env: Env):
        start, count = partition(N_ITEMS, num_cores, env.core_id)
        my_hist = histograms + env.core_id * BINS * 4
        for offset in range(start * 4, (start + count) * 4, 32):
            yield load(samples + offset, 32)
            # Bin updates hit the (cache-resident) private histogram.
            yield compute(8 * CYCLES_PER_ITEM, l1_accesses=8)
        yield store(my_hist, BINS * 4)
        yield barrier_wait(barrier)
        # Core 0 merges all the private histograms.
        if env.core_id == 0:
            for core in range(num_cores):
                yield load(histograms + core * BINS * 4, BINS * 4)
                yield compute(BINS)
            yield store(merged, BINS * 4)

    def streaming_thread(env: Env):
        start, count = partition(N_ITEMS, num_cores, env.core_id)
        block = 2048  # bytes per DMA block
        buf = env.local_store.alloc(2 * block, "samples")
        hist_buf = env.local_store.alloc(BINS * 4, "histogram")
        offsets = list(range(start * 4, (start + count) * 4, block))
        if offsets:
            yield dma_get(0, samples + offsets[0], block)
        for i, offset in enumerate(offsets):
            if i + 1 < len(offsets):
                yield dma_get((i + 1) & 1, samples + offsets[i + 1], block)
            yield dma_wait(i & 1)
            yield local_load(buf + (i & 1) * block, block)
            yield compute((block // 4) * CYCLES_PER_ITEM,
                          l1_accesses=block // 4)
        yield local_load(hist_buf, BINS * 4)
        yield store(histograms + env.core_id * BINS * 4, BINS * 4)
        yield barrier_wait(barrier)
        if env.core_id == 0:
            for core in range(num_cores):
                yield load(histograms + core * BINS * 4, BINS * 4)
                yield compute(BINS)
            yield store(merged, BINS * 4)

    thread = cached_thread if model == "cc" else streaming_thread
    return Program("histogram", [thread] * num_cores, arena)


def main() -> None:
    print(f"histogram over {N_ITEMS} samples, {BINS} bins\n")
    for cores in (1, 4, 16):
        row = []
        for model in ("cc", "str"):
            config = MachineConfig(num_cores=cores).with_model(model)
            result = run_program(config, build_histogram(model, cores))
            row.append(f"{model}: {result.exec_time_ms:7.3f} ms "
                       f"({result.traffic.total_bytes / 1e6:.2f} MB off-chip)")
        print(f"{cores:2d} cores   " + "   ".join(row))
    print("\nBoth models read every sample exactly once; the streaming")
    print("version hides the fetch latency behind the binning compute.")


if __name__ == "__main__":
    main()
