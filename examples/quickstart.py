#!/usr/bin/env python3
"""Quickstart: compare the two memory models on one application.

Runs the FIR filter — the paper's canonical bandwidth-sensitive kernel —
on a 16-core CMP under both the coherent-cache (CC) and streaming (STR)
memory models, and prints execution time, its breakdown, off-chip
traffic, and energy.

Usage::

    python examples/quickstart.py [workload] [cores]

Defaults to ``fir`` on 16 cores.  Any registered workload name works;
run ``python -c "import repro; print(repro.workload_names())"`` to list
them.
"""

import sys

from repro import run_workload, workload_names


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "fir"
    cores = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    if workload not in workload_names():
        raise SystemExit(
            f"unknown workload {workload!r}; choose from {workload_names()}"
        )

    print(f"== {workload} on {cores} cores @ 800 MHz ==\n")
    header = (f"{'model':6s} {'time (ms)':>10s} {'useful':>7s} {'sync':>6s} "
              f"{'load':>6s} {'store':>6s} {'off-chip MB':>12s} "
              f"{'energy (mJ)':>12s}")
    print(header)
    print("-" * len(header))
    results = {}
    for model in ("cc", "str"):
        r = run_workload(workload, model=model, cores=cores, preset="small")
        results[model] = r
        f = r.breakdown.fractions()
        print(f"{model:6s} {r.exec_time_ms:10.3f} {f['useful']:7.2f} "
              f"{f['sync']:6.2f} {f['load']:6.2f} {f['store']:6.2f} "
              f"{r.traffic.total_bytes / 1e6:12.2f} "
              f"{r.energy.total * 1e3:12.3f}")

    cc, st = results["cc"], results["str"]
    ratio = cc.exec_time_fs / st.exec_time_fs
    print(f"\ncache-coherent / streaming execution time: {ratio:.2f}x")
    traffic_ratio = cc.traffic.total_bytes / max(1, st.traffic.total_bytes)
    print(f"cache-coherent / streaming off-chip traffic: {traffic_ratio:.2f}x")
    print("\nSee examples/memory_model_comparison.py for the full",
          "core-count sweep (the paper's Figure 2).")


if __name__ == "__main__":
    main()
