#!/usr/bin/env python3
"""Trace recording, locality analysis, and run profiling.

Records the demand-access trace of two contrasting applications —
MPEG-2 (blocked, heavy reuse) and the original 179.art layout (sparse
strides, no reuse) — and shows how the offline tools expose what the
paper's Table 3 summarizes: reuse-distance profiles, ideal-cache hit
rates versus capacity, and where loads were served.  Also demonstrates
the interval profiler's activity sparklines.
"""

from repro import MachineConfig
from repro.core.system import CmpSystem
from repro.sim.sampling import IntervalSampler
from repro.trace import (
    TraceRecorder,
    footprint,
    hit_rate_for_capacity,
    latency_histogram,
)
from repro.units import ns_to_fs
from repro.workloads import get_workload


def analyze(name: str, overrides: dict | None = None) -> None:
    config = MachineConfig(num_cores=4)
    program = get_workload(name).build("cc", config, preset="tiny",
                                       overrides=overrides)
    system = CmpSystem(config, program)
    recorder = TraceRecorder(system)
    sampler = IntervalSampler(system, interval_fs=ns_to_fs(20_000))
    sampler.start()
    system.run()

    loads = [r for r in recorder.records if r.kind == "ld"][:20_000]
    label = name + (" (original layout)" if overrides else "")
    print(f"== {label} ==")
    print(f"  accesses traced : {len(recorder)}")
    print(f"  line footprint  : {footprint(recorder.records)} lines "
          f"({footprint(recorder.records) * 32 // 1024} KB)")
    print("  ideal LRU hit rate by capacity:")
    for lines in (64, 256, 1024):
        rate = hit_rate_for_capacity(loads, lines)
        print(f"    {lines * 32 // 1024:4d} KB: {rate * 100:5.1f}%")
    bands = latency_histogram(recorder.records)
    total = sum(bands.values()) or 1
    print("  where loads were served: "
          + "  ".join(f"{k}={v * 100 // total}%" for k, v in bands.items()))
    print(sampler.render(width=60))
    print()


def main() -> None:
    analyze("mpeg2")
    analyze("art", overrides={"layout": "original"})
    print("MPEG-2's blocked macroblock loop keeps its working set small")
    print("(high hit rates at tiny capacities); the unoptimized 179.art")
    print("drags a cache line per word and defeats any capacity — the")
    print("contrast behind the paper's Figure 10.")


if __name__ == "__main__":
    main()
