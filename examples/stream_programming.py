#!/usr/bin/env python3
"""Stream programming as a software discipline (Figures 9 and 10).

Section 6 of the paper argues the real win is *stream programming*, not
streaming hardware: restructuring cache-based code with blocking,
loop fusion, and locality-aware scheduling delivers most of the benefit
on plain coherent caches.  This script contrasts the original and
stream-optimized cache-based variants of MPEG-2 and 179.art.
"""

from repro import run_workload


def compare(app: str, overrides_orig: dict, cores: int) -> None:
    opt = run_workload(app, "cc", cores=cores, preset="small")
    orig = run_workload(app, "cc", cores=cores, preset="small",
                        overrides=overrides_orig)
    speedup = orig.exec_time_fs / opt.exec_time_fs
    print(f"{app} @ {cores} cores:")
    print(f"  original   : {orig.exec_time_ms:8.3f} ms, "
          f"traffic {orig.traffic.total_bytes / 1e6:6.2f} MB, "
          f"L1 write-backs {orig.stats['l1.writebacks']}")
    print(f"  optimized  : {opt.exec_time_ms:8.3f} ms, "
          f"traffic {opt.traffic.total_bytes / 1e6:6.2f} MB, "
          f"L1 write-backs {opt.stats['l1.writebacks']}")
    print(f"  -> stream programming speedup: {speedup:.1f}x")


def main() -> None:
    print("== MPEG-2: kernel-per-frame vs fused macroblock pipeline ==")
    print("(the paper reports ~40% at 16 cores and 60% fewer write-backs)")
    compare("mpeg2",
            {"structure": "original", "icache_miss_per_mb": 0}, cores=16)

    print()
    print("== 179.art: SPEC array-of-structures vs restructured SoA ==")
    print("(the paper reports a 7x speedup even at small core counts)")
    compare("art", {"layout": "original"}, cores=2)

    print()
    print("The optimizations help the *cache-based* system — evidence that")
    print("'streaming at the programming model level is very important,")
    print("even with the cache-based model' (Section 5, conclusions).")


if __name__ == "__main__":
    main()
