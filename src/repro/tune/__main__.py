"""``python -m repro.tune`` — same surface as ``python -m repro tune``."""

import sys

from repro.tune.cli import main

if __name__ == "__main__":
    sys.exit(main())
