"""Command-line surface of the design-space autotuner.

Usage::

    python -m repro tune fir merge --preset tiny --budget 24
    python -m repro tune fir --budget 40 --jobs 4 --out frontier.json
    python -m repro tune fir --budget 24 --area-mm2 80 --energy-mj 5
    python -m repro tune fir --budget 24 --axis cores=2,4 --axis l2_kb=512
    python -m repro tune fir --budget 24 --serve /tmp/repro.sock
    python -m repro tune space

``tune`` searches the machine design space for the perf/energy Pareto
frontier of the given workload set.  Every probe flows through the
content-addressed result store (same resolution rules as ``repro
grid``: ``--store PATH``, else ``$REPRO_STORE``, else ``.repro-cache``),
so a killed search resumes where it stopped and re-running a finished
search launches zero new simulations.  ``--serve ADDR`` routes probes
through a running ``python -m repro serve start`` server instead of a
local pool.  ``tune space`` prints the axes and their candidate values.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.grid.cli import resolve_store
from repro.tune.search import ServeExecutor, TuneError, tune
from repro.tune.space import DesignSpace


def parse_axes(entries: list[str]) -> dict[str, tuple]:
    """``NAME=V1,V2,...`` option strings -> DesignSpace values dict."""
    values: dict[str, tuple] = {}
    for entry in entries:
        name, sep, text = entry.partition("=")
        if not sep or not text:
            raise SystemExit(f"--axis wants NAME=V1,V2,..., got {entry!r}")
        parts = [p.strip() for p in text.split(",") if p.strip()]
        if name == "model":
            values[name] = tuple(parts)
        else:
            try:
                values[name] = tuple(int(p) for p in parts)
            except ValueError:
                raise SystemExit(
                    f"axis {name!r} wants integer values, got {text!r}")
    return values


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro tune",
        description="search the machine design space for the "
                    "perf/energy Pareto frontier")
    sub = parser.add_subparsers(dest="command")

    search = sub.add_parser(
        "search", help="run the search (the default subcommand)")
    search.add_argument("workloads", nargs="+",
                        help="workload names to tune for")
    search.add_argument("--preset", default="tiny",
                        choices=["default", "small", "tiny"])
    search.add_argument("--budget", type=int, default=32, metavar="N",
                        help="max unique probes, point x workload "
                             "(default: 32)")
    search.add_argument("--wall-seconds", type=float, metavar="S",
                        help="stop refining after S seconds of wall "
                             "clock (host-dependent; see docs/TUNE.md)")
    search.add_argument("--seed", type=int, default=0,
                        help="exploration seed (default: 0)")
    search.add_argument("--jobs", type=int,
                        default=max(1, (os.cpu_count() or 1) // 2),
                        help="local worker processes")
    search.add_argument("--store", metavar="PATH",
                        help="result store directory (default: "
                             "$REPRO_STORE or .repro-cache)")
    search.add_argument("--no-store", action="store_true",
                        help="do not persist results (disables resume)")
    search.add_argument("--serve", metavar="ADDR",
                        help="route probes through a repro.serve server "
                             "(unix socket path or host:port)")
    search.add_argument("--area-mm2", type=float, metavar="MM2",
                        help="total silicon area cap")
    search.add_argument("--energy-mj", type=float, metavar="MJ",
                        help="total energy cap over the workload set")
    search.add_argument("--axis", action="append", default=[],
                        metavar="NAME=V1,V2",
                        help="override one axis's candidate values "
                             "(repeatable)")
    search.add_argument("--out", metavar="PATH",
                        help="write the frontier artifact as JSON")
    search.add_argument("--no-scatter", action="store_true",
                        help="omit the ASCII scatter plot")

    sub.add_parser("space", help="print the search axes and values")
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # "search" is the default subcommand: `repro tune fir --budget 8`
    # and `repro tune search fir --budget 8` are the same invocation.
    if argv and argv[0] not in ("space", "search", "-h", "--help"):
        argv.insert(0, "search")
    args = build_parser().parse_args(argv)

    if args.command == "space":
        print(DesignSpace().describe())
        return 0
    if args.command is None:
        build_parser().print_help()
        return 2

    try:
        space = DesignSpace(parse_axes(args.axis))
    except ValueError as exc:
        raise SystemExit(str(exc))

    executor = None
    if args.serve:
        executor = ServeExecutor(args.serve)
    store = resolve_store(args.store, args.no_store)

    try:
        result = tune(
            args.workloads, space=space, budget=args.budget,
            preset=args.preset, seed=args.seed, executor=executor,
            jobs=args.jobs, store=store,
            area_cap_mm2=args.area_mm2, energy_cap_mj=args.energy_mj,
            wall_budget_s=args.wall_seconds,
            log=lambda msg: print(f"tune: {msg}", flush=True))
    except TuneError as exc:
        raise SystemExit(f"tune: {exc}")
    finally:
        if executor is not None:
            executor.close()

    from repro.tune.report import render_report

    print()
    print(render_report(result, scatter=not args.no_scatter))
    if args.out:
        result.save(args.out)
        print(f"\nwrote {args.out}")
    return 0 if result.frontier else 1


if __name__ == "__main__":
    raise SystemExit(main())
