"""Text rendering of a finished tuner search."""

from __future__ import annotations

from repro.harness.reports import format_table, render_scatter
from repro.tune.search import TuneResult


def _ratio(value: float | None) -> str:
    return "-" if value is None else f"{value:.3f}"


def render_frontier(result: TuneResult) -> str:
    """The frontier table, prior-vs-measured column included."""
    headers = ["design point", "stage", "time ms", "energy mJ",
               "area mm2", "prior/meas"]
    rows = [[c.point.key(), c.stage, c.measured_time_ms,
             c.measured_energy_mj, c.area_mm2, _ratio(c.prior_ratio())]
            for c in result.frontier]
    if not rows:
        return ("(empty frontier — every probed candidate failed "
                "or was infeasible)")
    return format_table(headers, rows)


def render_validation(result: TuneResult) -> str:
    """Prior-vs-measured cross-validation summary block."""
    v = result.validation
    if not v or not v.get("points"):
        return "prior validation: no measured points"
    return (
        f"prior validation over {v['points']} measured point(s):\n"
        f"  time   rank correlation (Spearman)  "
        f"{v['time_rank_correlation']:+.3f}\n"
        f"  energy rank correlation (Spearman)  "
        f"{v['energy_rank_correlation']:+.3f}\n"
        f"  time   median abs relative error    "
        f"{v['time_median_abs_rel_error'] * 100:.1f}%")


def render_report(result: TuneResult, scatter: bool = True) -> str:
    """The full ``repro tune`` report, ready to print."""
    lines = [
        f"tuned {', '.join(result.workloads)} (preset {result.preset}) — "
        f"space {result.space_size}, budget {result.budget}, "
        f"seed {result.seed}",
        f"probes {result.probes}  launched {result.runs_launched}  "
        f"store hits {result.store_hits}  pruned {result.pruned}"
        + ("  [wall budget hit]" if result.truncated else ""),
        "",
        f"Pareto frontier ({len(result.frontier)} point(s), "
        f"minimizing time and energy):",
        render_frontier(result),
    ]
    if scatter and any(c.measured for c in result.candidates):
        frontier_keys = {c.point.key() for c in result.frontier}
        # Frontier points drawn last so their '*' wins shared cells.
        cloud = sorted((c for c in result.candidates if c.measured),
                       key=lambda c: c.point.key() in frontier_keys)
        points = [{"time_ms": c.measured_time_ms,
                   "energy_mj": c.measured_energy_mj,
                   "marker": "*" if c.point.key() in frontier_keys
                   else "."} for c in cloud]
        lines += ["", "measured candidates (* = frontier):",
                  render_scatter(points, "time_ms", "energy_mj")]
    lines += ["", render_validation(result)]
    return "\n".join(lines)


__all__ = ["render_frontier", "render_report", "render_validation"]
