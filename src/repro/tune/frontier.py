"""Candidates, measurements, and the perf/energy Pareto frontier."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tune.space import DesignPoint


@dataclass
class Candidate:
    """One design point with its prior estimate and (maybe) measurements.

    ``measured_*`` aggregate over the workload set: execution times and
    energies summed across every workload probed at this point (all
    workloads weigh equally; a point is only comparable when every one
    of its probes succeeded).  ``area_mm2`` comes from the analytical
    area model and exists before any simulation does.
    """

    point: DesignPoint
    prior_time_ms: float
    prior_energy_mj: float
    area_mm2: float
    feasible: bool = True
    infeasible_reason: str | None = None
    stage: str = "screen"          # "calibrate" | "screen" | "refine"
    measured_time_ms: float | None = None
    measured_energy_mj: float | None = None
    per_workload: dict[str, dict] = field(default_factory=dict)
    failures: list[str] = field(default_factory=list)

    @property
    def measured(self) -> bool:
        """True when every workload probe of this point succeeded."""
        return self.measured_time_ms is not None and not self.failures

    def prior_ratio(self) -> float | None:
        """prior/measured time ratio (the cross-validation column)."""
        if not self.measured or not self.measured_time_ms:
            return None
        return self.prior_time_ms / self.measured_time_ms

    def to_dict(self) -> dict:
        """JSON-safe record for the frontier artifact."""
        return {
            "point": self.point.to_dict(),
            "key": self.point.key(),
            "stage": self.stage,
            "prior_time_ms": self.prior_time_ms,
            "prior_energy_mj": self.prior_energy_mj,
            "area_mm2": self.area_mm2,
            "feasible": self.feasible,
            "infeasible_reason": self.infeasible_reason,
            "measured_time_ms": self.measured_time_ms,
            "measured_energy_mj": self.measured_energy_mj,
            "prior_ratio": self.prior_ratio(),
            "per_workload": self.per_workload,
            "failures": self.failures,
        }


def pareto_frontier(candidates: list[Candidate]) -> list[Candidate]:
    """The non-dominated measured candidates, sorted by time.

    Minimizes ``(measured_time_ms, measured_energy_mj)``: a candidate
    is dominated when another is no worse on both objectives and
    strictly better on at least one.  Duplicate objective pairs keep
    only the first in input order, so the frontier — like the search —
    is deterministic.
    """
    measured = [c for c in candidates if c.measured]
    measured.sort(key=lambda c: (c.measured_time_ms, c.measured_energy_mj,
                                 c.point.key()))
    frontier: list[Candidate] = []
    best_energy = float("inf")
    seen: set[tuple] = set()
    for candidate in measured:
        pair = (candidate.measured_time_ms, candidate.measured_energy_mj)
        if pair in seen:
            continue
        if candidate.measured_energy_mj < best_energy:
            frontier.append(candidate)
            seen.add(pair)
            best_energy = candidate.measured_energy_mj
    return frontier


__all__ = ["Candidate", "pareto_frontier"]
