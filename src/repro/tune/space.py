"""The machine design space the autotuner searches.

A :class:`DesignSpace` is a small lattice: one tuple of candidate
values per axis, crossed into :class:`DesignPoint` lattice points.  The
axes cover the machine parameters the paper holds fixed at Table 2's
bolded values — exactly the parameters the CC-vs-STR conclusions are
conditioned on:

========  =====================================================
axis      meaning
========  =====================================================
model     memory model (``cc`` / ``str``)
cores     processor count
l1_kb     first-level data storage capacity (KB) — the D-cache
          under CC, the stream cache under STR
l1_assoc  its associativity
l2_kb     shared L2 capacity (KB)
l2_assoc  L2 associativity
pf_depth  stream-prefetcher depth, 0 = prefetcher off
channels  independent DRAM channels
========  =====================================================

Every point expands to a :class:`~repro.grid.spec.RunSpec` via
``config_overrides`` (dotted :class:`~repro.config.MachineConfig`
paths), so probes flow through the ordinary grid store/scheduler fabric
and are content-addressed like any other run.  Enumeration order is the
deterministic lexicographic product of the axis tuples — the search is
reproducible because the space is.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields

from repro.grid.spec import RunSpec

#: Axis names, in enumeration order (= DesignPoint field order).
AXES = ("model", "cores", "l1_kb", "l1_assoc", "l2_kb", "l2_assoc",
        "pf_depth", "channels")

#: Default per-axis candidate values.  The Table 2 baseline is a lattice
#: point of every axis (32 KB appears for CC's D-cache; 8 KB is STR's
#: stream cache), so the paper's design point is always reachable.
DEFAULT_VALUES: dict[str, tuple] = {
    "model": ("cc", "str"),
    "cores": (1, 2, 4, 8),
    "l1_kb": (8, 16, 32, 64),
    "l1_assoc": (2, 4),
    "l2_kb": (256, 512, 1024),
    "l2_assoc": (8, 16),
    "pf_depth": (0, 4, 8),
    "channels": (1, 2, 4),
}


@dataclass(frozen=True)
class DesignPoint:
    """One fully-specified machine candidate (a lattice point)."""

    model: str
    cores: int
    l1_kb: int
    l1_assoc: int
    l2_kb: int
    l2_assoc: int
    pf_depth: int
    channels: int

    def key(self) -> str:
        """Short stable identity for tables, JSON, and dedup sets."""
        return (f"{self.model}-c{self.cores}"
                f"-l1:{self.l1_kb}x{self.l1_assoc}"
                f"-l2:{self.l2_kb}x{self.l2_assoc}"
                f"-pf{self.pf_depth}-ch{self.channels}")

    def config_overrides(self) -> dict:
        """The dotted MachineConfig overrides this point expands to.

        The ``l1_*`` axes configure the first-level storage of the
        *active* model: ``config.l1`` under CC/ICC, ``config.stream_l1``
        under STR (the local store stays at Table 2's 24 KB).  That
        keeps the axis meaningful in both mappings without minting
        aliased candidates that only differ in a dormant cache block.
        """
        l1_block = "stream_l1" if self.model == "str" else "l1"
        return {
            f"{l1_block}.capacity_bytes": self.l1_kb * 1024,
            f"{l1_block}.associativity": self.l1_assoc,
            "l2.capacity_bytes": self.l2_kb * 1024,
            "l2.associativity": self.l2_assoc,
            "dram.channels": self.channels,
        }

    def to_spec(self, workload: str, preset: str = "default") -> RunSpec:
        """The grid :class:`RunSpec` probing this point on ``workload``."""
        return RunSpec(
            workload, model=self.model, cores=self.cores,
            prefetch=self.pf_depth > 0,
            prefetch_depth=self.pf_depth if self.pf_depth > 0 else 4,
            preset=preset, config_overrides=self.config_overrides())

    def to_config(self):
        """Expand to a validated :class:`MachineConfig` (may raise)."""
        return self.to_spec("fir").to_config()

    def is_valid(self) -> bool:
        """True when the point expands to a constructible machine."""
        try:
            self.to_config()
        except ValueError:
            return False
        return True

    def to_dict(self) -> dict:
        """JSON-safe description, axis name -> value."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "DesignPoint":
        """Rebuild a point written by :meth:`to_dict`."""
        return cls(**data)


class DesignSpace:
    """A validated lattice of :class:`DesignPoint` candidates."""

    def __init__(self, values: dict[str, tuple] | None = None) -> None:
        merged = dict(DEFAULT_VALUES)
        for name, axis_values in (values or {}).items():
            if name not in DEFAULT_VALUES:
                raise ValueError(
                    f"unknown design axis {name!r}; expected one of "
                    f"{', '.join(AXES)}")
            if not axis_values:
                raise ValueError(f"axis {name!r} needs at least one value")
            merged[name] = tuple(axis_values)
        self.values = merged

    @property
    def size(self) -> int:
        """Number of lattice points (before validity filtering)."""
        out = 1
        for name in AXES:
            out *= len(self.values[name])
        return out

    def points(self):
        """Yield every *valid* point in deterministic product order.

        Lattice points whose geometry violates a config invariant (e.g.
        a set count that is not a power of two) are silently skipped —
        the lattice is a candidate generator, not a promise.
        """
        for combo in itertools.product(*(self.values[a] for a in AXES)):
            point = DesignPoint(*combo)
            if point.is_valid():
                yield point

    def baseline(self, model: str) -> DesignPoint:
        """The lattice point closest to the Table 2 machine for ``model``.

        Used to calibrate the analytical prior: for each axis, pick the
        candidate value nearest the paper's default (32 KB 2-way
        D-cache / 8 KB 2-way stream cache, 512 KB 16-way L2, prefetcher
        off, one channel, 8 cores).
        """
        targets = {
            "cores": 8,
            "l1_kb": 8 if model == "str" else 32,
            "l1_assoc": 2,
            "l2_kb": 512,
            "l2_assoc": 16,
            "pf_depth": 0,
            "channels": 1,
        }
        chosen: dict[str, object] = {"model": model}
        if model not in self.values["model"]:
            raise ValueError(f"model {model!r} is not in this space")
        for axis, target in targets.items():
            chosen[axis] = min(self.values[axis],
                               key=lambda v: (abs(v - target), v))
        point = DesignPoint(**chosen)  # type: ignore[arg-type]
        if point.is_valid():
            return point
        # A customized space may make the nearest-to-default combo
        # invalid; fall back to the first valid point of this model.
        for candidate in self.points():
            if candidate.model == model:
                return candidate
        raise ValueError(f"no valid {model!r} point in this space")

    def neighbors(self, point: DesignPoint):
        """Yield the valid one-axis-step lattice neighbours of ``point``.

        The refinement moves of the search: for each axis, the adjacent
        candidate values (one step down, one step up) with every other
        axis held fixed.  Deterministic order: axes in :data:`AXES`
        order, down before up.
        """
        for axis in AXES:
            axis_values = self.values[axis]
            index = axis_values.index(getattr(point, axis))
            for step in (-1, 1):
                other = index + step
                if not 0 <= other < len(axis_values):
                    continue
                neighbour = DesignPoint(
                    **{**point.to_dict(), axis: axis_values[other]})
                if neighbour.is_valid():
                    yield neighbour

    def describe(self) -> str:
        """One line per axis, for ``tune space`` and error messages."""
        lines = [f"{name:9s} {', '.join(map(str, self.values[name]))}"
                 for name in AXES]
        return "\n".join(lines)


__all__ = ["AXES", "DEFAULT_VALUES", "DesignPoint", "DesignSpace"]
