"""The design-space search loop: calibrate, screen, refine, report.

Strategy (see ``docs/TUNE.md`` for the full contract):

1. **Calibrate** — one baseline probe per workload and memory model (the
   lattice point nearest Table 2).  These runs seed the analytical
   prior (:class:`repro.tune.prior.Prior`).
2. **Screen** — every lattice point is priced by the area model and the
   prior; infeasible points (area/energy caps) are pruned without
   simulation; the rest are ranked by prior energy-delay product and
   the best are probed, with a seeded exploration slice (one quarter of
   the screen budget) drawn from the rest of the feasible space so a
   miscalibrated prior cannot hide a whole region.
3. **Refine** — while budget remains, the measured Pareto frontier's
   one-axis lattice neighbours are probed, best-prior-first.

**Budget** counts *unique probes* — distinct (design point, workload)
simulation requests — not launched processes.  Every probe flows
through the content-addressed store, so a warm re-run of the same
search makes the same requests, hits the store every time, and launches
zero new simulations; a killed search re-launches only the probes that
had not settled.  The search itself is deterministic for a fixed
(workloads, space, seed, budget): candidate ranking depends only on the
prior and on measured results, both of which are reproducible, and
outcomes are re-ordered from completion order back into request order
before any decision reads them.  (`--wall-seconds` is the exception: a
wall-clock stop is inherently host-dependent, so only the run-count
budget gives bit-identical frontiers.)

Wall-clock reads below time the *orchestration* layer only, hence the
REPRO001 exemptions, as everywhere outside the simulator core.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.energy.area import machine_area_mm2
from repro.grid.scheduler import GridScheduler, RunOutcome
from repro.grid.store import ResultStore
from repro.tune.frontier import Candidate, pareto_frontier
from repro.tune.prior import Calibration, Prior, spearman_rank_correlation
from repro.tune.space import DesignPoint, DesignSpace

#: Fraction of the post-calibration budget reserved for refinement.
REFINE_FRACTION = 0.35
#: Fraction of the screening slice spent on seeded exploration.
EXPLORE_FRACTION = 0.25


class TuneError(RuntimeError):
    """The search cannot proceed (bad budget, failed calibration, ...)."""


class GridExecutor:
    """Probe executor over the local process pool + result store."""

    def __init__(self, jobs: int = 1, store: ResultStore | None = None,
                 timeout_s: float | None = None) -> None:
        self.scheduler = GridScheduler(jobs=jobs, store=store,
                                       timeout_s=timeout_s)

    def run_batch(self, specs) -> dict[str, RunOutcome]:
        """Settle one batch; returns ``{content_key: outcome}``."""
        return self.scheduler.run_batch(specs)

    def describe(self) -> str:
        store = self.scheduler.store
        where = store.root if store is not None else "no store"
        return f"local pool ({self.scheduler.jobs} jobs, {where})"

    def close(self) -> None:
        """Nothing persistent to release."""


class ServeExecutor:
    """Probe executor over a running ``repro serve`` server.

    ``address`` is a unix-socket path, or ``host:port`` / ``:port`` for
    TCP.  Reuses the one blocking :class:`~repro.serve.client.ServeClient`
    for every batch, so a long search holds a single connection and
    benefits from the server's cross-client in-flight deduplication.
    """

    def __init__(self, address: str, timeout_s: float | None = None) -> None:
        from repro.serve.client import ServeClient

        host, port = _parse_address(address)
        if port is None:
            self.client = ServeClient.connect(socket_path=address,
                                              timeout_s=timeout_s)
        else:
            self.client = ServeClient.connect(host=host, port=port,
                                              timeout_s=timeout_s)
        self._address = address

    def run_batch(self, specs) -> dict[str, RunOutcome]:
        """Submit one batch to the server; returns ``{key: outcome}``."""
        report = self.client.submit(specs)
        return {outcome.key: outcome for outcome in report.outcomes}

    def describe(self) -> str:
        return f"serve at {self._address}"

    def close(self) -> None:
        self.client.close()


def _parse_address(address: str) -> tuple[str | None, int | None]:
    """``host:port``/``:port`` -> (host, port); anything else is a path."""
    if ":" in address:
        host, _, port_text = address.rpartition(":")
        if port_text.isdigit():
            return host or "127.0.0.1", int(port_text)
    return None, None


@dataclass
class TuneResult:
    """Everything one search produced, JSON-ready."""

    workloads: list[str]
    preset: str
    seed: int
    budget: int
    space_size: int
    candidates: list[Candidate] = field(default_factory=list)
    frontier: list[Candidate] = field(default_factory=list)
    probes: int = 0
    runs_launched: int = 0
    store_hits: int = 0
    pruned: int = 0
    truncated: bool = False
    wall_s: float = 0.0
    validation: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """The frontier artifact (stable key order via save_json)."""
        return {
            "schema": 1,
            "workloads": self.workloads,
            "preset": self.preset,
            "seed": self.seed,
            "budget": self.budget,
            "space_size": self.space_size,
            "probes": self.probes,
            "runs_launched": self.runs_launched,
            "store_hits": self.store_hits,
            "pruned": self.pruned,
            "truncated": self.truncated,
            "wall_s": self.wall_s,
            "validation": self.validation,
            "frontier": [c.to_dict() for c in self.frontier],
            "candidates": [c.to_dict() for c in self.candidates],
        }

    def save(self, path) -> None:
        """Write the artifact as stable, diff-friendly JSON."""
        import json

        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


def tune(workloads, space: DesignSpace | None = None, budget: int = 32,
         preset: str = "tiny", seed: int = 0,
         executor=None, jobs: int = 1, store: ResultStore | None = None,
         area_cap_mm2: float | None = None,
         energy_cap_mj: float | None = None,
         wall_budget_s: float | None = None,
         log=None) -> TuneResult:
    """Search the design space; returns the settled :class:`TuneResult`.

    ``budget`` caps the number of unique probes (point × workload
    simulation requests), calibration included.  ``executor`` defaults
    to a :class:`GridExecutor` over ``jobs``/``store``; pass a
    :class:`ServeExecutor` to route probes through a server instead.
    """
    workloads = list(dict.fromkeys(workloads))
    if not workloads:
        raise TuneError("need at least one workload")
    space = space or DesignSpace()
    say = log if log is not None else (lambda _msg: None)
    started = time.perf_counter()  # repro-lint: disable=REPRO001
    owns_executor = executor is None
    if executor is None:
        executor = GridExecutor(jobs=jobs, store=store)

    models = list(space.values["model"])
    calibration_probes = len(models) * len(workloads)
    if budget < calibration_probes:
        raise TuneError(
            f"budget {budget} is below the {calibration_probes} "
            f"calibration probe(s) ({len(models)} model(s) x "
            f"{len(workloads)} workload(s))")

    result = TuneResult(workloads=workloads, preset=preset, seed=seed,
                        budget=budget, space_size=space.size)
    #: Global probe ledger: spec content key -> settled outcome.  Budget
    #: is its size; re-requesting a settled key is free.
    ledger: dict[str, RunOutcome] = {}

    def execute(points: list[DesignPoint]) -> None:
        """Probe every workload at every point, filling the ledger."""
        specs = []
        for point in points:
            for workload in workloads:
                spec = point.to_spec(workload, preset)
                if spec.content_key() not in ledger:
                    specs.append(spec)
        if not specs:
            return
        settled = executor.run_batch(specs)
        for spec in specs:
            key = spec.content_key()
            outcome = settled.get(key)
            if outcome is None:      # skipped by a dying executor
                continue
            ledger[key] = outcome
            if outcome.source == "run":
                result.runs_launched += 1
            else:
                result.store_hits += 1

    def out_of_time() -> bool:
        if wall_budget_s is None:
            return False
        return (time.perf_counter() - started) >= wall_budget_s  # repro-lint: disable=REPRO001

    def remaining() -> int:
        return budget - len(ledger)

    def affordable(points: list[DesignPoint], cap: int) -> list[DesignPoint]:
        """Longest prefix of ``points`` whose new probes fit ``cap``."""
        chosen: list[DesignPoint] = []
        cost = 0
        seen_keys = set(ledger)
        for point in points:
            new = [point.to_spec(w, preset).content_key()
                   for w in workloads]
            fresh = [k for k in new if k not in seen_keys]
            if cost + len(fresh) > cap:
                break
            seen_keys.update(fresh)
            cost += len(fresh)
            chosen.append(point)
        return chosen

    # -- 1. calibrate ----------------------------------------------------
    baselines = {model: space.baseline(model) for model in models}
    say(f"calibrating {len(models)} model(s) x {len(workloads)} "
        f"workload(s) at the Table 2 baseline points")
    execute(list(baselines.values()))
    priors: dict[tuple[str, str], Prior] = {}
    for model, point in baselines.items():
        for workload in workloads:
            key = point.to_spec(workload, preset).content_key()
            outcome = ledger.get(key)
            if outcome is None or outcome.status != "ok":
                detail = outcome.failure.message if outcome is not None \
                    and outcome.failure is not None else "no outcome"
                raise TuneError(
                    f"calibration run {workload}/{model} failed: {detail}")
            priors[(workload, model)] = Prior(
                Calibration.from_result(point, outcome.result))

    # -- 2. price and prune the lattice ----------------------------------
    candidates: dict[str, Candidate] = {}
    for point in space.points():
        prior_time = sum(priors[(w, point.model)].time_ms(point)
                         for w in workloads)
        prior_energy = sum(priors[(w, point.model)].energy_mj(point)
                           for w in workloads)
        area = machine_area_mm2(point.to_config())["total"]
        candidate = Candidate(point=point, prior_time_ms=prior_time,
                              prior_energy_mj=prior_energy, area_mm2=area)
        if area_cap_mm2 is not None and area > area_cap_mm2:
            candidate.feasible = False
            candidate.infeasible_reason = (
                f"area {area:.1f} mm2 > cap {area_cap_mm2:.1f} mm2")
        elif energy_cap_mj is not None and prior_energy > energy_cap_mj:
            candidate.feasible = False
            candidate.infeasible_reason = (
                f"prior energy {prior_energy:.2f} mJ > cap "
                f"{energy_cap_mj:.2f} mJ")
        candidates[point.key()] = candidate
    for model, point in baselines.items():
        if point.key() in candidates:
            candidates[point.key()].stage = "calibrate"
    result.pruned = sum(1 for c in candidates.values() if not c.feasible)
    feasible = [c for c in candidates.values() if c.feasible]
    feasible.sort(key=lambda c: (c.prior_time_ms * c.prior_energy_mj,
                                 c.point.key()))
    say(f"space: {len(candidates)} valid point(s), {result.pruned} pruned "
        f"by constraints, {len(feasible)} feasible")

    # -- 3. screen -------------------------------------------------------
    rng = random.Random(seed)
    probed: set[str] = {p.key() for p in baselines.values()}
    screen_cap = max(0, round(remaining() * (1.0 - REFINE_FRACTION)))
    ranked = [c for c in feasible if c.point.key() not in probed]
    exploit_n = len(affordable([c.point for c in ranked], screen_cap))
    explore_n = max(0, round(exploit_n * EXPLORE_FRACTION))
    exploit = [c.point for c in ranked[:exploit_n - explore_n]]
    rest = [c.point for c in ranked[exploit_n - explore_n:]]
    explore = [rest[i] for i in sorted(rng.sample(
        range(len(rest)), min(explore_n, len(rest))))] if rest else []
    screen_points = affordable(exploit + explore, screen_cap)
    if screen_points and not out_of_time():
        say(f"screening {len(screen_points)} candidate(s) "
            f"({len(explore)} seeded-exploration)")
        execute(screen_points)
        for point in screen_points:
            candidates[point.key()].stage = "screen"
            probed.add(point.key())

    # -- aggregate measurements ------------------------------------------
    def settle(candidate: Candidate) -> None:
        total_time = total_energy = 0.0
        per_workload: dict[str, dict] = {}
        failures: list[str] = []
        for workload in workloads:
            key = candidate.point.to_spec(workload, preset).content_key()
            outcome = ledger.get(key)
            if outcome is None:
                return               # never probed: leave unmeasured
            if outcome.status != "ok":
                failures.append(
                    f"{workload}: {outcome.failure.kind}: "
                    f"{outcome.failure.message}")
                continue
            run = outcome.result
            time_ms = run.exec_time_ms
            energy_mj = run.energy.total * 1e3
            per_workload[workload] = {"time_ms": time_ms,
                                      "energy_mj": energy_mj}
            total_time += time_ms
            total_energy += energy_mj
        candidate.failures = failures
        candidate.per_workload = per_workload
        if not failures:
            candidate.measured_time_ms = total_time
            candidate.measured_energy_mj = total_energy
            if energy_cap_mj is not None and total_energy > energy_cap_mj:
                candidate.feasible = False
                candidate.infeasible_reason = (
                    f"measured energy {total_energy:.2f} mJ > cap "
                    f"{energy_cap_mj:.2f} mJ")

    for key in sorted(probed):
        if key in candidates:
            settle(candidates[key])

    # -- 4. refine around the frontier -----------------------------------
    while remaining() > 0 and not out_of_time():
        frontier_now = pareto_frontier(
            [c for c in candidates.values() if c.feasible])
        fresh: list[DesignPoint] = []
        fresh_keys: set[str] = set()
        for candidate in frontier_now:
            for neighbour in space.neighbors(candidate.point):
                n_key = neighbour.key()
                if n_key in probed or n_key in fresh_keys:
                    continue
                neighbour_candidate = candidates.get(n_key)
                if neighbour_candidate is None \
                        or not neighbour_candidate.feasible:
                    continue
                fresh.append(neighbour)
                fresh_keys.add(n_key)
        if not fresh:
            break
        fresh.sort(key=lambda p: (
            candidates[p.key()].prior_time_ms
            * candidates[p.key()].prior_energy_mj, p.key()))
        batch = affordable(fresh, remaining())
        if not batch:
            break
        say(f"refining {len(batch)} frontier neighbour(s), "
            f"{remaining()} probe(s) of budget left")
        execute(batch)
        for point in batch:
            candidates[point.key()].stage = "refine"
            probed.add(point.key())
            settle(candidates[point.key()])
    result.truncated = out_of_time()

    # -- 5. assemble ------------------------------------------------------
    ordered = sorted((candidates[k] for k in probed if k in candidates),
                     key=lambda c: c.point.key())
    result.candidates = ordered
    result.frontier = pareto_frontier([c for c in ordered if c.feasible])
    result.probes = len(ledger)
    result.validation = _validation([c for c in ordered if c.measured])
    result.wall_s = time.perf_counter() - started  # repro-lint: disable=REPRO001
    if owns_executor:
        executor.close()
    return result


def _validation(measured: list[Candidate]) -> dict:
    """Prior-vs-measured cross-validation summary over measured points."""
    if not measured:
        return {"points": 0}
    prior_t = [c.prior_time_ms for c in measured]
    meas_t = [c.measured_time_ms for c in measured]
    prior_e = [c.prior_energy_mj for c in measured]
    meas_e = [c.measured_energy_mj for c in measured]
    abs_err = sorted(abs(p / m - 1.0) for p, m in zip(prior_t, meas_t)
                     if m)
    median_err = abs_err[len(abs_err) // 2] if abs_err else 0.0
    return {
        "points": len(measured),
        "time_rank_correlation": spearman_rank_correlation(prior_t, meas_t),
        "energy_rank_correlation": spearman_rank_correlation(prior_e,
                                                             meas_e),
        "time_median_abs_rel_error": median_err,
    }


__all__ = ["GridExecutor", "ServeExecutor", "TuneError", "TuneResult",
           "tune", "REFINE_FRACTION", "EXPLORE_FRACTION"]
