"""Analytical performance/energy prior, adapted from Yavits et al.

Yavits, Morad & Ginosar (*Cache Hierarchy Optimization*, PAPERS.md)
solve cache sizing analytically by combining a power-law miss model
with area/power/bandwidth resource constraints.  The tuner uses the
same ingredients as a **prior**: a closed-form estimate of execution
time and energy for every lattice point, calibrated against **one
measured baseline run per workload and model**, used to (a) rank
candidates so simulation budget goes to promising machines first,
(b) prune candidates that cannot meet an area/energy cap, and (c)
publish a prior-vs-measured cross-validation table so the prior's
quality is a reported number, not an assumption.

The model, per workload (all counts from the calibration run):

* **miss rates** follow the square-root capacity power law
  ``m(C) = m_base * (C_base / C)^0.5`` with a weak associativity term
  ``(A_base / A)^0.2``, clamped to [0, 1] — the classic √2 rule Yavits
  et al. build on;
* **compute time** is the baseline useful time, work-conserved across
  cores (``* cores_base / cores``); **sync time** scales with
  ``log2(cores) + 1`` (barrier trees);
* **memory time** is a roofline: the larger of a latency term
  (misses × their L2/DRAM service times, divided across cores, shrunk
  by prefetch depth ``1 / (1 + depth/4)``) and a bandwidth term
  (estimated off-chip bytes over ``channels`` × per-channel rate);
* **energy** charges the CACTI-flavoured per-access energies of the
  *candidate's* arrays (:func:`repro.energy.cacti.sram_energy`), DRAM
  per-byte/per-access energy, and leakage × predicted time.

Both predictions are calibrated multiplicatively so the prior is exact
at the baseline point; everything else is an extrapolation whose error
the cross-validation table reports.  The prior never replaces
simulation — it only orders and prunes candidates; every frontier
point is a measured run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import MachineConfig, MemoryModel
from repro.energy.cacti import sram_energy
from repro.energy.model import EnergyParams
from repro.results import RunResult
from repro.tune.space import DesignPoint

#: Power-law exponents of the miss model.
_CAPACITY_EXP = 0.5
_ASSOC_EXP = 0.2


@dataclass(frozen=True)
class Calibration:
    """Baseline measurements of one workload under one memory model."""

    workload: str
    model: str
    point: DesignPoint
    instructions: int
    word_accesses: int
    l1_miss_rate: float
    l2_miss_rate: float
    useful_fs: float
    sync_fs: float
    exec_time_ms: float
    energy_mj: float
    offchip_bytes: float

    @classmethod
    def from_result(cls, point: DesignPoint,
                    result: RunResult) -> "Calibration":
        """Extract the calibration numbers from a finished baseline run."""
        return cls(
            workload=result.workload, model=result.model, point=point,
            instructions=result.instructions,
            word_accesses=max(1, result.word_accesses),
            l1_miss_rate=result.l1_miss_rate,
            l2_miss_rate=result.l2_miss_rate,
            useful_fs=result.breakdown.useful_fs,
            sync_fs=result.breakdown.sync_fs,
            exec_time_ms=result.exec_time_ms,
            energy_mj=result.energy.total * 1e3,
            offchip_bytes=float(result.traffic.total_bytes),
        )


def _first_level(point: DesignPoint) -> tuple[int, int]:
    """(capacity_kb, associativity) of the point's L1 data storage."""
    return point.l1_kb, point.l1_assoc


def _miss_scale(base_kb: int, base_assoc: int, kb: int, assoc: int) -> float:
    """Power-law miss-rate multiplier of a geometry change."""
    return ((base_kb / kb) ** _CAPACITY_EXP
            * (base_assoc / assoc) ** _ASSOC_EXP)


class Prior:
    """Closed-form time/energy estimates for one calibrated workload."""

    def __init__(self, calibration: Calibration,
                 config: MachineConfig | None = None,
                 params: EnergyParams | None = None) -> None:
        self.calibration = calibration
        #: Uncore timing/energy constants shared by every candidate.
        self.config = config or MachineConfig()
        self.params = params or EnergyParams()
        base = calibration.point
        # Calibrate multiplicatively: the raw formulas are first-order,
        # so anchor them to the measured baseline instead of trusting
        # their absolute scale.
        self._time_scale = 1.0
        raw = self._raw_time_ms(base)
        self._time_scale = calibration.exec_time_ms / raw if raw > 0 else 1.0
        self._energy_scale = 1.0
        raw_e = self._raw_energy_mj(base)
        self._energy_scale = calibration.energy_mj / raw_e if raw_e > 0 \
            else 1.0

    # -- miss model ------------------------------------------------------

    def l1_miss_rate(self, point: DesignPoint) -> float:
        """Predicted L1 miss rate at ``point`` (clamped to [0, 1])."""
        base = self.calibration.point
        base_kb, base_assoc = _first_level(base)
        kb, assoc = _first_level(point)
        return min(1.0, self.calibration.l1_miss_rate
                   * _miss_scale(base_kb, base_assoc, kb, assoc))

    def l2_miss_rate(self, point: DesignPoint) -> float:
        """Predicted L2 miss rate at ``point`` (clamped to [0, 1])."""
        base = self.calibration.point
        return min(1.0, self.calibration.l2_miss_rate
                   * _miss_scale(base.l2_kb, base.l2_assoc,
                                 point.l2_kb, point.l2_assoc))

    # -- time ------------------------------------------------------------

    def _raw_time_ms(self, point: DesignPoint) -> float:
        cal = self.calibration
        base = cal.point
        config = self.config
        # Compute and sync: work-conserving core scaling, log-tree sync.
        compute_ms = cal.useful_fs * 1e-12 * (base.cores / point.cores)
        sync_base = math.log2(base.cores) + 1.0
        sync_ms = cal.sync_fs * 1e-12 \
            * ((math.log2(point.cores) + 1.0) / sync_base)
        # Latency roofline leg: every L1 miss pays L2, L2 misses pay
        # DRAM; misses spread across cores; prefetch hides a depth-
        # dependent fraction of the service time.
        m1 = self.l1_miss_rate(point)
        m2 = self.l2_miss_rate(point)
        misses1 = cal.word_accesses * m1
        t_l2_ms = config.l2_latency_ns * 1e-6
        t_dram_ms = config.dram.latency_ns * 1e-6
        hide = 1.0 / (1.0 + point.pf_depth / 4.0)
        lat_ms = misses1 * (t_l2_ms + m2 * t_dram_ms) * hide / point.cores
        # Bandwidth roofline leg: off-chip bytes scale with the L1 miss
        # rate (more misses, more fills + write-backs); every channel
        # has the full per-channel rate.
        bytes_est = cal.offchip_bytes * (m1 / max(cal.l1_miss_rate, 1e-12))
        rate_bytes_per_ms = config.dram.bandwidth_gbps * 1e6
        bw_ms = bytes_est / (rate_bytes_per_ms * point.channels)
        return compute_ms + sync_ms + max(lat_ms, bw_ms)

    def time_ms(self, point: DesignPoint) -> float:
        """Predicted execution time at ``point``, in milliseconds."""
        return self._raw_time_ms(point) * self._time_scale

    # -- energy ----------------------------------------------------------

    def _raw_energy_mj(self, point: DesignPoint) -> float:
        cal = self.calibration
        params = self.params
        kb, assoc = _first_level(point)
        l1_sram = sram_energy(kb * 1024, assoc)
        l2_sram = sram_energy(point.l2_kb * 1024, point.l2_assoc)
        m1 = self.l1_miss_rate(point)
        m2 = self.l2_miss_rate(point)
        misses1 = cal.word_accesses * m1
        bytes_est = cal.offchip_bytes * (m1 / max(cal.l1_miss_rate, 1e-12))
        seconds = self._raw_time_ms(point) * self._time_scale * 1e-3
        dynamic_j = (
            cal.instructions * params.core_instruction_pj * 1e-12
            + cal.word_accesses * l1_sram.read_j
            + misses1 * l2_sram.read_j
            + bytes_est * params.dram_pj_per_byte * 1e-12
            + misses1 * m2 * params.dram_access_pj * 1e-12
        )
        static_j = (
            point.cores * (params.core_leakage_mw * 1e-3
                           + l1_sram.leakage_w)
            + l2_sram.leakage_w
            + params.dram_background_mw * 1e-3 * point.channels
        ) * seconds
        return (dynamic_j + static_j) * 1e3

    def energy_mj(self, point: DesignPoint) -> float:
        """Predicted total energy at ``point``, in millijoules."""
        return self._raw_energy_mj(point) * self._energy_scale

    def score(self, point: DesignPoint) -> float:
        """Ranking score (lower is better): energy-delay product."""
        return self.time_ms(point) * self.energy_mj(point)


def spearman_rank_correlation(xs: list[float], ys: list[float]) -> float:
    """Spearman's rho between two equal-length samples (no SciPy).

    Ties get their average rank.  Returns 0.0 for degenerate inputs
    (fewer than two points, or a constant sample).
    """
    if len(xs) != len(ys):
        raise ValueError("samples must have equal length")
    n = len(xs)
    if n < 2:
        return 0.0

    def ranks(values: list[float]) -> list[float]:
        order = sorted(range(n), key=lambda i: values[i])
        out = [0.0] * n
        i = 0
        while i < n:
            j = i
            while j + 1 < n and values[order[j + 1]] == values[order[i]]:
                j += 1
            avg = (i + j) / 2.0 + 1.0
            for k in range(i, j + 1):
                out[order[k]] = avg
            i = j + 1
        return out

    rx, ry = ranks(list(xs)), ranks(list(ys))
    mean = (n + 1) / 2.0
    cov = sum((a - mean) * (b - mean) for a, b in zip(rx, ry))
    var_x = sum((a - mean) ** 2 for a in rx)
    var_y = sum((b - mean) ** 2 for b in ry)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


__all__ = ["Calibration", "Prior", "spearman_rank_correlation"]
