"""Design-space autotuner over the grid fabric (``python -m repro tune``).

Searches the :class:`~repro.config.MachineConfig` space — first-level
cache capacity/associativity, L2 geometry, prefetch depth, DRAM
channels, core count, CC vs STR — for the perf/energy Pareto frontier
of a workload set, under a probe budget and optional area/energy caps:

* :mod:`repro.tune.space` — the design lattice and its RunSpec mapping,
* :mod:`repro.tune.prior` — the calibrated analytical prior (after
  Yavits et al.) that ranks and prunes candidates,
* :mod:`repro.tune.frontier` — candidates and the Pareto sweep,
* :mod:`repro.tune.search` — calibrate / screen / refine over the
  :class:`~repro.grid.scheduler.GridScheduler` or a ``repro.serve``
  server; every probe is content-addressed, so searches resume from
  the store and warm re-runs launch nothing,
* :mod:`repro.tune.report` — the frontier table, scatter, and
  prior-vs-measured validation block.
"""

from repro.tune.frontier import Candidate, pareto_frontier
from repro.tune.prior import Calibration, Prior, spearman_rank_correlation
from repro.tune.search import (
    GridExecutor,
    ServeExecutor,
    TuneError,
    TuneResult,
    tune,
)
from repro.tune.space import AXES, DEFAULT_VALUES, DesignPoint, DesignSpace

__all__ = [
    "AXES", "DEFAULT_VALUES", "Calibration", "Candidate", "DesignPoint",
    "DesignSpace", "GridExecutor", "Prior", "ServeExecutor", "TuneError",
    "TuneResult", "pareto_frontier", "spearman_rank_correlation", "tune",
]
