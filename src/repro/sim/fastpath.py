"""The run-until-miss fast-path switch.

The processor's hot loop (see :mod:`repro.core.processor`) can execute
consecutive compute operations and guaranteed-L1-hit accesses without
re-entering the event queue, falling back to the event-driven slow path
only at misses, synchronization, DMA waits, and pending-event boundaries.
The fast path is *bit-identical* to the slow path by construction (the
elided events are the core's own back-to-back resume events, which the
kernel would pop next in any case) — but because "identical by
construction" is a claim worth distrusting, the escape hatch

    REPRO_FASTPATH=0 python -m repro ...

forces the original one-event-per-quantum execution, and the invariance
tests in ``tests/test_fastpath.py`` diff full result rows across both
modes.  Only ``stats["sim.events"]`` may differ (that is the point).

The block interpreter (PR 5) has the same shape: workloads may yield
:class:`repro.core.ops.OpBlock` templates that the processor replays in
a tight inner loop — or, when every touched line is a guaranteed hit and
the event-queue head lies beyond the block, retires in closed form.  Its
escape hatch is

    REPRO_BLOCKS=0 python -m repro ...

which makes the processor materialize every block back into the plain
per-op stream, exercising the original dispatch arms unchanged.  The two
hatches compose: ``REPRO_FASTPATH=0 REPRO_BLOCKS=0`` is the seed's
execution model, byte for byte.

Both flags are read when a system is constructed, not at import time, so
tests can toggle them per-run with ``monkeypatch.setenv``.
"""

from __future__ import annotations

import os

#: Values of ``REPRO_FASTPATH`` / ``REPRO_BLOCKS`` that disable the path.
_OFF_VALUES = frozenset({"0", "false", "off", "no"})


def fastpath_enabled() -> bool:
    """True unless ``REPRO_FASTPATH`` is set to 0/false/off/no."""
    # Sanctioned construction-time read: the hierarchy resolves this once
    # when the system is built, never mid-run.
    raw = os.environ.get("REPRO_FASTPATH", "1")  # repro-lint: disable=REPRO007
    return raw.strip().lower() not in _OFF_VALUES


def blocks_enabled() -> bool:
    """True unless ``REPRO_BLOCKS`` is set to 0/false/off/no."""
    raw = os.environ.get("REPRO_BLOCKS", "1")  # repro-lint: disable=REPRO007
    return raw.strip().lower() not in _OFF_VALUES
