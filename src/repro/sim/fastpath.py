"""The run-until-miss fast-path switch.

The processor's hot loop (see :mod:`repro.core.processor`) can execute
consecutive compute operations and guaranteed-L1-hit accesses without
re-entering the event queue, falling back to the event-driven slow path
only at misses, synchronization, DMA waits, and pending-event boundaries.
The fast path is *bit-identical* to the slow path by construction (the
elided events are the core's own back-to-back resume events, which the
kernel would pop next in any case) — but because "identical by
construction" is a claim worth distrusting, the escape hatch

    REPRO_FASTPATH=0 python -m repro ...

forces the original one-event-per-quantum execution, and the invariance
tests in ``tests/test_fastpath.py`` diff full result rows across both
modes.  Only ``stats["sim.events"]`` may differ (that is the point).

The block interpreter (PR 5) has the same shape: workloads may yield
:class:`repro.core.ops.OpBlock` templates that the processor replays in
a tight inner loop — or, when every touched line is a guaranteed hit and
the event-queue head lies beyond the block, retires in closed form.  Its
escape hatch is

    REPRO_BLOCKS=0 python -m repro ...

which makes the processor materialize every block back into the plain
per-op stream, exercising the original dispatch arms unchanged.

The phase engine (PR 8) is the tier above blocks: workloads may yield
:class:`repro.core.ops.OpPhase` descriptors — a run of K block
iterations at a constant address stride — that the processor retires in
one vectorized step when every touched line stays a guaranteed hit
(counters as ``K x per_iteration`` sums, LRU/stored state via the block
geometry arithmetic, the quantum-renewal schedule as a prefix-sum
closed form over the iteration axis).  Its escape hatch is

    REPRO_PHASES=0 python -m repro ...

which makes the processor spill every phase back into per-iteration
block replays, exercising the block interpreter unchanged.

The stream engine (PR 10) is the streaming-model counterpart of the
phase engine: workloads may yield :class:`repro.core.ops.OpStream`
descriptors — the canonical DMA double-buffer loop (dget next tile /
dwait / compute kernel / dput previous tile) unrolled to a fixed
per-iteration step list at constant address strides — that the
processor's stream arm retires iteration by iteration without generator
round trips, and the DMA engine serves all-L2-hit line commands through
a fused renewal loop (one arithmetic pass over the resource calendars
instead of four method calls per granule).  Its escape hatch is

    REPRO_STREAMS=0 python -m repro ...

which makes the processor materialize every stream back into the plain
per-op DMA stream and the DMA engine walk every granule through the
ordinary resource methods.

The four hatches compose into a sixteen-mode identity matrix (streams x
phases x blocks x fastpath), every cell bit-identical except
``stats["sim.*"]`` diagnostics: the phase closed form additionally
requires ``REPRO_BLOCKS`` on (phases retire *block* iterations, so
disabling blocks demotes phases to spill too), and ``REPRO_FASTPATH=0
REPRO_BLOCKS=0 REPRO_PHASES=0 REPRO_STREAMS=0`` is the seed's execution
model, byte for byte.

All flags are read when a system is constructed, not at import time, so
tests can toggle them per-run with ``monkeypatch.setenv``.
"""

from __future__ import annotations

import os

#: Values of ``REPRO_FASTPATH`` / ``REPRO_BLOCKS`` / ``REPRO_PHASES``
#: that disable the corresponding path.
_OFF_VALUES = frozenset({"0", "false", "off", "no"})


def fastpath_enabled() -> bool:
    """True unless ``REPRO_FASTPATH`` is set to 0/false/off/no."""
    # Sanctioned construction-time read: the hierarchy resolves this once
    # when the system is built, never mid-run.
    raw = os.environ.get("REPRO_FASTPATH", "1")  # repro-lint: disable=REPRO007
    return raw.strip().lower() not in _OFF_VALUES


def blocks_enabled() -> bool:
    """True unless ``REPRO_BLOCKS`` is set to 0/false/off/no."""
    raw = os.environ.get("REPRO_BLOCKS", "1")  # repro-lint: disable=REPRO007
    return raw.strip().lower() not in _OFF_VALUES


def phases_enabled() -> bool:
    """True unless ``REPRO_PHASES`` is set to 0/false/off/no."""
    raw = os.environ.get("REPRO_PHASES", "1")  # repro-lint: disable=REPRO007
    return raw.strip().lower() not in _OFF_VALUES


def streams_enabled() -> bool:
    """True unless ``REPRO_STREAMS`` is set to 0/false/off/no."""
    raw = os.environ.get("REPRO_STREAMS", "1")  # repro-lint: disable=REPRO007
    return raw.strip().lower() not in _OFF_VALUES
