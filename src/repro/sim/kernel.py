"""Event queue and simulator clock.

Timestamps are integer femtoseconds (see :mod:`repro.units`).  Events with
equal timestamps fire in insertion order, which makes every simulation
exactly reproducible.
"""

from __future__ import annotations

import heapq
from typing import Callable


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class InvariantViolation(SimulationError, AssertionError):
    """A checked simulation invariant failed.

    Raised explicitly (never via ``assert``) so ``python -O`` cannot strip
    the check.  Carries the simulation time and arbitrary key/value
    context so a violation is diagnosable from the message alone.

    Inherits :class:`AssertionError` purely as a deprecation shim: older
    callers (and tests) that caught ``AssertionError`` from
    ``check_global_invariant`` keep working.  Catch
    :class:`SimulationError` or this class in new code.
    """

    def __init__(self, message: str, *, now_fs: int | None = None,
                 context: dict | None = None) -> None:
        self.now_fs = now_fs
        self.context = dict(context) if context else {}
        parts = [message]
        if now_fs is not None:
            parts.append(f"at t={now_fs} fs")
        if self.context:
            parts.append(
                "[" + ", ".join(f"{k}={v!r}" for k, v in self.context.items()) + "]"
            )
        super().__init__(" ".join(parts))


class EventQueue:
    """A binary-heap event queue keyed on (time, insertion sequence).

    No ``__slots__`` here on purpose: the analysis monitors
    (:class:`repro.analysis.monitors.EventQueueMonitor`) wrap ``pop`` on
    the instance, and the kernel's dispatch loop routes every event
    through that attribute so such wrappers always observe the pops.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Callable[[], None]]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time_fs: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire at ``time_fs``.

        Timestamps must be integers (femtoseconds): floats happen to
        heap-compare fine against ints, but they accumulate rounding and
        break exact reproducibility, so they are rejected loudly.
        """
        if type(time_fs) is not int:
            raise SimulationError(
                f"event timestamps must be int femtoseconds, got "
                f"{type(time_fs).__name__} {time_fs!r}"
            )
        if time_fs < 0:
            raise SimulationError(f"cannot schedule event at negative time {time_fs}")
        heapq.heappush(self._heap, (time_fs, self._seq, callback))
        self._seq += 1

    def pop(self) -> tuple[int, Callable[[], None]]:
        """Remove and return the earliest (time, callback) pair."""
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        time_fs, _, callback = heapq.heappop(self._heap)
        return time_fs, callback

    def peek_time(self) -> int | None:
        """Return the timestamp of the earliest event, or None if empty."""
        if not self._heap:
            return None
        return self._heap[0][0]


class Simulator:
    """Drives the event queue and tracks the global simulation clock.

    Components schedule work with :meth:`at` (absolute time) or
    :meth:`after` (relative to the current clock).  :meth:`run` drains the
    queue, advancing the clock monotonically.
    """

    def __init__(self, max_events: int | None = None) -> None:
        self.queue = EventQueue()
        self.now = 0
        self.events_processed = 0
        self._max_events = max_events
        self._running = False
        # Optional event observer (see attach_event_hook): kept out of
        # the dispatch loop entirely — it rides on queue.pop wrapping.
        self._event_hook: Callable[[int], None] | None = None
        self._hooked_pop: Callable | None = None
        self._inner_pop: Callable | None = None

    def at(self, time_fs: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute time ``time_fs``.

        Scheduling in the past is a programming error and raises
        :class:`SimulationError` — occupancy resources should have clamped
        the time to ``max(now, ...)`` before scheduling.
        """
        if time_fs < self.now:
            raise SimulationError(
                f"event scheduled in the past: {time_fs} < now {self.now}"
            )
        self.queue.schedule(time_fs, callback)

    def after(self, delay_fs: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` ``delay_fs`` femtoseconds from now."""
        if delay_fs < 0:
            raise SimulationError(f"negative delay {delay_fs}")
        self.queue.schedule(self.now + delay_fs, callback)

    def run(self) -> int:
        """Process events until the queue is empty.  Returns the final clock."""
        self._dispatch(None)
        return self.now

    def attach_event_hook(self, hook: Callable[[int], None]) -> None:
        """Observe every dispatched event: ``hook(time_fs)`` per pop.

        Implemented by wrapping the queue's instance-level ``pop`` — the
        same interception point the analysis monitors use — so the
        dispatch loop pays nothing when no hook is attached (the common
        case keeps the unwrapped bound method).  Purely observational:
        attaching a hook never changes event order, timestamps, or any
        measured quantity.  One hook at a time; attach raises if one is
        already present, and :meth:`detach_event_hook` is idempotent.
        """
        if self._event_hook is not None:
            raise SimulationError("simulator already has an event hook")
        self._event_hook = hook
        inner_pop = self.queue.pop

        def observed_pop() -> tuple[int, Callable[[], None]]:
            time_fs, callback = inner_pop()
            hook(time_fs)
            return time_fs, callback

        self._hooked_pop = observed_pop
        self._inner_pop = inner_pop
        self.queue.pop = observed_pop  # type: ignore[method-assign]

    def detach_event_hook(self) -> None:
        """Remove the event hook installed by :meth:`attach_event_hook`.

        Idempotent, and careful about stacking: the wrapper is only
        unwound when it is still the queue's current ``pop`` (a monitor
        wrapping *after* us keeps observing; it delegates to our wrapper,
        which keeps delegating to the original).
        """
        if self._event_hook is None:
            return
        if self.queue.pop is self._hooked_pop:
            self.queue.pop = self._inner_pop  # type: ignore[method-assign]
        self._event_hook = None
        self._hooked_pop = None
        self._inner_pop = None

    def drain_until(self, time_fs: int) -> int:
        """Process every pending event with timestamp <= ``time_fs``.

        The shared boundary-stepping primitive: interval sampling and the
        processor fast path both step the simulation to a time boundary,
        and both must honor the same (time, insertion order) dispatch rule
        as :meth:`run`.  Events scheduled *at* the boundary fire (ties in
        insertion order, exactly as in a full :meth:`run`); the clock ends
        on the last processed event and never moves backwards.  Returns
        the number of events processed (zero for an empty queue or a
        boundary before the earliest event).
        """
        if type(time_fs) is not int:
            raise SimulationError(
                f"drain boundary must be int femtoseconds, got "
                f"{type(time_fs).__name__} {time_fs!r}"
            )
        return self._dispatch(time_fs)

    def _dispatch(self, until_fs: int | None) -> int:
        """Pop-and-fire loop shared by :meth:`run` and :meth:`drain_until`."""
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        processed = 0
        # Alias the hot state out of the loop.  The heap list is only
        # *peeked* directly (for the loop condition); pops go through the
        # queue's ``pop`` attribute so instance-level wrappers (the event
        # queue invariant monitor) see every event.
        heap = self.queue._heap
        pop = self.queue.pop
        max_events = self._max_events
        try:
            while heap and (until_fs is None or heap[0][0] <= until_fs):
                time_fs, callback = pop()
                if time_fs < self.now:
                    raise SimulationError(
                        f"time went backwards: {time_fs} < {self.now}"
                    )
                self.now = time_fs
                callback()
                processed += 1
                self.events_processed += 1
                if max_events is not None and self.events_processed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={self._max_events}; "
                        "likely a livelocked workload"
                    )
        finally:
            self._running = False
        return processed
