"""Interval sampling: time series of system activity during a run.

A :class:`IntervalSampler` attaches to a :class:`~repro.core.system.CmpSystem`
before ``run()`` and snapshots counters at fixed simulated-time intervals,
yielding per-window series of DRAM bandwidth utilization and core
activity — the phase behaviour (e.g. MergeSort's narrowing merge levels,
MPEG-2's per-frame barriers) that end-of-run totals average away.

Usage::

    system = CmpSystem(config, program)
    sampler = IntervalSampler(system, interval_fs=ns_to_fs(50_000))
    sampler.start()
    result = system.run()
    print(sampler.render())

Two driving modes share the same snapshot logic:

* **event mode** (``start()`` then ``system.run()``): the sampler
  schedules itself as a periodic event, riding along inside the normal
  event loop, and its ticks count toward ``sim.events``;
* **pull mode** (``result = sampler.drive()``): the sampler runs the
  system itself, stepping the simulator one window at a time with
  :meth:`~repro.sim.kernel.Simulator.drain_until` — the same
  boundary-stepping primitive the processor fast path is built on — and
  snapshots between steps, adding no events to the queue.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.system import CmpSystem

#: Glyph ramp for sparklines, lightest to heaviest.
_RAMP = " .:-=+*#%@"


def sparkline(values: list[float], peak: float | None = None) -> str:
    """Render values in [0, peak] as a one-line intensity ramp.

    >>> sparkline([0.0, 0.5, 1.0])
    ' =@'
    """
    if not values:
        return ""
    peak = peak if peak is not None else (max(values) or 1.0)
    if peak <= 0:
        peak = 1.0
    chars = []
    top = len(_RAMP) - 1
    for value in values:
        level = min(top, max(0, round(value / peak * top)))
        chars.append(_RAMP[level])
    return "".join(chars)


class IntervalSampler:
    """Snapshots a running system's counters every ``interval_fs``.

    ``probes`` optionally extends every sample with extra columns: a
    mapping of column name to zero-argument callable, evaluated at each
    window boundary.  Probes run at scheduling boundaries only — the
    same points where the processor fast path folds its batched stats —
    so they observe a consistent system state without attaching any
    per-access hook (``hierarchy.fastpath_safe`` stays true).
    """

    def __init__(self, system: "CmpSystem", interval_fs: int,
                 probes: dict | None = None) -> None:
        if interval_fs <= 0:
            raise ValueError(f"interval must be positive, got {interval_fs}")
        self.system = system
        self.interval_fs = interval_fs
        self.probes = dict(probes) if probes else {}
        reserved = {"time_fs", "dram_utilization", "core_activity"}
        clashes = reserved & set(self.probes)
        if clashes:
            raise ValueError(f"probe names clash with built-in sample "
                             f"columns: {sorted(clashes)}")
        self.samples: list[dict] = []
        self._last_dram_bytes = 0
        self._last_useful_fs = 0
        self._started = False

    def start(self) -> None:
        """Arm the sampler; must be called before ``system.run()``."""
        if self._started:
            raise RuntimeError("sampler already started")
        self._started = True
        self.system.sim.at(self.interval_fs, self._tick)

    def drive(self):
        """Run the attached system to completion, sampling between windows.

        Pull-mode alternative to ``start()`` + ``system.run()``: drives
        the event loop itself, one ``interval_fs`` window at a time, via
        :meth:`~repro.sim.kernel.Simulator.drain_until`, and snapshots at
        each boundary.  Unlike event mode the sampler adds no events of
        its own, so ``stats["sim.events"]`` matches an unsampled run.
        Returns the :class:`~repro.results.RunResult`.

        Window semantics differ from event mode only at boundaries:
        ``drain_until`` processes events scheduled *at* the boundary
        before the snapshot, whereas the event-mode tick (scheduled
        first) fires ahead of them.
        """
        if self._started:
            raise RuntimeError("sampler already started")
        self._started = True
        return self.system.run(loop=self._loop)

    def _loop(self, sim) -> None:
        boundary = self.interval_fs
        queue = sim.queue
        while len(queue):
            sim.drain_until(boundary)
            self._snapshot(boundary)
            boundary += self.interval_fs

    def _tick(self) -> None:
        system = self.system
        self._snapshot(system.sim.now)
        if not all(p.done for p in system.processors):
            system.sim.after(self.interval_fs, self._tick)

    def _snapshot(self, time_fs: int) -> None:
        system = self.system
        dram_bytes = system.hierarchy.uncore.dram.total_bytes
        useful_fs = sum(p.useful_fs for p in system.processors)
        window = self.interval_fs
        dram_util = ((dram_bytes - self._last_dram_bytes)
                     * system.hierarchy.uncore.dram.config.fs_per_byte
                     / window / system.hierarchy.uncore.dram.config.channels)
        activity = ((useful_fs - self._last_useful_fs)
                    / window / len(system.processors))
        sample = {
            "time_fs": time_fs,
            "dram_utilization": min(1.0, dram_util),
            "core_activity": min(1.0, activity),
        }
        for name, probe in self.probes.items():
            sample[name] = probe()
        self.samples.append(sample)
        self._last_dram_bytes = dram_bytes
        self._last_useful_fs = useful_fs

    def series(self, key: str) -> list[float]:
        """One column of the samples, e.g. ``dram_utilization``."""
        return [s[key] for s in self.samples]

    def render(self, width: int = 80) -> str:
        """Sparkline rendering of both series, downsampled to ``width``."""
        def thin(values: list[float]) -> list[float]:
            if len(values) <= width:
                return values
            bucket = len(values) / width
            return [
                max(values[int(i * bucket):max(int(i * bucket) + 1,
                                               int((i + 1) * bucket))])
                for i in range(width)
            ]

        dram = sparkline(thin(self.series("dram_utilization")), peak=1.0)
        cores = sparkline(thin(self.series("core_activity")), peak=1.0)
        return (f"core activity |{cores}|\n"
                f"dram util     |{dram}|")
