"""Discrete-event simulation kernel.

The kernel is deliberately small: a time-ordered event queue
(:class:`~repro.sim.kernel.EventQueue`), a simulator facade
(:class:`~repro.sim.kernel.Simulator`), and a statistics registry
(:mod:`repro.sim.stats`).  Architectural components (cores, caches, DMA
engines) schedule callbacks on the queue; shared resources (buses, L2
ports, the DRAM channel) are modelled with occupancy bookkeeping in
:class:`~repro.sim.resources.OccupancyResource` rather than per-cycle
token passing, which keeps the Python simulator fast enough to sweep the
paper's full parameter space.
"""

from repro.sim.kernel import (EventQueue, InvariantViolation, SimulationError,
                              Simulator)
from repro.sim.resources import OccupancyResource, ThroughputResource
from repro.sim.sampling import IntervalSampler, sparkline
from repro.sim.stats import Counter, StatsRegistry

__all__ = [
    "EventQueue",
    "Simulator",
    "SimulationError",
    "InvariantViolation",
    "OccupancyResource",
    "ThroughputResource",
    "Counter",
    "StatsRegistry",
    "IntervalSampler",
    "sparkline",
]
