"""Hierarchical statistics registry.

Every architectural component owns named :class:`Counter` objects created
through a :class:`StatsRegistry`.  The registry provides a flat snapshot
(``as_dict``) used by the harness to assemble the paper's tables, and
supports arithmetic merging for multi-run aggregation.
"""

from __future__ import annotations

from collections.abc import Iterator


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Increment (non-negative amounts only)."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class StatsRegistry:
    """A namespace of counters, keyed by dotted path (e.g. ``l1.0.misses``)."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}

    def counter(self, name: str) -> Counter:
        """Return the counter named ``name``, creating it if needed."""
        existing = self._counters.get(name)
        if existing is not None:
            return existing
        created = Counter(name)
        self._counters[name] = created
        return created

    def __getitem__(self, name: str) -> int:
        return self._counters[name].value

    def get(self, name: str, default: int = 0) -> int:
        """Counter value, or ``default`` when absent."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else default

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def __iter__(self) -> Iterator[str]:
        return iter(self._counters)

    def as_dict(self) -> dict[str, int]:
        """Return a flat snapshot of every counter."""
        return {name: counter.value for name, counter in self._counters.items()}

    def total(self, prefix: str) -> int:
        """Sum every counter whose name starts with ``prefix``.

        Useful for aggregating per-core counters, e.g.
        ``stats.total("l1.") + ...``; an exact-name match is included.
        """
        return sum(
            counter.value
            for name, counter in self._counters.items()
            if name.startswith(prefix)
        )
