"""Occupancy-based models of shared, contended resources.

Rather than simulating arbitration cycle by cycle, each shared resource
(intra-cluster bus, crossbar port, L2 bank port, DRAM channel) keeps a
calendar of busy intervals.  A request arriving at time *t* is served in
the first idle gap at or after *t* that fits its service time.

The calendar (rather than a single ``next_free`` watermark) matters
because requests arrive slightly out of time order: cores execute in
quanta, and a dependent-miss chain walked inside one event reserves the
resource at a run of future instants.  With a single watermark, another
core arriving *earlier* would falsely queue behind the whole run even
though the resource is idle in between; the calendar lets it backfill
the gap, which is what real arbitration would do.  Intervals are merged
when they touch and the calendar is bounded, so the common streaming
case stays O(log n) per request.
"""

from __future__ import annotations

from bisect import bisect_right

#: Lower bound on remembered busy intervals per resource.  The calendar
#: is trimmed in chunks: once it reaches ``2 * _MAX_INTERVALS`` entries,
#: the oldest half is dropped in one slice (amortized O(1) per request,
#: where a per-append ``del starts[0]`` would memmove the whole list
#: every time).  Dropped intervals are in the past for every in-flight
#: requester, so dropping them cannot create conflicts; remembering
#: *more* than ``_MAX_INTERVALS`` of them between trims is likewise
#: invisible — they could only matter to an arrival earlier than every
#: retained interval, which the trim threshold keeps far in the past.
_MAX_INTERVALS = 96
#: Trim threshold / retained suffix, precomputed for the hot path.
_TRIM_AT = 2 * _MAX_INTERVALS


class OccupancyResource:
    """A resource serving one request at a time, with gap backfilling.

    Parameters
    ----------
    name:
        Used in statistics and error messages.
    latency_fs:
        Pipeline latency added to every request (does *not* occupy the
        resource; pipelined per Table 2).
    """

    __slots__ = ("name", "latency_fs", "busy_fs", "wait_fs", "requests",
                 "_starts", "_ends")

    def __init__(self, name: str, latency_fs: int = 0) -> None:
        if latency_fs < 0:
            raise ValueError(f"{name}: negative latency {latency_fs}")
        self.name = name
        self.latency_fs = latency_fs
        self.busy_fs = 0
        self.wait_fs = 0
        self.requests = 0
        # Disjoint, sorted busy intervals; _ends mirrors the interval end
        # points so arrival lookup can bisect.
        self._starts: list[int] = []
        self._ends: list[int] = []

    @property
    def next_free(self) -> int:
        """The end of the last reservation (0 if never used)."""
        return self._ends[-1] if self._ends else 0

    def acquire(self, now_fs: int, service_fs: int) -> tuple[int, int]:
        """Serve a request arriving at ``now_fs`` needing ``service_fs``.

        Returns ``(start_fs, done_fs)`` where ``done_fs`` includes the
        pipeline latency.  The resource is occupied during
        ``[start_fs, start_fs + service_fs)``.
        """
        if service_fs < 0:
            raise ValueError(f"{self.name}: negative service time {service_fs}")
        self.busy_fs += service_fs
        self.requests += 1
        starts, ends = self._starts, self._ends
        # Tail fast path: most requests arrive at or after the end of the
        # last reservation (streaming accesses walk forward in time), so
        # serve them by appending/merging at the tail without the bisect
        # and the O(n) mid-list inserts of the general path below.
        if not ends or now_fs >= ends[-1]:
            end = now_fs + service_fs
            if service_fs:
                if ends and ends[-1] == now_fs:
                    ends[-1] = end
                else:
                    starts.append(now_fs)
                    ends.append(end)
                    if len(starts) >= _TRIM_AT:
                        del starts[:_MAX_INTERVALS]
                        del ends[:_MAX_INTERVALS]
            return now_fs, end + self.latency_fs
        if service_fs and now_fs >= starts[-1]:
            # Arrival inside the last busy interval (the common case when
            # a pipelined run of requests all arrive at their issue time):
            # intervals are disjoint, so every earlier interval is fully
            # past and the first fitting gap is the open tail.
            start = ends[-1]
            self.wait_fs += start - now_fs
            ends[-1] = start + service_fs
            return start, ends[-1] + self.latency_fs
        # First interval that ends after the arrival.
        index = bisect_right(ends, now_fs)
        t = now_fs
        while index < len(starts):
            if starts[index] - t >= service_fs:
                break  # the gap before this interval fits
            if ends[index] > t:
                t = ends[index]
            index += 1
        start = t
        self.wait_fs += start - now_fs
        end = t + service_fs
        # Insert, merging with touching neighbours to keep the list small.
        merge_prev = index > 0 and ends[index - 1] == start
        merge_next = index < len(starts) and starts[index] == end
        if service_fs == 0:
            pass  # zero-length reservations need no calendar entry
        elif merge_prev and merge_next:
            ends[index - 1] = ends[index]
            del starts[index]
            del ends[index]
        elif merge_prev:
            ends[index - 1] = end
        elif merge_next:
            starts[index] = start
        else:
            starts.insert(index, start)
            ends.insert(index, end)
        if len(starts) >= _TRIM_AT:
            del starts[:_MAX_INTERVALS]
            del ends[:_MAX_INTERVALS]
        return start, end + self.latency_fs

    def serve(self, now_fs: int, service_fs: int) -> int:
        """:meth:`acquire` for hot callers that only need the done time.

        Identical accounting and calendar updates, but skips the result
        tuple (and the negative-service validation — every caller passes
        a fixed config-derived service time).  The two common cases are
        handled inline; everything else falls through to ``acquire``.
        """
        ends = self._ends
        if not ends or now_fs >= ends[-1]:
            self.busy_fs += service_fs
            self.requests += 1
            end = now_fs + service_fs
            if service_fs:
                if ends and ends[-1] == now_fs:
                    ends[-1] = end
                else:
                    starts = self._starts
                    starts.append(now_fs)
                    ends.append(end)
                    if len(starts) >= _TRIM_AT:
                        del starts[:_MAX_INTERVALS]
                        del ends[:_MAX_INTERVALS]
            return end + self.latency_fs
        if service_fs and now_fs >= self._starts[-1]:
            self.busy_fs += service_fs
            self.requests += 1
            start = ends[-1]
            self.wait_fs += start - now_fs
            end = start + service_fs
            ends[-1] = end
            return end + self.latency_fs
        return self.acquire(now_fs, service_fs)[1]

    def utilization(self, total_fs: int) -> float:
        """Fraction of ``total_fs`` during which the resource was busy."""
        if total_fs <= 0:
            return 0.0
        return min(1.0, self.busy_fs / total_fs)


class ThroughputResource(OccupancyResource):
    """An occupancy resource whose service time is proportional to bytes.

    Used for the memory channel and network links: a transfer of ``n``
    bytes occupies the resource for ``n * fs_per_byte`` femtoseconds.
    """

    __slots__ = ("fs_per_byte", "bytes_moved")

    def __init__(self, name: str, fs_per_byte: int, latency_fs: int = 0) -> None:
        super().__init__(name, latency_fs)
        if fs_per_byte <= 0:
            raise ValueError(f"{name}: fs_per_byte must be positive, got {fs_per_byte}")
        self.fs_per_byte = fs_per_byte
        self.bytes_moved = 0

    def transfer(self, now_fs: int, num_bytes: int) -> tuple[int, int]:
        """Serve a ``num_bytes`` transfer arriving at ``now_fs``.

        Returns ``(start_fs, done_fs)``.
        """
        if num_bytes < 0:
            raise ValueError(f"{self.name}: negative transfer size {num_bytes}")
        self.bytes_moved += num_bytes
        return self.acquire(now_fs, num_bytes * self.fs_per_byte)
