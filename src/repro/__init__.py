"""repro — a reproduction of Leverich et al., *Comparing Memory Systems
for Chip Multiprocessors* (ISCA 2007).

The package contains a discrete-event CMP simulator with both of the
paper's on-chip memory models (coherent caches and streaming memory), the
eleven applications of the study, an energy model, and a harness that
regenerates every table and figure of the evaluation.

Quickstart::

    from repro import MachineConfig, run_workload

    result = run_workload("fir", model="cc", cores=16)
    print(result.summary())
    print(result.breakdown.fractions())

See ``examples/`` for runnable scenarios and ``repro.harness`` for the
per-figure experiments.
"""

from repro.config import (
    CacheConfig,
    CoherenceKind,
    CoreConfig,
    DramConfig,
    InterconnectConfig,
    MachineConfig,
    MemoryModel,
    PrefetcherConfig,
    StreamConfig,
    WritePolicy,
)
from repro.core.system import CmpSystem, run_program
from repro.energy.model import EnergyModel, EnergyParams
from repro.results import Breakdown, EnergyBreakdown, RunResult, Traffic
from repro.validate import assert_valid, check_result
from repro.workloads import get_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "CoherenceKind",
    "CoreConfig",
    "DramConfig",
    "InterconnectConfig",
    "MachineConfig",
    "MemoryModel",
    "PrefetcherConfig",
    "StreamConfig",
    "WritePolicy",
    "CmpSystem",
    "run_program",
    "EnergyModel",
    "EnergyParams",
    "Breakdown",
    "EnergyBreakdown",
    "RunResult",
    "Traffic",
    "get_workload",
    "workload_names",
    "run_workload",
    "assert_valid",
    "check_result",
]


def run_workload(name: str, model: str = "cc", cores: int = 8,
                 clock_ghz: float = 0.8, bandwidth_gbps: float = 6.4,
                 prefetch: bool = False, prefetch_depth: int = 4,
                 preset: str = "default",
                 overrides: dict | None = None) -> RunResult:
    """Build and run one application on one machine configuration.

    This is the one-call public entry point: it assembles a
    :class:`MachineConfig` from the keyword arguments, builds the named
    workload for the requested memory model, runs the simulation, and
    returns the full :class:`RunResult`.
    """
    config = MachineConfig(num_cores=cores).with_model(model)
    config = config.with_clock(clock_ghz).with_bandwidth(bandwidth_gbps)
    if prefetch:
        config = config.with_prefetch(depth=prefetch_depth)
    workload = get_workload(name)
    program = workload.build(config.model, config, preset=preset,
                             overrides=overrides)
    return run_program(config, program)
