"""Time, frequency, and bandwidth units for the simulator.

All simulator timestamps are integer **femtoseconds** (fs).  Using an
integer base unit keeps the simulation exactly deterministic and lets the
clock-frequency sweep of the paper (Section 5.3: 800 MHz to 6.4 GHz) be
expressed without rounding error: every frequency used by the paper has an
integer period in femtoseconds (e.g. 6.4 GHz -> 156_250 fs).

The helpers here convert between human-friendly units (ns, GHz, GB/s) and
the integer femtosecond domain.
"""

from __future__ import annotations

FS_PER_PS = 1_000
FS_PER_NS = 1_000_000
FS_PER_US = 1_000_000_000
FS_PER_MS = 1_000_000_000_000
FS_PER_S = 1_000_000_000_000_000


def ns_to_fs(ns: float) -> int:
    """Convert nanoseconds to integer femtoseconds (rounded)."""
    return round(ns * FS_PER_NS)


def fs_to_ns(fs: int) -> float:
    """Convert femtoseconds to nanoseconds."""
    return fs / FS_PER_NS


def fs_to_us(fs: int) -> float:
    """Convert femtoseconds to microseconds."""
    return fs / FS_PER_US


def fs_to_ms(fs: int) -> float:
    """Convert femtoseconds to milliseconds."""
    return fs / FS_PER_MS


def fs_to_seconds(fs: int) -> float:
    """Convert femtoseconds to seconds."""
    return fs / FS_PER_S


def ghz_to_period_fs(ghz: float) -> int:
    """Return the clock period in femtoseconds for a frequency in GHz.

    Raises ``ValueError`` for non-positive frequencies.

    >>> ghz_to_period_fs(0.8)
    1250000
    >>> ghz_to_period_fs(6.4)
    156250
    """
    if ghz <= 0:
        raise ValueError(f"frequency must be positive, got {ghz} GHz")
    return round(FS_PER_NS / ghz)


def period_fs_to_ghz(period_fs: int) -> float:
    """Inverse of :func:`ghz_to_period_fs`."""
    if period_fs <= 0:
        raise ValueError(f"period must be positive, got {period_fs} fs")
    return FS_PER_NS / period_fs


def gbps_to_fs_per_byte(gb_per_s: float) -> int:
    """Return channel occupancy per byte, in fs, for a bandwidth in GB/s.

    The paper's memory channels (1.6 / 3.2 / 6.4 / 12.8 GB/s) all map to
    integer femtosecond costs per byte:

    >>> gbps_to_fs_per_byte(1.6)
    625000
    >>> gbps_to_fs_per_byte(12.8)
    78125
    """
    if gb_per_s <= 0:
        raise ValueError(f"bandwidth must be positive, got {gb_per_s} GB/s")
    return round(FS_PER_NS / gb_per_s)


def bytes_per_fs_to_gbps(bytes_: int, fs: int) -> float:
    """Average bandwidth in GB/s given bytes moved over a duration in fs."""
    if fs <= 0:
        raise ValueError(f"duration must be positive, got {fs} fs")
    return bytes_ * FS_PER_NS / fs


def mb_per_s(bytes_: int, fs: int) -> float:
    """Average bandwidth in MB/s (decimal, as the paper's Table 3 reports)."""
    return bytes_per_fs_to_gbps(bytes_, fs) * 1000.0


KIB = 1024
MIB = 1024 * 1024
