"""The asyncio simulation server: submit, dedup, execute, multiplex.

One :class:`ReproServer` owns

* a :class:`~repro.grid.store.ResultStore` (the shared memo table —
  every hit is answered instantly, no simulation),
* a worker pool (``ProcessPoolExecutor`` with a spawn context by
  default; a ``ThreadPoolExecutor`` in ``in_process`` mode for
  environments where process pools are unavailable — that mode is what
  exercises the scheduler's thread-safe deadline path),
* a :class:`~repro.serve.jobs.JobTable` deduplicating in-flight misses
  across *all* connected clients: two clients sweeping overlapping
  config sets trigger each missing run exactly once and both stream
  its outcome,
* per-connection outbound queues providing backpressure: frames a
  client must see (its own submission's outcomes) push back on that
  client's delivery only — never on execution, never on other clients —
  while global ``progress`` ticks for ``watch`` subscribers are
  droppable and are counted, not buffered, when a watcher lags.

Execution reuses :func:`repro.grid.scheduler._execute_in_worker` and
:func:`repro.grid.scheduler.outcome_from_payload` verbatim, so a served
run writes exactly the record a ``grid sweep`` would and the results
are bit-identical row for row.
"""

from __future__ import annotations

import asyncio
import contextlib
import io
import multiprocessing
import os
import sys
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.grid.progress import Progress
from repro.grid.scheduler import (
    RunOutcome,
    _execute_in_worker,
    outcome_from_payload,
)
from repro.grid.spec import RunSpec
from repro.grid.store import FailedRun, ResultStore
from repro.serve import protocol
from repro.serve.jobs import JobTable, ServerStats


class _Connection:
    """One client connection: a bounded outbound queue + sender task."""

    def __init__(self, writer: asyncio.StreamWriter, backpressure: int,
                 stats: ServerStats) -> None:
        self.writer = writer
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=backpressure)
        self.stats = stats
        self.watching = False
        self.closed = False

    async def send(self, frame: dict) -> None:
        """Enqueue a mandatory frame; blocks the *caller* when the
        client's queue is full (per-client backpressure)."""
        if not self.closed:
            await self.queue.put(protocol.encode(frame))

    def send_tick(self, frame: dict) -> None:
        """Enqueue a droppable progress tick; lagging watchers lose
        ticks (counted in ``events_dropped``) instead of growing an
        unbounded buffer or stalling the server."""
        if self.closed:
            return
        try:
            self.queue.put_nowait(protocol.encode(frame))
        except asyncio.QueueFull:
            self.stats.events_dropped += 1

    async def sender(self) -> None:
        """Drain the queue to the socket; ``None`` is the stop sentinel."""
        try:
            while True:
                data = await self.queue.get()
                if data is None:
                    break
                self.writer.write(data)
                await self.writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self.closed = True
            with contextlib.suppress(Exception):
                self.writer.close()


class ReproServer:
    """Async simulation-as-a-service front end over the grid fabric."""

    def __init__(self, store: ResultStore | None = None,
                 jobs: int | None = None,
                 timeout_s: float | None = None,
                 retries: int = 1,
                 series_interval_fs: int | None = None,
                 in_process: bool = False,
                 backpressure: int = 256,
                 log=None) -> None:
        self.store = store
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.timeout_s = timeout_s
        self.retries = max(0, retries)
        self.series_interval_fs = series_interval_fs
        self.in_process = in_process
        self.backpressure = max(1, backpressure)
        self.stats = ServerStats()
        self._log = log if log is not None else sys.stderr
        self._jobs = JobTable()
        self._watchers: set[_Connection] = set()
        self._connections: set[_Connection] = set()
        self._job_tasks: set[asyncio.Task] = set()
        # Progress over a non-TTY dummy stream: the server narrates via
        # frames, never via the live terminal line.
        self._progress = Progress(jobs=self.jobs, stream=io.StringIO())
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._slots: asyncio.Semaphore | None = None
        self._executor = None
        self._executor_gen = 0

    # -- lifecycle -------------------------------------------------------

    def _make_executor(self):
        if self.in_process:
            return ThreadPoolExecutor(max_workers=self.jobs,
                                      thread_name_prefix="repro-serve-run")
        # A spawn context: the server process carries an event loop and
        # helper threads, which fork(2) would duplicate into workers.
        return ProcessPoolExecutor(
            max_workers=self.jobs,
            mp_context=multiprocessing.get_context("spawn"))

    async def serve(self, socket_path: str | None = None,
                    host: str | None = None, port: int | None = None,
                    ready=None) -> None:
        """Listen until :meth:`stop` — unix socket or TCP, never both."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._slots = asyncio.Semaphore(self.jobs)
        self._executor = self._make_executor()
        if socket_path is not None:
            server = await asyncio.start_unix_server(
                self._handle_client, path=str(socket_path))
            where = f"unix:{socket_path}"
        else:
            server = await asyncio.start_server(
                self._handle_client, host or "127.0.0.1", port)
            sock = server.sockets[0].getsockname()
            where = f"tcp:{sock[0]}:{sock[1]}"
            self.port = sock[1]
        print(f"repro.serve: listening on {where} "
              f"({'threads' if self.in_process else 'processes'}="
              f"{self.jobs}, store="
              f"{self.store.root if self.store else 'disabled'})",
              file=self._log, flush=True)
        if ready is not None:
            ready.set()
        try:
            async with server:
                await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            for conn in list(self._connections):
                conn.closed = True
                with contextlib.suppress(Exception):
                    conn.writer.close()
            for task in list(self._job_tasks):
                task.cancel()
            self._executor.shutdown(wait=False, cancel_futures=True)
            if socket_path is not None:
                with contextlib.suppress(OSError):
                    os.unlink(socket_path)
        print("repro.serve: stopped", file=self._log, flush=True)

    def run(self, socket_path: str | None = None, host: str | None = None,
            port: int | None = None) -> None:
        """Blocking convenience wrapper around :meth:`serve`."""
        try:
            asyncio.run(self.serve(socket_path=socket_path, host=host,
                                   port=port))
        except KeyboardInterrupt:
            print("repro.serve: interrupted", file=self._log, flush=True)

    def stop(self) -> None:
        """Request shutdown from inside the event loop."""
        if self._stop is not None:
            self._stop.set()

    def stop_threadsafe(self) -> None:
        """Request shutdown from any thread (tests, signal handlers).

        A no-op when the loop is already gone — stopping a stopped
        server must be safe.
        """
        if self._loop is None or self._stop is None \
                or self._loop.is_closed():
            return
        with contextlib.suppress(RuntimeError):
            self._loop.call_soon_threadsafe(self._stop.set)

    # -- connection handling ---------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        conn = _Connection(writer, self.backpressure, self.stats)
        self.stats.connections += 1
        self._connections.add(conn)
        sender = asyncio.get_running_loop().create_task(conn.sender())
        submissions: set[asyncio.Task] = set()
        await conn.send(protocol.hello_frame())
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    frame = protocol.decode(line)
                except protocol.ProtocolError as exc:
                    self.stats.errors += 1
                    await conn.send(protocol.error_frame(None, str(exc)))
                    continue
                if not await self._dispatch(conn, frame, submissions):
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._watchers.discard(conn)
            self._connections.discard(conn)
            for task in submissions:
                task.cancel()
            with contextlib.suppress(asyncio.QueueFull):
                conn.queue.put_nowait(None)     # flush, then stop
            try:
                await asyncio.wait_for(sender, timeout=5)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                sender.cancel()
            conn.closed = True
            with contextlib.suppress(Exception):
                writer.close()

    async def _dispatch(self, conn: _Connection, frame: dict,
                        submissions: set) -> bool:
        """Handle one request frame; False ends the connection."""
        rid = frame.get("id")
        kind = frame["type"]
        if kind == "submit":
            task = asyncio.get_running_loop().create_task(
                self._handle_submit(conn, rid, frame))
            submissions.add(task)
            task.add_done_callback(submissions.discard)
        elif kind == "watch":
            conn.watching = True
            self._watchers.add(conn)
            await conn.send({"type": "watching", "id": rid})
        elif kind == "stats":
            await conn.send(self._stats_frame(rid))
        elif kind == "ping":
            await conn.send({"type": "pong", "id": rid})
        elif kind == "shutdown":
            await conn.send({"type": "bye", "id": rid})
            self.stop()
            return False
        else:
            self.stats.errors += 1
            await conn.send(protocol.error_frame(
                rid, f"unknown request type {kind!r}; expected one of "
                     f"{', '.join(protocol.REQUEST_TYPES)}"))
        return True

    def _stats_frame(self, rid) -> dict:
        server = self.stats.as_dict()
        server["inflight"] = self._jobs.inflight()
        server["watchers"] = len(self._watchers)
        server["connections_open"] = len(self._connections)
        server["jobs"] = self.jobs
        server["in_process"] = self.in_process
        return {"type": "stats", "id": rid,
                "store": self.store.stats() if self.store else None,
                "server": server,
                "progress": self._progress.as_dict()}

    # -- submissions -----------------------------------------------------

    async def _handle_submit(self, conn: _Connection, rid,
                             frame: dict) -> None:
        try:
            specs = self._parse_specs(frame)
        except protocol.ProtocolError as exc:
            self.stats.errors += 1
            await conn.send(protocol.error_frame(rid, str(exc)))
            return
        self.stats.submissions += 1
        self.stats.specs_requested += len(specs)
        unique: dict[str, RunSpec] = {}
        for spec in specs:
            unique.setdefault(spec.content_key(), spec)
        self.stats.unique_specs += len(unique)

        loop = asyncio.get_running_loop()
        hits: list[RunOutcome] = []
        waiting: list[tuple] = []        # (job, source)
        for key, spec in unique.items():
            job = self._jobs._jobs.get(key)
            if job is not None:
                job.joiners += 1
                self.stats.dedup_joins += 1
                waiting.append((job, "shared"))
                continue
            cached = None
            if self.store is not None:
                cached = await loop.run_in_executor(None, self.store.get,
                                                    spec)
            if cached is not None:
                self.stats.store_hits += 1
                self._progress.on_cache_hit()
                self._broadcast("cache_hit", key=key)
                if isinstance(cached, FailedRun):
                    hits.append(RunOutcome(spec, key, "failed", "store",
                                           failure=cached))
                else:
                    hits.append(RunOutcome(spec, key, "ok", "store",
                                           result=cached))
                continue
            # The store read awaited above, so another submission may
            # have created this job in the meantime — join it then.
            job, created = self._jobs.get_or_create(key, spec)
            if created:
                task = loop.create_task(self._execute_job(job))
                self._job_tasks.add(task)
                task.add_done_callback(self._job_tasks.discard)
                waiting.append((job, "run"))
            else:
                self.stats.dedup_joins += 1
                waiting.append((job, "shared"))

        launched = sum(1 for _, source in waiting if source == "run")
        shared = len(waiting) - launched
        await conn.send(protocol.accepted_frame(
            rid, total=len(specs), unique=len(unique), hits=len(hits),
            misses=launched, shared=shared))

        counts = {"ok": 0, "failed": 0, "hits": len(hits), "runs": launched,
                  "shared": shared}
        seq = 0
        for outcome in hits:
            counts[outcome.status] += 1
            await conn.send(protocol.outcome_frame(rid, seq, outcome))
            seq += 1
        pending = {loop.create_task(job.outcome()): (job, source)
                   for job, source in waiting}
        try:
            while pending:
                done, _ = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED)
                for fut in done:
                    job, source = pending.pop(fut)
                    try:
                        outcome = fut.result()
                    except asyncio.CancelledError:
                        raise
                    except Exception as exc:
                        await conn.send(protocol.error_frame(
                            rid, f"run {job.spec.label()} hit an internal "
                                 f"server error: {exc}"))
                        return
                    counts[outcome.status] += 1
                    await conn.send(protocol.outcome_frame(
                        rid, seq, outcome, source=source))
                    seq += 1
        except asyncio.CancelledError:
            # Client went away; shielded job futures keep running for
            # everyone else (and for the store).
            for fut in pending:
                fut.cancel()
            raise
        await conn.send(protocol.done_frame(rid, ok=counts["ok"],
                                            failed=counts["failed"],
                                            hits=counts["hits"],
                                            runs=counts["runs"],
                                            shared=counts["shared"]))

    @staticmethod
    def _parse_specs(frame: dict) -> list[RunSpec]:
        raw = frame.get("specs")
        if not isinstance(raw, list) or not raw:
            raise protocol.ProtocolError(
                "submit needs a non-empty 'specs' list")
        specs = []
        for item in raw:
            try:
                specs.append(RunSpec.from_dict(item))
            except (TypeError, ValueError, KeyError) as exc:
                raise protocol.ProtocolError(
                    f"unparseable spec {item!r}: {exc}") from None
        return specs

    # -- execution -------------------------------------------------------

    async def _execute_job(self, job) -> None:
        """Run one unique miss to completion and settle its future."""
        loop = asyncio.get_running_loop()
        try:
            async with self._slots:
                self._progress.on_launch()
                self._broadcast("launch", key=job.key,
                                label=job.spec.label())
                attempts = 0
                while True:
                    attempts += 1
                    generation = self._executor_gen
                    try:
                        payload = await loop.run_in_executor(
                            self._executor, _execute_in_worker, job.spec,
                            self.timeout_s, self.series_interval_fs)
                    except BrokenProcessPool:
                        self._rebuild_executor(generation)
                        payload = await self._run_isolated(job)
                        attempts += 1
                        break
                    if payload["ok"] or payload["kind"] != "exception" \
                            or attempts > self.retries:
                        break
                    self._progress.on_retry()
                    self._broadcast("retry", key=job.key)
                # Store writes take the cross-process lock; keep them off
                # the event loop thread.
                outcome = await loop.run_in_executor(
                    None, outcome_from_payload, job.spec, job.key, payload,
                    attempts, self.store)
            self.stats.runs_executed += 1
            if outcome.status == "failed":
                self.stats.failures += 1
            self._progress.on_done(wall_s=outcome.wall_s,
                                   failed=outcome.status == "failed")
            self._broadcast("done", key=job.key, status=outcome.status)
            if not job.future.done():
                job.future.set_result(outcome)
        except asyncio.CancelledError:
            if not job.future.done():
                job.future.cancel()
            raise
        except Exception as exc:
            if not job.future.done():
                job.future.set_exception(exc)
        finally:
            self._jobs.finish(job.key)

    async def _run_isolated(self, job) -> dict:
        """Re-run one spec alone after a pool break (poison isolation)."""
        if self.in_process:        # thread pools cannot break this way
            return {"ok": False, "kind": "crash",
                    "message": "in-process worker pool broke unexpectedly"}
        loop = asyncio.get_running_loop()
        isolated = ProcessPoolExecutor(
            max_workers=1, mp_context=multiprocessing.get_context("spawn"))
        try:
            return await loop.run_in_executor(
                isolated, _execute_in_worker, job.spec, self.timeout_s,
                self.series_interval_fs)
        except BrokenProcessPool:
            return {"ok": False, "kind": "crash",
                    "message": "worker process died (killed or crashed "
                               "the interpreter)"}
        finally:
            isolated.shutdown(wait=False, cancel_futures=True)

    def _rebuild_executor(self, generation: int) -> None:
        """Replace a broken pool once, however many jobs noticed."""
        if generation != self._executor_gen:
            return
        self._executor_gen += 1
        broken = self._executor
        self._executor = self._make_executor()
        broken.shutdown(wait=False, cancel_futures=True)

    # -- progress fan-out ------------------------------------------------

    def _broadcast(self, event: str, **extra) -> None:
        """Send one droppable progress tick to every watcher."""
        if not self._watchers:
            return
        frame = self._progress.event_payload(event, **extra)
        frame["type"] = "progress"
        for conn in list(self._watchers):
            conn.send_tick(frame)


__all__ = ["ReproServer"]
