"""repro.serve — async simulation-as-a-service on the grid fabric.

``repro.grid`` made every sweep a content-addressed memo table;
``repro.serve`` puts a long-running front end on it.  One server
process owns the store and a worker pool; any number of clients submit
run/sweep specs over a line-delimited JSON protocol (unix socket or
TCP) and stream back outcomes as they settle:

* **hits are free** — anything any client (or any past ``grid sweep``)
  ever ran is answered instantly from the store;
* **misses run once** — in-flight runs are deduplicated across
  clients, so two users sweeping overlapping config sets trigger each
  simulation exactly once and both receive its outcome;
* **progress is multiplexed** — ``watch`` subscribers stream global
  progress ticks with per-client backpressure (slow consumers drop
  ticks, they never stall the server or other clients).

Results cross the wire through the same lossless serialization as the
store, so a served sweep is bit-identical, row for row, to ``python -m
repro grid sweep`` (``stats["sim.events"]`` exempt as ever).  See
``docs/SERVE.md`` for the protocol frame reference and ``python -m
repro serve --help`` for the command-line surface.
"""

from repro.serve.client import ServeClient, ServeError, SubmitReport
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError
from repro.serve.server import ReproServer

__all__ = ["ReproServer", "ServeClient", "ServeError", "SubmitReport",
           "ProtocolError", "PROTOCOL_VERSION"]
