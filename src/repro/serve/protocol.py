"""The JSONL wire protocol spoken between serve clients and the server.

One frame per line; every frame is a JSON object with a ``"type"``
field.  Frames that answer a request echo the request's ``"id"`` so a
client can interleave requests on one connection.  The full frame
reference lives in ``docs/SERVE.md``; this module is the single place
frames are built and parsed, so the server, the client, and the tests
can never drift apart.

Client → server requests::

    {"type": "submit",   "id": ..., "specs": [RunSpec.to_dict(), ...]}
    {"type": "watch",    "id": ...}
    {"type": "stats",    "id": ...}
    {"type": "ping",     "id": ...}
    {"type": "shutdown", "id": ...}

Server → client frames: ``hello`` (on connect), ``accepted``,
``outcome`` (one per unique spec, streamed as each settles), ``done``,
``watching``, ``progress`` (droppable ticks), ``stats``, ``pong``,
``error``, ``bye``.

Results cross the wire through the same lossless
``RunResult.to_dict`` / ``from_dict`` pair the grid store uses, which
is what makes a served sweep bit-identical to a local one.
"""

from __future__ import annotations

import json

from repro.grid.scheduler import RunOutcome
from repro.grid.spec import RunSpec
from repro.grid.store import FailedRun
from repro.results import RunResult

#: Bump when a frame's meaning changes; the server advertises it in the
#: ``hello`` frame and clients may refuse to speak to a newer server.
PROTOCOL_VERSION = 1

#: Frame types a client may send.
REQUEST_TYPES = ("submit", "watch", "stats", "ping", "shutdown")


class ProtocolError(ValueError):
    """A line that is not a well-formed protocol frame."""


def encode(frame: dict) -> bytes:
    """One frame as a newline-terminated UTF-8 JSON line."""
    return (json.dumps(frame, sort_keys=True) + "\n").encode("utf-8")


def decode(line: bytes | str) -> dict:
    """Parse one line into a frame dict; raises :class:`ProtocolError`."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        frame = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(frame, dict) or not isinstance(frame.get("type"), str):
        raise ProtocolError("frame must be a JSON object with a 'type'")
    return frame


# -- server-side frame builders ----------------------------------------

def hello_frame() -> dict:
    """The greeting the server writes on every new connection."""
    import repro

    return {"type": "hello", "server": "repro.serve",
            "protocol": PROTOCOL_VERSION, "code": repro.__version__}


def error_frame(request_id, message: str) -> dict:
    """A request-level failure (the connection stays usable)."""
    return {"type": "error", "id": request_id, "message": message}


def accepted_frame(request_id, total: int, unique: int, hits: int,
                   misses: int, shared: int) -> dict:
    """Submit acknowledgment: how the run set decomposed."""
    return {"type": "accepted", "id": request_id, "total": total,
            "unique": unique, "hits": hits, "misses": misses,
            "shared": shared}


def outcome_frame(request_id, seq: int, outcome: RunOutcome,
                  source: str | None = None) -> dict:
    """One settled unique spec of a submission.

    ``source`` is ``"store"`` (answered from the result store),
    ``"run"`` (executed for this submission) or ``"shared"`` (executed
    once for an earlier overlapping submission that is still in
    flight — the cross-client dedup path).
    """
    frame = {
        "type": "outcome", "id": request_id, "seq": seq,
        "key": outcome.key, "status": outcome.status,
        "source": source if source is not None else outcome.source,
        "spec": outcome.spec.to_dict(), "wall_s": outcome.wall_s,
    }
    if outcome.status == "ok":
        frame["result"] = outcome.result.to_dict()
    else:
        frame["failure"] = outcome.failure.to_dict()
    return frame


def done_frame(request_id, ok: int, failed: int, hits: int, runs: int,
               shared: int) -> dict:
    """Submission epilogue: every unique spec has settled."""
    return {"type": "done", "id": request_id, "ok": ok, "failed": failed,
            "hits": hits, "runs": runs, "shared": shared}


# -- client-side parsing -----------------------------------------------

def outcome_from_frame(frame: dict) -> RunOutcome:
    """Rebuild the :class:`RunOutcome` carried by an ``outcome`` frame.

    The returned object is interchangeable with one produced by a local
    :class:`~repro.grid.scheduler.GridScheduler`, so served sweeps feed
    straight into ``replay_cache`` and the experiment replay path.
    """
    if frame.get("type") != "outcome":
        raise ProtocolError(f"expected an outcome frame, got "
                            f"{frame.get('type')!r}")
    spec = RunSpec.from_dict(frame["spec"])
    result = failure = None
    if frame["status"] == "ok":
        result = RunResult.from_dict(frame["result"])
    else:
        failure = FailedRun.from_dict(frame["failure"])
    return RunOutcome(spec, frame["key"], frame["status"], frame["source"],
                      result=result, failure=failure,
                      wall_s=frame.get("wall_s"))


__all__ = ["PROTOCOL_VERSION", "REQUEST_TYPES", "ProtocolError", "encode",
           "decode", "hello_frame", "error_frame", "accepted_frame",
           "outcome_frame", "done_frame", "outcome_from_frame"]
