"""The server's cross-client dedup table and its counters.

A :class:`Job` is one unique in-flight simulation (one content key).
However many clients ask for the same key while it runs, the table
hands every one of them the *same* job — the run executes once, its
:class:`~repro.grid.scheduler.RunOutcome` settles one shared future,
and each submission streams the outcome to its own client.  This is
the store's dedup guarantee extended over time: the store memoizes
completed runs, the job table memoizes running ones.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.grid.spec import RunSpec


def _mark_retrieved(future: asyncio.Future) -> None:
    """Swallow the never-retrieved-exception warning on orphaned jobs.

    A job whose every subscriber disconnected still runs to completion
    (its record lands in the store either way); touching the exception
    here keeps asyncio from logging a spurious warning at GC time.
    Waiters that still exist observe the exception normally.
    """
    if not future.cancelled():
        future.exception()


class Job:
    """One unique in-flight run, shared by every subscribing submission."""

    def __init__(self, key: str, spec: RunSpec) -> None:
        self.key = key
        self.spec = spec
        self.future: asyncio.Future = asyncio.get_running_loop().create_future()
        self.future.add_done_callback(_mark_retrieved)
        #: Submissions that joined after the job was created (dedup hits).
        self.joiners = 0

    async def outcome(self):
        """Wait for the settled outcome (shielded: a cancelled waiter
        must never cancel the shared execution)."""
        return await asyncio.shield(self.future)


class JobTable:
    """Content-key → in-flight :class:`Job`; the dedup heart of serve."""

    def __init__(self) -> None:
        self._jobs: dict[str, Job] = {}

    def get_or_create(self, key: str, spec: RunSpec) -> tuple[Job, bool]:
        """The job for ``key`` (created if absent) and whether it is new."""
        job = self._jobs.get(key)
        if job is not None:
            job.joiners += 1
            return job, False
        job = Job(key, spec)
        self._jobs[key] = job
        return job, True

    def finish(self, key: str) -> None:
        """Drop a settled job (its outcome is now in the store)."""
        self._jobs.pop(key, None)

    def inflight(self) -> int:
        """How many unique runs are currently executing or queued."""
        return len(self._jobs)


@dataclass
class ServerStats:
    """Monotonic counters the ``stats`` frame reports.

    ``runs_executed`` counts simulator executions — the number the CI
    smoke test pins: N clients sweeping overlapping config sets must
    drive it up by the number of *unique missing* keys, never more.
    """

    connections: int = 0
    submissions: int = 0
    specs_requested: int = 0
    unique_specs: int = 0
    store_hits: int = 0
    runs_executed: int = 0
    failures: int = 0
    dedup_joins: int = 0
    events_dropped: int = 0
    errors: int = 0

    def as_dict(self) -> dict:
        return {f: getattr(self, f) for f in self.__dataclass_fields__}


__all__ = ["Job", "JobTable", "ServerStats"]
