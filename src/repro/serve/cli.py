"""Command-line surface of the serve subsystem.

Usage::

    python -m repro serve start --socket .repro-serve.sock --jobs 4
    python -m repro serve start --port 7420 --store .repro-cache
    python -m repro serve submit figure3 --preset tiny --socket ...
    python -m repro serve submit --workload fir --cores 2 --preset tiny
    python -m repro serve watch --limit 20
    python -m repro serve stats [--json]
    python -m repro serve stop

``start`` runs the long-lived server; every other command is a short
client invocation against a running server.  The default endpoint is
the ``.repro-serve.sock`` unix socket in the working directory; pass
``--port`` (and optionally ``--host``) for TCP instead.  ``submit``
accepts experiment names (planned exactly like ``grid sweep``, then
rendered from the served outcomes) or a single ``--workload`` spec.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.grid.cli import _experiment_names, _replay, resolve_store
from repro.grid.scheduler import plan, replay_cache
from repro.grid.spec import RunSpec

#: Default unix-socket endpoint (shared by server and clients).
DEFAULT_SOCKET = ".repro-serve.sock"


def _address_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--socket", metavar="PATH",
                        help=f"unix socket endpoint "
                             f"(default: {DEFAULT_SOCKET})")
    parser.add_argument("--host", default="127.0.0.1",
                        help="TCP host (with --port; default 127.0.0.1)")
    parser.add_argument("--port", type=int, metavar="N",
                        help="TCP port (instead of the unix socket)")


def _connect(args, retry_for_s: float = 5.0):
    """Client connection for one command.

    The default retry window covers the `serve start ... & serve
    submit` shell idiom, where the server may still be importing when
    the first client tries the socket.
    """
    from repro.serve.client import ServeClient

    if args.port is not None:
        return ServeClient.connect(host=args.host, port=args.port,
                                   retry_for_s=retry_for_s)
    return ServeClient.connect(socket_path=args.socket or DEFAULT_SOCKET,
                               retry_for_s=retry_for_s)


def _cmd_start(args) -> int:
    from repro.serve.server import ReproServer
    from repro.units import ns_to_fs

    series_interval_fs = None
    if args.series:
        series_interval_fs = ns_to_fs(args.series_interval_ns) \
            if args.series_interval_ns else 0
    server = ReproServer(
        store=resolve_store(args.store, args.no_store),
        jobs=args.jobs, timeout_s=args.timeout, retries=args.retries,
        series_interval_fs=series_interval_fs, in_process=args.in_process,
        backpressure=args.backpressure)
    if args.port is not None:
        server.run(host=args.host, port=args.port)
    else:
        server.run(socket_path=args.socket or DEFAULT_SOCKET)
    return 0


def _specs_from_args(args) -> tuple[list[RunSpec], list[str]]:
    """The run set to submit: one explicit spec, or planned experiments."""
    if args.workload is not None:
        spec = RunSpec(args.workload, model=args.model, cores=args.cores,
                       clock_ghz=args.clock,
                       bandwidth_gbps=args.bandwidth,
                       prefetch=args.prefetch,
                       prefetch_depth=args.prefetch_depth,
                       preset=args.preset)
        return [spec], []
    from repro.harness import EXPERIMENTS

    names = _experiment_names(args.experiments)
    return plan([EXPERIMENTS[name] for name in names],
                preset=args.preset), names


def _cmd_submit(args) -> int:
    from repro.harness import EXPERIMENTS
    from repro.harness.runner import Runner

    specs, names = _specs_from_args(args)
    transcript = open(args.transcript, "w") if args.transcript else None

    def on_frame(frame: dict) -> None:
        if transcript is not None:
            transcript.write(json.dumps(frame, sort_keys=True) + "\n")
            transcript.flush()
        if args.json:
            print(json.dumps(frame, sort_keys=True), flush=True)

    try:
        with _connect(args) as client:
            report = client.submit(specs, on_frame=on_frame)
    finally:
        if transcript is not None:
            transcript.close()

    if not args.json:
        for outcome in report.outcomes:
            wall = f"{outcome.wall_s:.2f}s" if outcome.wall_s else "-"
            print(f"{outcome.key[:12]}  {outcome.status:<6} "
                  f"{outcome.source:<6} {wall:>8}  {outcome.spec.label()}")
        done = report.done or {}
        print(f"submitted {len(specs)} spec(s): {report.ok} ok, "
              f"{report.failed} failed ({done.get('hits', 0)} store hits, "
              f"{done.get('runs', 0)} runs, {done.get('shared', 0)} shared)",
              file=sys.stderr)
    if names and not args.json:
        failures: dict[str, object] = {
            o.key: o.failure for o in report.outcomes
            if o.status == "failed"}
        runner = Runner(preset=args.preset,
                        cache=replay_cache(report.outcomes))

        def render(_name, result) -> None:
            print(result.to_text())
            print()

        _replay(names, [EXPERIMENTS[name] for name in names], runner,
                failures, render)
    return 1 if report.failed else 0


def _cmd_watch(args) -> int:
    with _connect(args) as client:
        try:
            for frame in client.watch(limit=args.limit):
                print(json.dumps(frame, sort_keys=True), flush=True)
        except (KeyboardInterrupt, ConnectionError):
            pass
    return 0


def _cmd_stats(args) -> int:
    with _connect(args) as client:
        frame = client.stats()
    if args.json:
        print(json.dumps(frame, indent=2, sort_keys=True))
        return 0
    server = frame["server"]
    store = frame["store"]
    print(f"server     : {server['connections_open']} client(s) connected, "
          f"{server['inflight']} run(s) in flight, "
          f"{'threads' if server['in_process'] else 'processes'}="
          f"{server['jobs']}")
    print(f"served     : {server['store_hits']} store hit(s), "
          f"{server['runs_executed']} executed, "
          f"{server['dedup_joins']} dedup join(s), "
          f"{server['failures']} failure(s)")
    print(f"traffic    : {server['connections']} connection(s), "
          f"{server['submissions']} submission(s), "
          f"{server['specs_requested']} spec(s) requested, "
          f"{server['events_dropped']} tick(s) dropped")
    if store is not None:
        print(f"store      : {store['records']} record(s) "
              f"({store['ok']} ok, {store['failed']} failed, "
              f"{store['series']} series) at {store['root']}")
    else:
        print("store      : disabled")
    return 0


def _cmd_stop(args) -> int:
    from repro.serve.client import ServeError

    try:
        # No retry window: stopping a server that is not there should
        # fail immediately, not wait for one to appear.
        with _connect(args, retry_for_s=0.0) as client:
            client.shutdown()
    except (ConnectionError, ServeError, OSError) as exc:
        print(f"serve stop: {exc}", file=sys.stderr)
        return 1
    print("server stopped", file=sys.stderr)
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="async simulation-as-a-service over the grid "
                    "result store")
    sub = parser.add_subparsers(dest="command", required=True)

    start = sub.add_parser("start", help="run the server (foreground)")
    _address_flags(start)
    start.add_argument("--jobs", type=int, default=os.cpu_count() or 1,
                       metavar="N",
                       help="concurrent simulations (default: CPU count)")
    start.add_argument("--store", metavar="PATH",
                       help="result-store directory (default: $REPRO_STORE "
                            "or .repro-cache)")
    start.add_argument("--no-store", action="store_true",
                       help="serve without a persistent store (every "
                            "submission misses; dedup still applies)")
    start.add_argument("--timeout", type=float, metavar="S",
                       help="per-run timeout in seconds")
    start.add_argument("--retries", type=int, default=1,
                       help="resubmissions after a worker exception")
    start.add_argument("--in-process", action="store_true",
                       help="execute runs on threads inside the server "
                            "process instead of a process pool")
    start.add_argument("--backpressure", type=int, default=256, metavar="N",
                       help="outbound frames buffered per client before "
                            "the sender blocks / ticks drop (default 256)")
    start.add_argument("--series", action="store_true",
                       help="sample a metric time series inside every "
                            "executed run (stored beside the result)")
    start.add_argument("--series-interval-ns", type=int, default=0,
                       metavar="NS",
                       help="series sampling window in simulated ns "
                            "(default: 20k core cycles per config)")

    submit = sub.add_parser(
        "submit", help="submit experiments or one spec; stream outcomes")
    _address_flags(submit)
    submit.add_argument("experiments", nargs="*", default=[],
                        help="experiment names (default: all; ignored "
                             "with --workload)")
    submit.add_argument("--preset", default="default",
                        choices=["default", "small", "tiny"])
    from repro import workload_names

    submit.add_argument("--workload", choices=workload_names(),
                        default=None,
                        help="submit a single run of this workload "
                             "instead of planned experiments")
    submit.add_argument("--model", choices=["cc", "str", "icc"],
                        default="cc")
    submit.add_argument("--cores", type=int, default=16)
    submit.add_argument("--clock", type=float, default=0.8)
    submit.add_argument("--bandwidth", type=float, default=6.4)
    submit.add_argument("--prefetch", action="store_true")
    submit.add_argument("--prefetch-depth", type=int, default=4)
    submit.add_argument("--transcript", metavar="PATH",
                        help="record every received frame as JSON lines")
    submit.add_argument("--json", action="store_true",
                        help="print received frames as JSONL instead of "
                             "the rendered summary")

    watch = sub.add_parser(
        "watch", help="stream global progress frames as JSONL")
    _address_flags(watch)
    watch.add_argument("--limit", type=int, default=None, metavar="N",
                       help="stop after N frames (default: forever)")

    stats = sub.add_parser("stats", help="server + store statistics")
    _address_flags(stats)
    stats.add_argument("--json", action="store_true")

    stop = sub.add_parser("stop", help="ask the server to shut down")
    _address_flags(stop)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro serve`` / ``repro.serve``."""
    args = _build_parser().parse_args(argv)
    handler = {"start": _cmd_start, "submit": _cmd_submit,
               "watch": _cmd_watch, "stats": _cmd_stats,
               "stop": _cmd_stop}[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
