"""Thin synchronous client for the serve protocol.

The one client everything speaks through: the ``python -m repro serve
submit|watch|stats|stop`` commands, the test suite, the CI smoke job,
and any future autotuner.  It is deliberately synchronous and
stdlib-only — a blocking socket, one JSON frame per line — so driving
the server never needs an event loop on the client side.

Orchestration-layer wall-clock reads below (connect retry loops) carry
REPRO001 exemptions, as everywhere outside the simulator core.
"""

from __future__ import annotations

import itertools
import socket
import time
from dataclasses import dataclass, field

from repro.grid.scheduler import RunOutcome
from repro.grid.spec import RunSpec
from repro.serve import protocol


class ServeError(RuntimeError):
    """The server answered a request with an ``error`` frame."""


@dataclass
class SubmitReport:
    """Everything one submission produced, in arrival order."""

    outcomes: list[RunOutcome] = field(default_factory=list)
    accepted: dict | None = None
    done: dict | None = None
    frames: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "ok")

    @property
    def failed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "failed")


class ServeClient:
    """One connection to a :class:`~repro.serve.server.ReproServer`."""

    def __init__(self, socket_path: str | None = None,
                 host: str | None = None, port: int | None = None,
                 timeout_s: float | None = None) -> None:
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.connect(str(socket_path))
        elif port is not None:
            self._sock = socket.create_connection((host or "127.0.0.1",
                                                   port))
        else:
            raise ValueError("need a socket_path or a port")
        if timeout_s is not None:
            self._sock.settimeout(timeout_s)
        self._file = self._sock.makefile("rb")
        self._ids = itertools.count(1)
        #: The server's greeting (protocol + code version).
        self.hello = self._recv()
        if self.hello.get("type") != "hello":
            raise ServeError(f"server did not greet: {self.hello}")

    @classmethod
    def connect(cls, socket_path: str | None = None,
                host: str | None = None, port: int | None = None,
                retry_for_s: float = 0.0,
                timeout_s: float | None = None) -> "ServeClient":
        """Connect, retrying for up to ``retry_for_s`` (server startup)."""
        deadline = time.monotonic() + retry_for_s  # repro-lint: disable=REPRO001
        while True:
            try:
                return cls(socket_path=socket_path, host=host, port=port,
                           timeout_s=timeout_s)
            except OSError:
                if time.monotonic() >= deadline:  # repro-lint: disable=REPRO001
                    raise
                time.sleep(0.05)

    # -- plumbing --------------------------------------------------------

    def _send(self, frame: dict) -> None:
        self._sock.sendall(protocol.encode(frame))

    def _recv(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return protocol.decode(line)

    def _request(self, kind: str, **fields) -> dict:
        """Send one request; returns its id."""
        rid = f"r{next(self._ids)}"
        self._send({"type": kind, "id": rid, **fields})
        return rid

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- requests --------------------------------------------------------

    def ping(self) -> dict:
        rid = self._request("ping")
        return self._expect("pong", rid)

    def stats(self) -> dict:
        """Store + server + progress statistics, one frame."""
        rid = self._request("stats")
        return self._expect("stats", rid)

    def shutdown(self) -> dict:
        """Ask the server to stop; returns the ``bye`` frame."""
        rid = self._request("shutdown")
        return self._expect("bye", rid)

    def submit(self, specs, on_frame=None) -> SubmitReport:
        """Submit specs; block until every unique spec has settled.

        ``specs`` is an iterable of :class:`RunSpec` (or spec dicts).
        ``on_frame(frame)`` observes every received frame in arrival
        order — the transcript hook.  Returns a :class:`SubmitReport`
        whose ``outcomes`` are real :class:`RunOutcome` objects, so a
        served sweep can be replayed through ``replay_cache`` exactly
        like a local one.
        """
        payload = [spec.to_dict() if isinstance(spec, RunSpec) else spec
                   for spec in specs]
        rid = self._request("submit", specs=payload)
        report = SubmitReport()
        while True:
            frame = self._recv()
            if frame.get("id") != rid:
                continue              # a watch tick or stale frame
            report.frames.append(frame)
            if on_frame is not None:
                on_frame(frame)
            kind = frame["type"]
            if kind == "accepted":
                report.accepted = frame
            elif kind == "outcome":
                report.outcomes.append(protocol.outcome_from_frame(frame))
            elif kind == "done":
                report.done = frame
                return report
            elif kind == "error":
                raise ServeError(frame["message"])

    def watch(self, limit: int | None = None):
        """Yield global ``progress`` frames as the server emits them.

        Runs forever when ``limit`` is None (until the connection or a
        surrounding timeout ends it); a lagging consumer loses ticks on
        the server side rather than stalling anyone else.
        """
        rid = self._request("watch")
        self._expect("watching", rid)
        seen = 0
        while limit is None or seen < limit:
            frame = self._recv()
            if frame.get("type") != "progress":
                continue
            yield frame
            seen += 1

    def _expect(self, kind: str, rid) -> dict:
        """The next frame answering ``rid``; must be ``kind`` or error."""
        while True:
            frame = self._recv()
            if frame.get("id") != rid:
                continue
            if frame.get("type") == "error":
                raise ServeError(frame["message"])
            if frame.get("type") != kind:
                raise ServeError(f"expected a {kind} frame, got "
                                 f"{frame.get('type')!r}")
            return frame


__all__ = ["ServeClient", "ServeError", "SubmitReport"]
