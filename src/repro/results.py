"""Result records produced by a simulation run.

:class:`RunResult` is the unit every experiment consumes: it carries the
execution-time breakdown of Figure 2, the off-chip traffic of Figure 3,
the energy breakdown of Figure 4, and the derived memory-characteristic
metrics of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.units import fs_to_ms, mb_per_s


@dataclass(frozen=True)
class Breakdown:
    """Mean per-core execution-time components, in femtoseconds."""

    useful_fs: float
    sync_fs: float
    load_fs: float
    store_fs: float

    @property
    def total_fs(self) -> float:
        """Sum of the four components."""
        return self.useful_fs + self.sync_fs + self.load_fs + self.store_fs

    def fractions(self) -> dict[str, float]:
        """Components normalized to the total."""
        total = self.total_fs
        if total <= 0:
            return {"useful": 0.0, "sync": 0.0, "load": 0.0, "store": 0.0}
        return {
            "useful": self.useful_fs / total,
            "sync": self.sync_fs / total,
            "load": self.load_fs / total,
            "store": self.store_fs / total,
        }

    def scaled(self, factor: float) -> "Breakdown":
        """A copy with every component multiplied by ``factor``."""
        return Breakdown(
            useful_fs=self.useful_fs * factor,
            sync_fs=self.sync_fs * factor,
            load_fs=self.load_fs * factor,
            store_fs=self.store_fs * factor,
        )

    def to_dict(self) -> dict:
        """JSON-safe mapping; values pass through untouched (no rounding)."""
        return {"useful_fs": self.useful_fs, "sync_fs": self.sync_fs,
                "load_fs": self.load_fs, "store_fs": self.store_fs}

    @classmethod
    def from_dict(cls, data: dict) -> "Breakdown":
        """Rebuild a breakdown written by :meth:`to_dict`."""
        return cls(**data)


@dataclass(frozen=True)
class Traffic:
    """Off-chip traffic in bytes (Figure 3)."""

    read_bytes: int
    write_bytes: int

    @property
    def total_bytes(self) -> int:
        """Read plus write bytes."""
        return self.read_bytes + self.write_bytes

    def to_dict(self) -> dict:
        """JSON-safe mapping of both directions."""
        return {"read_bytes": self.read_bytes, "write_bytes": self.write_bytes}

    @classmethod
    def from_dict(cls, data: dict) -> "Traffic":
        """Rebuild a traffic record written by :meth:`to_dict`."""
        return cls(**data)


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy in joules, split by the Figure 4 categories."""

    core: float
    icache: float
    dcache: float
    local_store: float
    network: float
    l2: float
    dram: float

    @property
    def total(self) -> float:
        """Sum of every category, in joules."""
        return (self.core + self.icache + self.dcache + self.local_store
                + self.network + self.l2 + self.dram)

    def as_dict(self) -> dict[str, float]:
        """Category name -> joules."""
        return {
            "core": self.core,
            "icache": self.icache,
            "dcache": self.dcache,
            "local_store": self.local_store,
            "network": self.network,
            "l2": self.l2,
            "dram": self.dram,
        }

    #: :meth:`as_dict` already is the JSON form; alias for store symmetry.
    to_dict = as_dict

    @classmethod
    def from_dict(cls, data: dict) -> "EnergyBreakdown":
        """Rebuild an energy breakdown written by :meth:`to_dict`."""
        return cls(**data)


@dataclass(frozen=True)
class RunResult:
    """Everything measured from one simulation run."""

    workload: str
    model: str
    num_cores: int
    clock_ghz: float
    exec_time_fs: int
    settled_fs: int
    breakdown: Breakdown
    traffic: Traffic
    energy: EnergyBreakdown
    instructions: int
    word_accesses: int
    local_accesses: int
    l1_misses: int
    l1_load_misses: int
    l1_store_misses: int
    l2_accesses: int
    l2_misses: int
    stats: dict[str, float] = field(default_factory=dict)

    @property
    def exec_time_ms(self) -> float:
        """Execution time in milliseconds."""
        return fs_to_ms(self.exec_time_fs)

    @property
    def l1_miss_rate(self) -> float:
        """L1 D-miss rate over all data accesses (Table 3)."""
        if self.word_accesses == 0:
            return 0.0
        return self.l1_misses / self.word_accesses

    @property
    def l2_miss_rate(self) -> float:
        """L2 misses over L2 accesses."""
        if self.l2_accesses == 0:
            return 0.0
        return self.l2_misses / self.l2_accesses

    @property
    def instructions_per_l1_miss(self) -> float:
        """Table 3's compute-density metric."""
        if self.l1_misses == 0:
            return float("inf")
        return self.instructions / self.l1_misses

    @property
    def cycles_per_l2_miss(self) -> float:
        """Core cycles elapsed per L2 miss (Table 3's 'Cycles per L2 D-Miss')."""
        if self.l2_misses == 0:
            return float("inf")
        cycle_fs = round(1_000_000 / self.clock_ghz)
        return self.exec_time_fs / cycle_fs / self.l2_misses

    @property
    def offchip_mb_per_s(self) -> float:
        """Average off-chip bandwidth in MB/s (Table 3).

        Measured over the *settled* duration — execution plus the final
        flush of dirty cached state — so the average can never exceed the
        channel's capacity.
        """
        duration = max(self.exec_time_fs, self.settled_fs)
        if duration == 0:
            return 0.0
        return mb_per_s(self.traffic.total_bytes, duration)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.workload}/{self.model} cores={self.num_cores} "
            f"@{self.clock_ghz}GHz: {self.exec_time_ms:.3f} ms, "
            f"traffic={self.traffic.total_bytes / 1e6:.2f} MB, "
            f"energy={self.energy.total * 1e3:.2f} mJ"
        )

    def to_dict(self) -> dict:
        """Lossless JSON-safe form.

        Every numeric field passes through unchanged — ints stay ints,
        floats stay floats — so ``from_dict(json.loads(json.dumps(d)))``
        reconstructs a bit-identical record.  This exactness is what lets
        the parallel grid path (worker → JSON store → replay) guarantee
        results identical to an in-process serial run.
        """
        return {
            "workload": self.workload,
            "model": self.model,
            "num_cores": self.num_cores,
            "clock_ghz": self.clock_ghz,
            "exec_time_fs": self.exec_time_fs,
            "settled_fs": self.settled_fs,
            "breakdown": self.breakdown.to_dict(),
            "traffic": self.traffic.to_dict(),
            "energy": self.energy.to_dict(),
            "instructions": self.instructions,
            "word_accesses": self.word_accesses,
            "local_accesses": self.local_accesses,
            "l1_misses": self.l1_misses,
            "l1_load_misses": self.l1_load_misses,
            "l1_store_misses": self.l1_store_misses,
            "l2_accesses": self.l2_accesses,
            "l2_misses": self.l2_misses,
            "stats": dict(self.stats),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        """Rebuild a result written by :meth:`to_dict`.

        Unknown keys are rejected so records written by a newer schema
        fail loudly instead of silently dropping measurements.
        """
        data = dict(data)
        try:
            breakdown = Breakdown.from_dict(data.pop("breakdown"))
            traffic = Traffic.from_dict(data.pop("traffic"))
            energy = EnergyBreakdown.from_dict(data.pop("energy"))
        except KeyError as missing:
            raise ValueError(f"RunResult record missing {missing}") from None
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown RunResult keys {sorted(unknown)}")
        return cls(breakdown=breakdown, traffic=traffic, energy=energy,
                   **data)

