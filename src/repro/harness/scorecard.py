"""The paper's quantitative claims, machine-checked.

Every number the paper states in prose ("streaming is 36% faster",
"write-backs reduced 60%", "7x speedup", ...) is encoded here as a
:class:`Claim` with an acceptance band, measured against the simulator,
and rendered as a scorecard — the authoritative paper-vs-measured
summary behind EXPERIMENTS.md.  ``python -m repro scorecard`` prints it;
``benchmarks/test_scorecard.py`` asserts every claim stays in band.

Bands are deliberately generous where the substrate substitution
(a cycle-approximate event simulator instead of the authors' Tensilica
RTL-derived one) makes exact magnitudes unreachable; the *sign* of every
comparison must always hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.harness.runner import ExperimentResult, Runner


@dataclass(frozen=True)
class Claim:
    """One quantitative statement from the paper."""

    id: str
    section: str
    statement: str
    paper_value: float
    #: Measured value, computed from (memoized) simulation runs.
    measure: Callable[[Runner], float]
    #: Inclusive acceptance band for the measured value.
    low: float
    high: float

    def evaluate(self, runner: Runner) -> dict:
        """Measure the claim; returns the scorecard row."""
        measured = self.measure(runner)
        return {
            "claim": self.id,
            "section": self.section,
            "statement": self.statement,
            "paper": self.paper_value,
            "measured": measured,
            "band": f"[{self.low:g}, {self.high:g}]",
            "ok": self.low <= measured <= self.high,
        }


# ----------------------------------------------------------------------
# Measurement helpers (every run is memoized by the shared Runner)
# ----------------------------------------------------------------------

def _gain(slow, fast) -> float:
    """Fractional speedup of ``fast`` over ``slow``."""
    return 1.0 - fast.exec_time_fs / slow.exec_time_fs


def _fir_traffic_ratio(r: Runner) -> float:
    cc = r.run("fir", model="cc", cores=16)
    st = r.run("fir", model="str", cores=16)
    return st.traffic.total_bytes / cc.traffic.total_bytes


def _fir_streaming_gain(r: Runner) -> float:
    cc = r.run("fir", model="cc", cores=16, clock_ghz=6.4)
    st = r.run("fir", model="str", cores=16, clock_ghz=6.4)
    return _gain(cc, st)


def _bitonic_caching_gain(r: Runner) -> float:
    cc = r.run("bitonic", model="cc", cores=16, clock_ghz=6.4)
    st = r.run("bitonic", model="str", cores=16, clock_ghz=6.4)
    return _gain(st, cc)


def _bitonic_streaming_write_ratio(r: Runner) -> float:
    # The effect needs the key array to exceed the 512 KB L2 (otherwise
    # both models' writes coalesce on chip), so the array size is pinned
    # regardless of the runner's preset.
    big = {"n_keys": 1 << 18}
    cc = r.run("bitonic", model="cc", cores=16, overrides=big)
    st = r.run("bitonic", model="str", cores=16, overrides=big)
    return st.traffic.write_bytes / cc.traffic.write_bytes


def _mpeg2_streaming_gain(r: Runner) -> float:
    cc = r.run("mpeg2", model="cc", cores=16, clock_ghz=6.4)
    st = r.run("mpeg2", model="str", cores=16, clock_ghz=6.4)
    return _gain(cc, st)


def _merge_prefetch_stall_cut(r: Runner) -> float:
    kwargs = dict(cores=2, clock_ghz=3.2, bandwidth_gbps=12.8)
    base = r.run("merge", model="cc", **kwargs)
    pf = r.run("merge", model="cc", prefetch=True, **kwargs)
    return 1.0 - pf.breakdown.load_fs / base.breakdown.load_fs


def _art_prefetch_stall_cut(r: Runner) -> float:
    kwargs = dict(cores=2, clock_ghz=3.2, bandwidth_gbps=12.8)
    base = r.run("art", model="cc", **kwargs)
    pf = r.run("art", model="cc", prefetch=True, **kwargs)
    return 1.0 - pf.breakdown.load_fs / base.breakdown.load_fs


def _fir_pfs_parity(r: Runner) -> float:
    pfs = r.run("fir", model="cc", cores=16, overrides={"pfs": True})
    st = r.run("fir", model="str", cores=16)
    return pfs.traffic.total_bytes / st.traffic.total_bytes


def _mpeg2_pfs_refill_cut(r: Runner) -> float:
    cc = r.run("mpeg2", model="cc", cores=16)
    pfs = r.run("mpeg2", model="cc", cores=16, overrides={"pfs": True})
    return 1.0 - pfs.traffic.read_bytes / cc.traffic.read_bytes


def _mpeg2_writeback_cut(r: Runner) -> float:
    orig = r.run("mpeg2", model="cc", cores=16,
                 overrides={"structure": "original", "icache_miss_per_mb": 0})
    opt = r.run("mpeg2", model="cc", cores=16)
    return 1.0 - opt.stats["l1.writebacks"] / orig.stats["l1.writebacks"]


def _mpeg2_restructure_gain(r: Runner) -> float:
    orig = r.run("mpeg2", model="cc", cores=16,
                 overrides={"structure": "original", "icache_miss_per_mb": 0})
    opt = r.run("mpeg2", model="cc", cores=16)
    return _gain(orig, opt)


def _art_restructure_speedup(r: Runner) -> float:
    orig = r.run("art", model="cc", cores=2,
                 overrides={"layout": "original"})
    opt = r.run("art", model="cc", cores=2)
    return orig.exec_time_fs / opt.exec_time_fs


def _jpeg_dec_energy_saving(r: Runner) -> float:
    cc = r.run("jpeg_dec", model="cc", cores=16)
    st = r.run("jpeg_dec", model="str", cores=16)
    return 1.0 - st.energy.total / cc.energy.total


def _fem_traffic_parity(r: Runner) -> float:
    cc = r.run("fem", model="cc", cores=16)
    st = r.run("fem", model="str", cores=16)
    return st.traffic.total_bytes / cc.traffic.total_bytes


def _compute_bound_model_gap(r: Runner) -> float:
    """Worst-case CC-vs-STR gap across the compute-bound seven at 16 cores."""
    worst = 0.0
    for name in ("mpeg2", "h264", "depth", "raytracer", "fem",
                 "jpeg_dec"):
        cc = r.run(name, model="cc", cores=16)
        st = r.run(name, model="str", cores=16)
        gap = abs(cc.exec_time_fs - st.exec_time_fs) / cc.exec_time_fs
        worst = max(worst, gap)
    return worst


def _fir_prefetch_residual_stall(r: Runner) -> float:
    pf = r.run("fir", model="cc", cores=16, clock_ghz=3.2,
               bandwidth_gbps=12.8, prefetch=True)
    return pf.breakdown.load_fs / pf.breakdown.total_fs


CLAIMS: list[Claim] = [
    Claim("fir-traffic-ratio", "§2.3/Fig 3",
          "streaming FIR moves 2/3 of the cache model's bytes (no output refills)",
          0.667, _fir_traffic_ratio, 0.60, 0.72),
    Claim("fir-streaming-gain-6.4GHz", "§5.3/Fig 5",
          "streaming FIR is 36% faster at the highest computational throughput",
          0.36, _fir_streaming_gain, 0.20, 0.50),
    Claim("bitonic-caching-gain-6.4GHz", "§5.3/Fig 5",
          "the cache-based BitonicSort is 19% faster at 6.4 GHz",
          0.19, _bitonic_caching_gain, 0.05, 0.40),
    Claim("bitonic-streaming-writes", "§5.1/Fig 3",
          "streaming BitonicSort writes back unmodified data (more write traffic)",
          2.0, _bitonic_streaming_write_ratio, 1.5, 4.0),
    Claim("mpeg2-streaming-gain-6.4GHz", "§5.3",
          "the streaming MPEG-2 encoder is 9% faster at 6.4 GHz",
          0.09, _mpeg2_streaming_gain, 0.02, 0.35),
    Claim("merge-prefetch-stall-cut", "§5.4/Fig 7",
          "prefetching virtually eliminates MergeSort's data stalls",
          1.0, _merge_prefetch_stall_cut, 0.9, 1.0),
    Claim("art-prefetch-stall-cut", "§5.4/Fig 7",
          "prefetching virtually eliminates 179.art's data stalls",
          1.0, _art_prefetch_stall_cut, 0.9, 1.0),
    Claim("fir-prefetch-residual", "§5.4/Fig 6",
          "with prefetching at 12.8 GB/s, load stalls drop to 3% of execution",
          0.03, _fir_prefetch_residual_stall, 0.0, 0.06),
    Claim("fir-pfs-parity", "§5.5/Fig 8",
          "PFS brings cache-model traffic into parity with streaming",
          1.0, _fir_pfs_parity, 0.95, 1.05),
    Claim("mpeg2-pfs-refill-cut", "§5.5/Fig 8",
          "PFS cuts MPEG-2's write-miss refill traffic (56% of write-miss reads)",
          0.36, _mpeg2_pfs_refill_cut, 0.2, 0.6),
    Claim("mpeg2-writeback-cut", "§6/Fig 9",
          "loop fusion reduces MPEG-2's L1 write-backs by 60%",
          0.60, _mpeg2_writeback_cut, 0.5, 0.95),
    Claim("mpeg2-restructure-gain", "§6/Fig 9",
          "stream programming improves MPEG-2 by 40% at 16 cores",
          0.40, _mpeg2_restructure_gain, 0.3, 0.6),
    Claim("art-restructure-speedup", "§6/Fig 10",
          "stream programming speeds 179.art up ~7x even at 2 cores",
          7.0, _art_restructure_speedup, 4.0, 10.0),
    Claim("jpeg-dec-energy-saving", "§5.2/Fig 4",
          "streaming saves 10-25% energy on refill-dominated applications",
          0.175, _jpeg_dec_energy_saving, 0.05, 0.30),
    Claim("fem-traffic-parity", "§5.1/Fig 3",
          "FEM's off-chip traffic is nearly identical under both models",
          1.0, _fem_traffic_parity, 0.8, 1.25),
    Claim("compute-bound-parity", "§5.1/Fig 2",
          "the compute-bound applications perform almost identically",
          0.0, _compute_bound_model_gap, 0.0, 0.12),
]


def scorecard(runner: Runner | None = None) -> ExperimentResult:
    """Evaluate every claim; returns the scorecard as an experiment."""
    runner = runner or Runner()
    out = ExperimentResult(
        "scorecard",
        "Paper-claim scorecard (prose numbers vs this reproduction)",
        ["claim", "section", "paper", "measured", "band", "ok"],
    )
    for claim in CLAIMS:
        out.add(**claim.evaluate(runner))
    return out
