"""The paper's evaluation, one function per table/figure.

Each function returns an :class:`~repro.harness.runner.ExperimentResult`
whose rows correspond to the bars/points of the original figure.
Execution times are normalized to the sequential run on the cache-based
system, exactly as the paper's figures are (Section 5.1); traffic and
energy are normalized to a single caching core (Figures 3, 4, 8).

All functions accept a ``runner`` so callers (benchmarks, tests) control
the workload scale via the runner's preset and share the memo cache.
"""

from __future__ import annotations

from repro.harness.runner import ExperimentResult, Runner
from repro.results import RunResult

#: The full suite in Table 3 order.
ALL_WORKLOADS = [
    "mpeg2", "h264", "raytracer", "jpeg_enc", "jpeg_dec", "depth",
    "fem", "fir", "art", "bitonic", "merge",
]

#: The applications Figures 3 and 4 single out.
TRAFFIC_WORKLOADS = ["fem", "mpeg2", "fir", "bitonic"]

CORE_SWEEP = (2, 4, 8, 16)
CLOCK_SWEEP = (0.8, 1.6, 3.2, 6.4)
BANDWIDTH_SWEEP = (1.6, 3.2, 6.4, 12.8)


def _breakdown_fields(result: RunResult, reference_fs: float) -> dict:
    """Stacked-bar components normalized to a reference execution time."""
    b = result.breakdown
    scale = reference_fs or 1.0
    return {
        "useful": b.useful_fs / scale,
        "sync": b.sync_fs / scale,
        "load": b.load_fs / scale,
        "store": b.store_fs / scale,
        "normalized_time": result.exec_time_fs / scale,
    }


def table3(runner: Runner | None = None) -> ExperimentResult:
    """Table 3: memory characteristics on the cache-based model, 16 cores."""
    runner = runner or Runner()
    out = ExperimentResult(
        "table3",
        "Table 3: memory characteristics (CC, 16 cores @ 800 MHz)",
        ["app", "l1_miss_rate_pct", "l2_miss_rate_pct",
         "instr_per_l1_miss", "cycles_per_l2_miss", "offchip_mb_s"],
    )
    for name in ALL_WORKLOADS:
        r = runner.run(name, model="cc", cores=16)
        out.add(
            app=name,
            l1_miss_rate_pct=100 * r.l1_miss_rate,
            l2_miss_rate_pct=100 * r.l2_miss_rate,
            instr_per_l1_miss=r.instructions_per_l1_miss,
            cycles_per_l2_miss=r.cycles_per_l2_miss,
            offchip_mb_s=r.offchip_mb_per_s,
        )
    return out


def figure2(runner: Runner | None = None,
            workloads: list[str] | None = None,
            core_counts: tuple[int, ...] = CORE_SWEEP) -> ExperimentResult:
    """Figure 2: normalized execution time vs core count, CC vs STR."""
    runner = runner or Runner()
    out = ExperimentResult(
        "figure2",
        "Figure 2: execution time vs cores (normalized to 1 caching core)",
        ["app", "model", "cores", "normalized_time",
         "useful", "sync", "load", "store"],
    )
    for name in workloads or ALL_WORKLOADS:
        reference = runner.baseline(name).exec_time_fs
        for cores in core_counts:
            for model in ("cc", "str"):
                r = runner.run(name, model=model, cores=cores)
                out.add(app=name, model=model, cores=cores,
                        **_breakdown_fields(r, reference))
    return out


def figure3(runner: Runner | None = None,
            workloads: list[str] | None = None) -> ExperimentResult:
    """Figure 3: off-chip traffic at 16 CPUs, normalized to 1 caching core."""
    runner = runner or Runner()
    out = ExperimentResult(
        "figure3",
        "Figure 3: off-chip traffic (16 CPUs, normalized to 1 caching core)",
        ["app", "model", "read", "write", "total"],
    )
    for name in workloads or TRAFFIC_WORKLOADS:
        reference = runner.baseline(name).traffic.total_bytes or 1
        for model in ("cc", "str"):
            r = runner.run(name, model=model, cores=16)
            out.add(
                app=name, model=model,
                read=r.traffic.read_bytes / reference,
                write=r.traffic.write_bytes / reference,
                total=r.traffic.total_bytes / reference,
            )
    return out


def figure4(runner: Runner | None = None,
            workloads: list[str] | None = None) -> ExperimentResult:
    """Figure 4: energy at 16 CPUs, normalized to 1 caching core."""
    runner = runner or Runner()
    out = ExperimentResult(
        "figure4",
        "Figure 4: energy consumption (16 CPUs, normalized to 1 caching core)",
        ["app", "model", "core", "icache", "dcache", "local_store",
         "network", "l2", "dram", "total"],
    )
    for name in workloads or TRAFFIC_WORKLOADS:
        reference = runner.baseline(name).energy.total or 1.0
        for model in ("cc", "str"):
            r = runner.run(name, model=model, cores=16)
            fields = {k: v / reference for k, v in r.energy.as_dict().items()}
            fields["total"] = r.energy.total / reference
            out.add(app=name, model=model, **fields)
    return out


def figure5(runner: Runner | None = None,
            workloads: list[str] | None = None,
            clocks: tuple[float, ...] = CLOCK_SWEEP) -> ExperimentResult:
    """Figure 5: execution time as core clock scales (16 cores)."""
    runner = runner or Runner()
    out = ExperimentResult(
        "figure5",
        "Figure 5: execution time vs core clock (16 cores, normalized to "
        "1 caching core @ 800 MHz)",
        ["app", "model", "clock_ghz", "normalized_time",
         "useful", "sync", "load", "store"],
    )
    for name in workloads or ["mpeg2", "fir", "bitonic"]:
        reference = runner.baseline(name).exec_time_fs
        for ghz in clocks:
            for model in ("cc", "str"):
                r = runner.run(name, model=model, cores=16, clock_ghz=ghz)
                out.add(app=name, model=model, clock_ghz=ghz,
                        **_breakdown_fields(r, reference))
    return out


def figure6(runner: Runner | None = None,
            bandwidths: tuple[float, ...] = BANDWIDTH_SWEEP) -> ExperimentResult:
    """Figure 6: FIR vs off-chip bandwidth (16 cores @ 3.2 GHz).

    Includes the paper's extra point: the cache-based system with
    hardware prefetching at 12.8 GB/s, which cuts load stalls to a few
    percent of execution time (Section 5.4).
    """
    runner = runner or Runner()
    out = ExperimentResult(
        "figure6",
        "Figure 6: FIR vs off-chip bandwidth (16 cores @ 3.2 GHz)",
        ["model", "bandwidth_gbps", "prefetch", "normalized_time",
         "useful", "sync", "load", "store"],
    )
    reference = runner.baseline("fir").exec_time_fs
    for bw in bandwidths:
        for model in ("cc", "str"):
            r = runner.run("fir", model=model, cores=16, clock_ghz=3.2,
                           bandwidth_gbps=bw)
            out.add(model=model, bandwidth_gbps=bw, prefetch=False,
                    **_breakdown_fields(r, reference))
    r = runner.run("fir", model="cc", cores=16, clock_ghz=3.2,
                   bandwidth_gbps=bandwidths[-1], prefetch=True)
    out.add(model="cc", bandwidth_gbps=bandwidths[-1], prefetch=True,
            **_breakdown_fields(r, reference))
    return out


def figure7(runner: Runner | None = None,
            workloads: list[str] | None = None) -> ExperimentResult:
    """Figure 7: hardware prefetching (depth 4), 2 cores @ 3.2 GHz, 12.8 GB/s."""
    runner = runner or Runner()
    out = ExperimentResult(
        "figure7",
        "Figure 7: effect of hardware prefetching (2 cores @ 3.2 GHz, "
        "12.8 GB/s)",
        ["app", "config", "normalized_time", "useful", "sync", "load", "store"],
    )
    kwargs = dict(cores=2, clock_ghz=3.2, bandwidth_gbps=12.8)
    for name in workloads or ["merge", "art"]:
        reference = runner.baseline(name).exec_time_fs
        r = runner.run(name, model="cc", **kwargs)
        out.add(app=name, config="CC", **_breakdown_fields(r, reference))
        r = runner.run(name, model="cc", prefetch=True, prefetch_depth=4,
                       **kwargs)
        out.add(app=name, config="CC+P4", **_breakdown_fields(r, reference))
        r = runner.run(name, model="str", **kwargs)
        out.add(app=name, config="STR", **_breakdown_fields(r, reference))
    return out


def figure8(runner: Runner | None = None,
            workloads: list[str] | None = None) -> ExperimentResult:
    """Figure 8: "Prepare For Store" traffic + FIR energy (16 cores @ 800 MHz).

    Traffic rows carry read/write normalized to one caching core; the FIR
    rows also carry the normalized energy total (the paper's right-hand
    graph).
    """
    runner = runner or Runner()
    out = ExperimentResult(
        "figure8",
        "Figure 8: PFS off-chip traffic and FIR energy (16 cores @ 800 MHz)",
        ["app", "config", "read", "write", "total", "energy"],
    )
    for name in workloads or ["fir", "merge", "mpeg2"]:
        base = runner.baseline(name)
        traffic_ref = base.traffic.total_bytes or 1
        energy_ref = base.energy.total or 1.0
        variants = [
            ("CC", dict(model="cc")),
            ("CC+PFS", dict(model="cc", overrides={"pfs": True})),
            ("STR", dict(model="str")),
        ]
        for label, kw in variants:
            r = runner.run(name, cores=16, **kw)
            out.add(
                app=name, config=label,
                read=r.traffic.read_bytes / traffic_ref,
                write=r.traffic.write_bytes / traffic_ref,
                total=r.traffic.total_bytes / traffic_ref,
                energy=r.energy.total / energy_ref,
            )
    return out


def figure9(runner: Runner | None = None,
            core_counts: tuple[int, ...] = CORE_SWEEP) -> ExperimentResult:
    """Figure 9: stream-programming optimizations on cache-based MPEG-2.

    Compares the original kernel-per-frame structure ("ORIG") against the
    fused stream-programmed structure ("OPT") on the cache-based model:
    off-chip traffic and execution time at 800 MHz.
    """
    runner = runner or Runner()
    out = ExperimentResult(
        "figure9",
        "Figure 9: stream programming on cache-based MPEG-2 (800 MHz)",
        ["variant", "cores", "normalized_time", "useful", "sync", "load",
         "store", "read", "write", "l1_writebacks"],
    )
    base = runner.baseline("mpeg2")
    reference_fs = base.exec_time_fs
    traffic_ref = base.traffic.total_bytes or 1
    variants = [
        ("ORIG", {"structure": "original", "icache_miss_per_mb": 0}),
        ("OPT", None),
    ]
    for label, overrides in variants:
        for cores in core_counts:
            r = runner.run("mpeg2", model="cc", cores=cores,
                           overrides=overrides)
            out.add(variant=label, cores=cores,
                    read=r.traffic.read_bytes / traffic_ref,
                    write=r.traffic.write_bytes / traffic_ref,
                    l1_writebacks=r.stats["l1.writebacks"],
                    **_breakdown_fields(r, reference_fs))
    return out


def figure10(runner: Runner | None = None,
             core_counts: tuple[int, ...] = CORE_SWEEP) -> ExperimentResult:
    """Figure 10: stream-programming optimizations on cache-based 179.art."""
    runner = runner or Runner()
    out = ExperimentResult(
        "figure10",
        "Figure 10: stream programming on cache-based 179.art (800 MHz)",
        ["variant", "cores", "normalized_time", "useful", "sync", "load",
         "store"],
    )
    base = runner.baseline("art")
    reference_fs = base.exec_time_fs
    variants = [
        ("ORIG", {"layout": "original"}),
        ("OPT", None),
    ]
    for label, overrides in variants:
        for cores in core_counts:
            r = runner.run("art", model="cc", cores=cores,
                           overrides=overrides)
            out.add(variant=label, cores=cores,
                    **_breakdown_fields(r, reference_fs))
    return out
