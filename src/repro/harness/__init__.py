"""Experiment harness: one entry point per table/figure of the paper.

:mod:`repro.harness.runner` runs (and memoizes) individual simulations;
:mod:`repro.harness.experiments` composes them into the paper's
evaluation artifacts; :mod:`repro.harness.reports` renders the results
as text tables shaped like the paper's rows/series.
"""

from repro.harness.experiments import (
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    table3,
)
from repro.harness.reports import format_table
from repro.harness.scorecard import CLAIMS, Claim, scorecard
from repro.harness.runner import ExperimentResult, Runner

#: Every regenerable artifact, in ``python -m repro all`` order.  The CLI
#: and the grid scheduler both dispatch through this table.
EXPERIMENTS = {
    "scorecard": scorecard,
    "table3": table3,
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
}

__all__ = [
    "EXPERIMENTS",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "table3",
    "scorecard",
    "CLAIMS",
    "Claim",
    "format_table",
    "ExperimentResult",
    "Runner",
]
