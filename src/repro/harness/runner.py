"""Simulation runner with a pluggable result cache.

Many experiments share runs (every figure normalizes to the one-core
cache-based execution, Figure 3/4 reuse Figure 2's 16-core points, ...),
so the :class:`Runner` caches :class:`~repro.results.RunResult` objects
by their full configuration key.

The cache backend is pluggable (any object with ``get(spec)`` /
``put(spec, outcome)``), which is how the grid subsystem composes with
the unchanged experiment functions:

* :class:`~repro.grid.store.MemoryCache` (the default) — the classic
  per-process memo dict;
* :class:`~repro.grid.store.StoreCache` — results persist in the
  on-disk content-addressed store and survive the process;
* :class:`~repro.grid.scheduler.PlanCache` — records the requested run
  set without simulating, for parallel sweep planning;
* a cache pre-filled by :func:`repro.grid.scheduler.replay_cache` —
  replays a parallel sweep's results through the experiments.

A cached :class:`~repro.grid.store.FailedRun` raises a clean
:class:`~repro.grid.store.RunFailedError` instead of re-simulating, so
a sweep's recorded failures surface deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.grid.keys import freeze
from repro.grid.spec import RunSpec
from repro.grid.store import FailedRun, MemoryCache, RunFailedError
from repro.results import RunResult

#: Back-compat alias: the one true canonicalizer lives with the grid
#: key-hashing (it now handles sets and rejects unhashable leaves).
_freeze = freeze


class Runner:
    """Builds configurations, runs workloads, and caches the results."""

    def __init__(self, preset: str = "default", cache=None) -> None:
        self.preset = preset
        self._cache = MemoryCache() if cache is None else cache
        self.runs = 0

    @property
    def cache(self):
        """The cache backend (``get``/``put``) behind this runner."""
        return self._cache

    def run(self, workload: str, model: str = "cc", cores: int = 16,
            clock_ghz: float = 0.8, bandwidth_gbps: float = 6.4,
            prefetch: bool = False, prefetch_depth: int = 4,
            overrides: dict | None = None) -> RunResult:
        """Run one simulation (or return the cached result).

        Raises :class:`~repro.grid.store.RunFailedError` when the cache
        holds a recorded failure for this configuration.
        """
        spec = RunSpec(workload=workload, model=model, cores=cores,
                       clock_ghz=clock_ghz, bandwidth_gbps=bandwidth_gbps,
                       prefetch=prefetch, prefetch_depth=prefetch_depth,
                       preset=self.preset, overrides=overrides)
        cached = self._cache.get(spec)
        if isinstance(cached, FailedRun):
            raise RunFailedError(cached)
        if cached is not None:
            return cached
        result = spec.execute()
        self._cache.put(spec, result)
        self.runs += 1
        return result

    def baseline(self, workload: str, clock_ghz: float = 0.8,
                 bandwidth_gbps: float = 6.4,
                 overrides: dict | None = None) -> RunResult:
        """The normalization reference: one cache-based core (Section 5.1)."""
        return self.run(workload, model="cc", cores=1, clock_ghz=clock_ghz,
                        bandwidth_gbps=bandwidth_gbps, overrides=overrides)


@dataclass
class ExperimentResult:
    """Structured output of one experiment (one table or figure)."""

    experiment: str
    title: str
    headers: list[str]
    rows: list[dict] = field(default_factory=list)

    def add(self, **fields) -> None:
        """Append one row."""
        self.rows.append(fields)

    def column(self, name: str) -> list:
        """One column across all rows."""
        return [row.get(name) for row in self.rows]

    def select(self, **criteria) -> list[dict]:
        """Rows matching every (column == value) criterion."""
        out = []
        for row in self.rows:
            if all(row.get(k) == v for k, v in criteria.items()):
                out.append(row)
        return out

    def one(self, **criteria) -> dict:
        """The unique row matching the criteria (raises otherwise)."""
        rows = self.select(**criteria)
        if len(rows) != 1:
            raise LookupError(
                f"{self.experiment}: expected exactly one row for "
                f"{criteria}, found {len(rows)}"
            )
        return rows[0]

    def to_text(self) -> str:
        """Aligned ASCII-table rendering with the title."""
        from repro.harness.reports import format_table

        cells = [
            [row.get(h, "") for h in self.headers] for row in self.rows
        ]
        return f"{self.title}\n" + format_table(self.headers, cells)

    def to_csv(self) -> str:
        """Comma-separated rendering (header row + one line per row)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=self.headers,
                                extrasaction="ignore")
        writer.writeheader()
        for row in self.rows:
            writer.writerow(row)
        return buffer.getvalue()

    def to_json(self) -> str:
        """JSON rendering: experiment metadata plus the raw rows."""
        import json

        return json.dumps(
            {
                "experiment": self.experiment,
                "title": self.title,
                "headers": self.headers,
                "rows": self.rows,
            },
            indent=2,
            sort_keys=True,
        )

    def save(self, directory) -> list:
        """Write .txt/.csv/.json renderings; returns the paths written."""
        import pathlib

        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = []
        for suffix, render in ((".txt", self.to_text),
                               (".csv", self.to_csv),
                               (".json", self.to_json)):
            path = directory / f"{self.experiment}{suffix}"
            path.write_text(render() + "\n")
            written.append(path)
        return written
