"""Plain-text rendering of experiment results."""

from __future__ import annotations


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.4f}"
    return str(value)


def format_table(headers: list[str], rows: list[list]) -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(items):
        return "  ".join(item.ljust(w) for item, w in zip(items, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def normalized(value: float, reference: float) -> float:
    """value / reference with a guard for a zero reference."""
    if reference == 0:
        return 0.0
    return value / reference


#: Fill characters for up to six stacked components.
_FILLS = "#=+-:."


def render_stacked_bars(rows: list[dict], label_cols: list[str],
                        value_cols: list[str], width: int = 60) -> str:
    """Horizontal stacked-bar chart, one bar per row.

    The paper's figures are stacked bars (useful / sync / load / store,
    or read / write); this renders the same visual in a terminal.  Bars
    share one scale: the longest total spans ``width`` characters.

    >>> print(render_stacked_bars(
    ...     [{"m": "cc", "a": 2.0, "b": 1.0}, {"m": "str", "a": 1.0, "b": 0.5}],
    ...     ["m"], ["a", "b"], width=12))    # doctest: +NORMALIZE_WHITESPACE
    legend: a=# b==
    cc   |########====| 3.000
    str  |####==      | 1.500
    """
    if not rows:
        return "(no rows)"
    if len(value_cols) > len(_FILLS):
        raise ValueError(f"at most {len(_FILLS)} stacked components supported")
    totals = [sum(float(r.get(c) or 0.0) for c in value_cols) for r in rows]
    scale = max(totals) or 1.0
    labels = [" ".join(str(r.get(c, "")) for c in label_cols) for r in rows]
    label_width = max(len(lab) for lab in labels)
    legend = "legend: " + " ".join(
        f"{col}={fill}" for col, fill in zip(value_cols, _FILLS))
    lines = [legend]
    for row, label, total in zip(rows, labels, totals):
        bar = ""
        for col, fill in zip(value_cols, _FILLS):
            segment = round(float(row.get(col) or 0.0) / scale * width)
            bar += fill * segment
        bar = bar[:width].ljust(width)
        lines.append(f"{label.ljust(label_width)} |{bar}| {total:.3f}")
    return "\n".join(lines)


def render_scatter(points: list[dict], x: str, y: str, marker: str = "marker",
                   width: int = 56, height: int = 16) -> str:
    """ASCII scatter plot of ``points`` (dicts with ``x``/``y`` columns).

    Each point may carry a one-character ``marker`` (default ``.``);
    later points overwrite earlier ones in the same cell, so draw the
    emphasized series (e.g. a Pareto frontier, marker ``*``) last.
    Axis extents are printed under the frame.  Deterministic: output
    depends only on the input order and values.
    """
    plotted = [p for p in points
               if p.get(x) is not None and p.get(y) is not None]
    if not plotted:
        return "(no points)"
    xs = [float(p[x]) for p in plotted]
    ys = [float(p[y]) for p in plotted]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for p, px, py in zip(plotted, xs, ys):
        col = min(width - 1, int((px - x_lo) / x_span * (width - 1)))
        row = min(height - 1, int((py - y_lo) / y_span * (height - 1)))
        mark = str(p.get(marker) or ".")[:1]
        grid[height - 1 - row][col] = mark
    lines = [f"|{''.join(row)}|" for row in grid]
    lines.insert(0, "+" + "-" * width + "+")
    lines.append("+" + "-" * width + "+")
    lines.append(f"{x}: {_fmt(x_lo)} .. {_fmt(x_hi)}   "
                 f"{y}: {_fmt(y_lo)} .. {_fmt(y_hi)} (bottom..top)")
    return "\n".join(lines)
