"""Command-line interface: regenerate any table or figure of the paper.

Usage::

    python -m repro list
    python -m repro run fir --model str --cores 16 --clock 3.2
    python -m repro figure2 --preset small
    python -m repro table3
    python -m repro all --preset small --jobs 4
    python -m repro analysis check-protocol
    python -m repro grid sweep figure2 table3 --preset tiny --jobs 4
    python -m repro serve start --socket .repro-serve.sock --jobs 4
    python -m repro perf bench --preset tiny --jobs 2
    python -m repro tune fir merge --preset tiny --budget 24
    python -m repro run fir --model cc --cores 1 --preset tiny --cprofile

``figureN`` / ``table3`` commands print the experiment's paper-style
rows; ``run`` executes one workload/configuration and prints the full
measurement record.  Experiment commands persist results in the
content-addressed store (``.repro-cache/`` or ``$REPRO_STORE``; disable
with ``--no-store``) and fan out over worker processes with
``--jobs N``; ``grid`` exposes the full sweep toolbox (see
``python -m repro grid --help``).
"""

from __future__ import annotations

import argparse
import sys

from repro import run_workload, workload_names
from repro.harness import EXPERIMENTS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Comparing Memory Systems for Chip "
                    "Multiprocessors' (ISCA 2007)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the available workloads")

    run_p = sub.add_parser("run", help="run one workload/configuration")
    run_p.add_argument("workload", choices=workload_names())
    run_p.add_argument("--model", choices=["cc", "str", "icc"], default="cc",
                       help="cache-coherent, streaming, or incoherent caches")
    run_p.add_argument("--cores", type=int, default=8)
    run_p.add_argument("--clock", type=float, default=0.8,
                       help="core clock in GHz")
    run_p.add_argument("--bandwidth", type=float, default=6.4,
                       help="memory channel bandwidth in GB/s")
    run_p.add_argument("--prefetch", action="store_true",
                       help="enable the hardware stream prefetcher")
    run_p.add_argument("--prefetch-depth", type=int, default=4,
                       metavar="N",
                       help="cache lines the prefetcher runs ahead "
                            "(with --prefetch; default 4)")
    run_p.add_argument("--preset", default="default",
                       choices=["default", "small", "tiny"])
    run_p.add_argument("--profile", action="store_true",
                       help="sample activity over time and print sparklines")
    run_p.add_argument("--metrics", action="store_true",
                       help="print the per-component metrics report "
                            "(fastpath-safe; results are bit-identical)")
    run_p.add_argument("--trace", metavar="PATH",
                       help="record the demand-access trace as JSON lines")
    run_p.add_argument("--trace-out", metavar="PATH",
                       help="export a Chrome trace_event JSON "
                            "(accesses, DMA commands, kernel spans)")
    run_p.add_argument("--cprofile", metavar="PATH", nargs="?", const="",
                       help="run under cProfile; print the hottest "
                            "functions, or dump binary pstats to PATH")

    def _grid_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for the sweep (default 1)")
        p.add_argument("--store", metavar="PATH",
                       help="result-store directory (default: $REPRO_STORE "
                            "or .repro-cache)")
        p.add_argument("--no-store", action="store_true",
                       help="do not persist results on disk")
        p.add_argument("--progress-json", metavar="PATH",
                       help="write sweep metrics as JSON ('-' streams one "
                            "line per event to stdout)")

    for name, fn in EXPERIMENTS.items():
        exp_p = sub.add_parser(name, help=(fn.__doc__ or "").splitlines()[0])
        exp_p.add_argument("--preset", default="default",
                           choices=["default", "small", "tiny"])
        exp_p.add_argument("--chart", action="store_true",
                           help="also render the figure as stacked bars")
        _grid_flags(exp_p)

    cmp_p = sub.add_parser(
        "compare", help="run one workload under every applicable memory model")
    cmp_p.add_argument("workload", choices=workload_names())
    cmp_p.add_argument("--cores", type=int, default=16)
    cmp_p.add_argument("--clock", type=float, default=0.8)
    cmp_p.add_argument("--preset", default="default",
                       choices=["default", "small", "tiny"])

    all_p = sub.add_parser("all", help="regenerate every table and figure")
    all_p.add_argument("--preset", default="default",
                       choices=["default", "small", "tiny"])
    _grid_flags(all_p)

    analysis_p = sub.add_parser(
        "analysis",
        help="verification passes (model checker, monitors, lint); "
             "see 'python -m repro.analysis --help'")
    analysis_p.add_argument("analysis_args", nargs=argparse.REMAINDER,
                            help="arguments forwarded to repro.analysis")

    grid_p = sub.add_parser(
        "grid",
        help="parallel sweeps over the persistent result store; "
             "see 'python -m repro grid --help'")
    grid_p.add_argument("grid_args", nargs=argparse.REMAINDER,
                        help="arguments forwarded to repro.grid")

    perf_p = sub.add_parser(
        "perf",
        help="benchmark the simulator itself and gate regressions; "
             "see 'python -m repro perf --help'")
    perf_p.add_argument("perf_args", nargs=argparse.REMAINDER,
                        help="arguments forwarded to repro.perf")

    obs_p = sub.add_parser(
        "obs",
        help="metrics, time series, and Chrome trace export; "
             "see 'python -m repro obs --help'")
    obs_p.add_argument("obs_args", nargs=argparse.REMAINDER,
                       help="arguments forwarded to repro.obs")

    serve_p = sub.add_parser(
        "serve",
        help="simulation-as-a-service server and clients over the "
             "result store; see 'python -m repro serve --help'")
    serve_p.add_argument("serve_args", nargs=argparse.REMAINDER,
                         help="arguments forwarded to repro.serve")

    tune_p = sub.add_parser(
        "tune",
        help="design-space autotuner: search MachineConfig space for "
             "the perf/energy Pareto frontier; "
             "see 'python -m repro tune --help'")
    tune_p.add_argument("tune_args", nargs=argparse.REMAINDER,
                        help="arguments forwarded to repro.tune")
    return parser


def _run_profiled(cprofile: str | None, thunk):
    """Run ``thunk``, optionally under cProfile (``run --cprofile``).

    ``cprofile`` is None when profiling is off, ``""`` to print the
    hottest functions, or a path to dump binary pstats for snakeviz &co.
    """
    if cprofile is None:
        return thunk()
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    result = profiler.runcall(thunk)
    if cprofile:
        profiler.dump_stats(cprofile)
        print(f"cprofile: binary stats -> {cprofile}")
    else:
        pstats.Stats(profiler).sort_stats("tottime").print_stats(15)
    return result


def _print_run(result) -> None:
    print(result.summary())
    fractions = result.breakdown.fractions()
    print("  breakdown : " + "  ".join(
        f"{k}={v * 100:.1f}%" for k, v in fractions.items()))
    print(f"  traffic   : read {result.traffic.read_bytes / 1e6:.2f} MB, "
          f"write {result.traffic.write_bytes / 1e6:.2f} MB "
          f"({result.offchip_mb_per_s:.0f} MB/s)")
    print(f"  L1 miss   : {result.l1_miss_rate * 100:.2f}%  "
          f"L2 miss: {result.l2_miss_rate * 100:.1f}%  "
          f"instr/L1-miss: {result.instructions_per_l1_miss:.0f}")
    energy = result.energy.as_dict()
    print("  energy    : " + "  ".join(
        f"{k}={v * 1e3:.2f}mJ" for k, v in energy.items() if v))


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "analysis":
        from repro.analysis.__main__ import main as analysis_main

        return analysis_main(args.analysis_args)
    if args.command == "grid":
        from repro.grid.cli import main as grid_main

        return grid_main(args.grid_args)
    if args.command == "perf":
        from repro.perf.__main__ import main as perf_main

        return perf_main(args.perf_args)
    if args.command == "obs":
        from repro.obs.cli import main as obs_main

        return obs_main(args.obs_args)
    if args.command == "serve":
        from repro.serve.cli import main as serve_main

        return serve_main(args.serve_args)
    if args.command == "tune":
        from repro.tune.cli import main as tune_main

        return tune_main(args.tune_args)
    if args.command == "list":
        for name in workload_names():
            print(name)
        return 0
    if args.command == "run":
        if args.profile or args.trace or args.metrics or args.trace_out:
            from contextlib import ExitStack

            from repro import MachineConfig, get_workload
            from repro.core.system import CmpSystem
            from repro.sim.sampling import IntervalSampler

            config = MachineConfig(num_cores=args.cores) \
                .with_model(args.model).with_clock(args.clock) \
                .with_bandwidth(args.bandwidth)
            if args.prefetch:
                config = config.with_prefetch(depth=args.prefetch_depth)
            program = get_workload(args.workload).build(
                config.model, config, preset=args.preset)
            system = CmpSystem(config, program)
            interval_fs = max(1, config.core.cycle_fs * 20000)
            sampler = None
            if args.profile or args.trace_out:
                sampler = IntervalSampler(system, interval_fs=interval_fs)
                sampler.start()
            # Hooks attach through an ExitStack so a raising run cannot
            # leak a trace_hook and pin later runs to the slow path.
            with ExitStack() as stack:
                recorder = None
                if args.trace or args.trace_out:
                    from repro.trace import TraceRecorder

                    recorder = stack.enter_context(TraceRecorder(system))
                kernel_rec = dma_rec = None
                if args.trace_out:
                    from repro.obs import (DmaCommandRecorder,
                                           KernelEventRecorder)

                    kernel_rec = stack.enter_context(
                        KernelEventRecorder(system.sim))
                    dma_rec = stack.enter_context(
                        DmaCommandRecorder(system.hierarchy))
                result = _run_profiled(args.cprofile, system.run)
            _print_run(result)
            if args.profile and sampler is not None:
                print()
                print(sampler.render())
            if args.metrics:
                from repro.obs import render_report

                print()
                print(render_report(system, result))
            if recorder is not None and args.trace:
                recorder.save(args.trace)
                print(f"\ntrace: {len(recorder)} accesses -> {args.trace}")
            if args.trace_out:
                from repro.obs import export_chrome_trace, save_chrome_trace

                doc = export_chrome_trace(
                    trace=recorder.records, dma_events=dma_rec.events,
                    kernel_spans=kernel_rec.spans(), samples=sampler.samples)
                save_chrome_trace(doc, args.trace_out)
                print(f"\nchrome trace: {len(doc['traceEvents'])} event(s) "
                      f"-> {args.trace_out}")
        else:
            result = _run_profiled(args.cprofile, lambda: run_workload(
                args.workload, model=args.model, cores=args.cores,
                clock_ghz=args.clock, bandwidth_gbps=args.bandwidth,
                prefetch=args.prefetch, prefetch_depth=args.prefetch_depth,
                preset=args.preset,
            ))
            _print_run(result)
        return 0
    if args.command == "compare":
        from repro.harness.reports import format_table
        from repro.workloads import get_workload

        models = ["cc", "str"]
        if get_workload(args.workload).incoherent_safe:
            models.append("icc")
        rows = []
        for model in models:
            r = run_workload(args.workload, model=model, cores=args.cores,
                             clock_ghz=args.clock, preset=args.preset)
            f = r.breakdown.fractions()
            rows.append([
                model, f"{r.exec_time_ms:.4f}",
                f"{f['useful']:.2f}", f"{f['sync']:.2f}", f"{f['load']:.2f}",
                f"{r.traffic.total_bytes / 1e6:.2f}",
                f"{r.energy.total * 1e3:.3f}",
            ])
        print(f"{args.workload} on {args.cores} cores @ {args.clock} GHz "
              f"({args.preset} preset)")
        print(format_table(
            ["model", "time_ms", "useful", "sync", "load",
             "traffic_MB", "energy_mJ"], rows))
        return 0

    from repro.grid.cli import resolve_store, run_experiments

    def render(_name, result) -> None:
        print(result.to_text())
        if getattr(args, "chart", False):
            from repro.harness.reports import render_stacked_bars

            stack = [c for c in ("useful", "sync", "load", "store")
                     if c in result.headers]
            if not stack:
                stack = [c for c in ("read", "write") if c in result.headers]
            if stack:
                first = result.rows[0] if result.rows else {}
                labels = [h for h in result.headers
                          if h not in stack
                          and not isinstance(first.get(h), float)]
                print()
                print(render_stacked_bars(result.rows, labels, stack))
        print()

    names = list(EXPERIMENTS) if args.command == "all" else [args.command]
    return run_experiments(
        names, preset=args.preset, jobs=args.jobs,
        store=resolve_store(args.store, args.no_store),
        progress_json=args.progress_json, render=render)


if __name__ == "__main__":
    sys.exit(main())
