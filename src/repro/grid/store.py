"""Persistent, content-addressed result store and the cache interface.

Layout under the store root (default ``.repro-cache/``)::

    .repro-cache/
      objects/ab/abcdef....json     one JSON record per content key

Each record carries the spec that produced it, the schema stamp, either
the full lossless :meth:`RunResult.to_dict` payload (``status: "ok"``)
or a :class:`FailedRun` description (``status: "failed"``), and the wall
time of the producing run.  Records are written atomically (temp file +
``os.replace`` in the same directory) so a killed process can never
leave a half-written record; unreadable or truncated records are treated
as cache misses and quarantined out of the way rather than aborting the
sweep.

Multi-writer rules: one store root may be shared by any number of
processes — several CLI sweeps, one or more ``repro serve`` servers, or
a mix.  Atomic replace already guarantees readers never observe a torn
record; on top of that, every *mutating* operation (``put_record``,
``put_series``, ``clear``, ``compact``) additionally holds a
cross-process advisory file lock (``<root>/.lock``), so maintenance
operations cannot interleave with writes and two writers of the same
key serialize cleanly (last write wins, both are valid records).  Reads
take no lock.  On platforms without ``fcntl`` the lock degrades to a
no-op and the atomic-replace guarantees still hold.

The cache interface consumed by :class:`~repro.harness.runner.Runner`
is three methods (``get`` / ``put`` / ``describe``) implemented by

* :class:`MemoryCache` — the classic per-process memo dict,
* :class:`StoreCache` — the same, backed by a :class:`ResultStore` so
  results survive the process and are shared across processes.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.grid import keys
from repro.grid.spec import RunSpec
from repro.results import RunResult


class _StoreLock:
    """Advisory, cross-process exclusive lock over one store root.

    Backed by ``flock`` on ``<root>/.lock``; re-entrant within one
    :class:`ResultStore` instance (``compact`` calls locked helpers).
    Degrades to a no-op where ``fcntl`` is unavailable — the store then
    falls back to pure atomic-replace semantics.
    """

    def __init__(self, root: Path) -> None:
        self._path = root / ".lock"
        self._handle = None
        self._depth = 0

    def __enter__(self) -> "_StoreLock":
        if fcntl is None:
            return self
        if self._depth == 0:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self._path, "a+")
            fcntl.flock(self._handle, fcntl.LOCK_EX)
        self._depth += 1
        return self

    def __exit__(self, *_exc) -> bool:
        if fcntl is None:
            return False
        self._depth -= 1
        if self._depth == 0 and self._handle is not None:
            fcntl.flock(self._handle, fcntl.LOCK_UN)
            self._handle.close()
            self._handle = None
        return False


@dataclass(frozen=True)
class FailedRun:
    """The durable record of a simulation that could not produce a result.

    A failed run is data, not control flow: the scheduler records it and
    keeps sweeping; only a consumer that actually needs the missing
    result (e.g. an experiment replay) raises :class:`RunFailedError`.
    """

    key: str
    label: str
    kind: str          # "exception" | "timeout" | "crash"
    message: str
    attempts: int = 1

    def to_dict(self) -> dict:
        """JSON-safe form stored in the failure record."""
        return {"key": self.key, "label": self.label, "kind": self.kind,
                "message": self.message, "attempts": self.attempts}

    @classmethod
    def from_dict(cls, data: dict) -> "FailedRun":
        """Rebuild a failure written by :meth:`to_dict`."""
        return cls(**data)


class RunFailedError(RuntimeError):
    """Raised when a needed result is a recorded :class:`FailedRun`."""

    def __init__(self, failure: FailedRun) -> None:
        super().__init__(
            f"run {failure.label} failed ({failure.kind} after "
            f"{failure.attempts} attempt(s)): {failure.message}")
        self.failure = failure


class ResultStore:
    """Content-addressed on-disk store of run records."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self._objects = self.root / "objects"
        self._lock = _StoreLock(self.root)

    def _path(self, key: str) -> Path:
        return self._objects / key[:2] / f"{key}.json"

    def _atomic_write(self, path: Path, payload: dict) -> None:
        """Write ``payload`` as JSON via temp file + rename."""
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- raw record access ---------------------------------------------

    def get_record(self, key: str) -> dict | None:
        """The raw record for ``key``, or None (missing *or* corrupt)."""
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            record = json.loads(text)
        except ValueError:
            self._quarantine(path)
            return None
        if not isinstance(record, dict) or record.get("key") != key \
                or record.get("status") not in ("ok", "failed"):
            self._quarantine(path)
            return None
        return record

    def put_record(self, record: dict) -> None:
        """Atomically write one record (locked; temp file + rename)."""
        with self._lock:
            self._atomic_write(self._path(record["key"]), record)

    def _quarantine(self, path: Path) -> None:
        """Move an unreadable record aside so it stops shadowing the key."""
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            pass

    # -- typed access ---------------------------------------------------

    def get(self, spec: RunSpec) -> "RunResult | FailedRun | None":
        """The stored outcome for ``spec``: result, failure, or None."""
        record = self.get_record(spec.content_key())
        if record is None:
            return None
        try:
            if record["status"] == "ok":
                return RunResult.from_dict(record["result"])
            return FailedRun.from_dict(record["failure"])
        except (KeyError, TypeError, ValueError):
            self._quarantine(self._path(record["key"]))
            return None

    def put(self, spec: RunSpec, outcome: "RunResult | FailedRun",
            wall_s: float | None = None) -> str:
        """Record ``outcome`` for ``spec``; returns the content key."""
        key = spec.content_key()
        record = {
            "key": key,
            "schema": keys.SCHEMA_VERSION,
            "spec": spec.to_dict(),
            "wall_s": wall_s,
        }
        if isinstance(outcome, FailedRun):
            record["status"] = "failed"
            record["failure"] = outcome.to_dict()
        else:
            record["status"] = "ok"
            record["result"] = outcome.to_dict()
        self.put_record(record)
        return key

    # -- series sidecars -------------------------------------------------

    def _series_path(self, key: str) -> Path:
        return self._objects / key[:2] / f"{key}.series.json"

    def put_series(self, key: str, series: dict) -> None:
        """Atomically write a time-series sidecar beside a result record.

        Series are pull-mode samples of the *same* run that produced the
        result (bit-identical either way), so they share the result's
        content key; the distinct suffix keeps :meth:`records` and
        :meth:`clear` semantics untouched.
        """
        with self._lock:
            self._atomic_write(self._series_path(key), series)

    def get_series(self, key: str) -> dict | None:
        """The stored series sidecar for ``key``, or None."""
        try:
            text = self._series_path(key).read_text()
        except OSError:
            return None
        try:
            series = json.loads(text)
        except ValueError:
            return None
        return series if isinstance(series, dict) else None

    # -- maintenance ----------------------------------------------------

    def records(self):
        """Iterate every readable record (corrupt files are skipped)."""
        if not self._objects.is_dir():
            return
        for path in sorted(self._objects.glob("*/*.json")):
            if path.name.endswith(".series.json"):
                continue
            record = self.get_record(path.stem)
            if record is not None:
                yield record

    def stats(self) -> dict:
        """Record counts and on-disk footprint (records, sidecars, corrupt)."""
        ok = failed = size_bytes = 0
        for record in self.records():
            if record["status"] == "ok":
                ok += 1
            else:
                failed += 1
            size_bytes += self._path(record["key"]).stat().st_size
        series = series_bytes = corrupt = corrupt_bytes = 0
        if self._objects.is_dir():
            for path in self._objects.glob("*/*.series.json"):
                series += 1
                series_bytes += path.stat().st_size
            for path in self._objects.glob("*/*.corrupt"):
                corrupt += 1
                corrupt_bytes += path.stat().st_size
        return {"root": str(self.root), "ok": ok, "failed": failed,
                "records": ok + failed, "size_bytes": size_bytes,
                "series": series, "series_bytes": series_bytes,
                "corrupt": corrupt, "corrupt_bytes": corrupt_bytes}

    def clear(self, failed_only: bool = False) -> int:
        """Delete records (all, or only failures); returns count removed.

        A record's ``.series.json`` sidecar is deleted with its record —
        a failed-only clear therefore removes sidecars *of the deleted
        failure records* (e.g. left behind by a run that succeeded under
        an older code version and failed on retry) while keeping the
        sidecars of surviving ok records.
        """
        removed = 0
        if not self._objects.is_dir():
            return removed
        with self._lock:
            for path in sorted(self._objects.glob("*/*")):
                if path.suffix == ".corrupt" and not failed_only:
                    path.unlink(missing_ok=True)
                    continue
                if path.name.endswith(".series.json"):
                    # Sidecars of *kept* records survive a failed-only
                    # clear; the ones belonging to deleted records are
                    # removed alongside them below (uncounted).
                    if not failed_only:
                        path.unlink(missing_ok=True)
                    continue
                if path.suffix != ".json":
                    continue
                if failed_only:
                    record = self.get_record(path.stem)
                    if record is None or record["status"] != "failed":
                        continue
                    self._series_path(path.stem).unlink(missing_ok=True)
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def compact(self, drop_failed: bool = False) -> dict:
        """Garbage-collect quarantined, version-stale, and orphaned files.

        Removes, under the store lock:

        * ``*.corrupt`` quarantine files (kept by normal reads for
          post-mortems, reclaimed here);
        * **version-stale records** — records whose schema stamp differs
          from the current :data:`~repro.grid.keys.SCHEMA_VERSION`, or
          whose spec no longer hashes to the record's key under the
          current code version (such records can never be found by a
          lookup again: the content key mixes in schema + code version);
        * ``.series.json`` sidecars whose record is gone (orphans);
        * with ``drop_failed=True``, recorded failures as well.

        Returns a summary dict with per-category removal counts and the
        total ``reclaimed_bytes``.
        """
        summary = {"corrupt": 0, "stale": 0, "failed": 0,
                   "orphaned_series": 0, "removed": 0, "kept": 0,
                   "reclaimed_bytes": 0}

        def _drop(path: Path, category: str) -> None:
            try:
                summary["reclaimed_bytes"] += path.stat().st_size
            except OSError:
                pass
            path.unlink(missing_ok=True)
            summary[category] += 1
            summary["removed"] += 1

        if not self._objects.is_dir():
            return summary
        with self._lock:
            for path in sorted(self._objects.glob("*/*")):
                if path.suffix == ".corrupt":
                    _drop(path, "corrupt")
                elif path.name.endswith(".series.json"):
                    record_path = path.with_name(
                        path.name[:-len(".series.json")] + ".json")
                    if not record_path.exists():
                        _drop(path, "orphaned_series")
                elif path.suffix == ".json":
                    record = self.get_record(path.stem)
                    if record is None:
                        # get_record quarantined it; the .corrupt file is
                        # new this pass — reclaim it immediately.
                        _drop(path.with_suffix(".corrupt"), "corrupt")
                    elif self._is_stale(record):
                        self._series_path(path.stem).unlink(missing_ok=True)
                        _drop(path, "stale")
                    elif drop_failed and record["status"] == "failed":
                        self._series_path(path.stem).unlink(missing_ok=True)
                        _drop(path, "failed")
                    else:
                        summary["kept"] += 1
        return summary

    @staticmethod
    def _is_stale(record: dict) -> bool:
        """True when no current-code lookup can ever reach ``record``."""
        if record.get("schema") != keys.SCHEMA_VERSION:
            return True
        try:
            spec = RunSpec.from_dict(record["spec"])
            return spec.content_key() != record["key"]
        except Exception:
            # A spec the current code cannot even rebuild (renamed field,
            # removed workload, ...) is unreachable by definition.
            return True


# ----------------------------------------------------------------------
# Cache backends behind Runner
# ----------------------------------------------------------------------

class MemoryCache:
    """Per-process memo dict — the Runner's historical behavior."""

    def __init__(self) -> None:
        self._memo: dict[tuple, RunResult | FailedRun] = {}
        self.hits = 0
        self.misses = 0

    def get(self, spec: RunSpec) -> "RunResult | FailedRun | None":
        """The memoized outcome for ``spec``, or None."""
        outcome = self._memo.get(spec.memo_key())
        if outcome is None:
            self.misses += 1
        else:
            self.hits += 1
        return outcome

    def put(self, spec: RunSpec, outcome: "RunResult | FailedRun") -> None:
        """Memoize ``outcome`` for ``spec``."""
        self._memo[spec.memo_key()] = outcome

    def describe(self) -> str:
        """One-line backend description for diagnostics."""
        return f"memory ({len(self._memo)} entries)"


class StoreCache:
    """Store-backed cache: memo dict in front of a :class:`ResultStore`.

    The memory layer preserves the Runner's result-identity guarantee
    (two calls for the same spec return the *same* object) and avoids
    re-parsing JSON on every memo hit; the store layer makes results
    durable and shareable across processes.
    """

    def __init__(self, store: ResultStore) -> None:
        self.store = store
        self._memo: dict[tuple, RunResult | FailedRun] = {}
        self.hits = 0            # in-memory hits
        self.store_hits = 0      # on-disk hits
        self.misses = 0

    def get(self, spec: RunSpec) -> "RunResult | FailedRun | None":
        """Outcome from memory, then disk; None on a full miss."""
        memo_key = spec.memo_key()
        outcome = self._memo.get(memo_key)
        if outcome is not None:
            self.hits += 1
            return outcome
        outcome = self.store.get(spec)
        if outcome is not None:
            self._memo[memo_key] = outcome
            self.store_hits += 1
            return outcome
        self.misses += 1
        return None

    def put(self, spec: RunSpec, outcome: "RunResult | FailedRun",
            wall_s: float | None = None) -> None:
        """Record ``outcome`` in both layers."""
        self._memo[spec.memo_key()] = outcome
        self.store.put(spec, outcome, wall_s=wall_s)

    def describe(self) -> str:
        """One-line backend description for diagnostics."""
        return f"store at {self.store.root}"


__all__ = ["FailedRun", "RunFailedError", "ResultStore", "MemoryCache",
           "StoreCache"]
