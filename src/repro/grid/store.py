"""Persistent, content-addressed result store and the cache interface.

Layout under the store root (default ``.repro-cache/``)::

    .repro-cache/
      objects/ab/abcdef....json     one JSON record per content key

Each record carries the spec that produced it, the schema stamp, either
the full lossless :meth:`RunResult.to_dict` payload (``status: "ok"``)
or a :class:`FailedRun` description (``status: "failed"``), and the wall
time of the producing run.  Records are written atomically (temp file +
``os.replace`` in the same directory) so a killed process can never
leave a half-written record; unreadable or truncated records are treated
as cache misses and quarantined out of the way rather than aborting the
sweep.

The cache interface consumed by :class:`~repro.harness.runner.Runner`
is three methods (``get`` / ``put`` / ``describe``) implemented by

* :class:`MemoryCache` — the classic per-process memo dict,
* :class:`StoreCache` — the same, backed by a :class:`ResultStore` so
  results survive the process and are shared across processes.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.grid import keys
from repro.grid.spec import RunSpec
from repro.results import RunResult


@dataclass(frozen=True)
class FailedRun:
    """The durable record of a simulation that could not produce a result.

    A failed run is data, not control flow: the scheduler records it and
    keeps sweeping; only a consumer that actually needs the missing
    result (e.g. an experiment replay) raises :class:`RunFailedError`.
    """

    key: str
    label: str
    kind: str          # "exception" | "timeout" | "crash"
    message: str
    attempts: int = 1

    def to_dict(self) -> dict:
        """JSON-safe form stored in the failure record."""
        return {"key": self.key, "label": self.label, "kind": self.kind,
                "message": self.message, "attempts": self.attempts}

    @classmethod
    def from_dict(cls, data: dict) -> "FailedRun":
        """Rebuild a failure written by :meth:`to_dict`."""
        return cls(**data)


class RunFailedError(RuntimeError):
    """Raised when a needed result is a recorded :class:`FailedRun`."""

    def __init__(self, failure: FailedRun) -> None:
        super().__init__(
            f"run {failure.label} failed ({failure.kind} after "
            f"{failure.attempts} attempt(s)): {failure.message}")
        self.failure = failure


class ResultStore:
    """Content-addressed on-disk store of run records."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self._objects = self.root / "objects"

    def _path(self, key: str) -> Path:
        return self._objects / key[:2] / f"{key}.json"

    # -- raw record access ---------------------------------------------

    def get_record(self, key: str) -> dict | None:
        """The raw record for ``key``, or None (missing *or* corrupt)."""
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            record = json.loads(text)
        except ValueError:
            self._quarantine(path)
            return None
        if not isinstance(record, dict) or record.get("key") != key \
                or record.get("status") not in ("ok", "failed"):
            self._quarantine(path)
            return None
        return record

    def put_record(self, record: dict) -> None:
        """Atomically write one record (temp file + rename)."""
        path = self._path(record["key"])
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _quarantine(self, path: Path) -> None:
        """Move an unreadable record aside so it stops shadowing the key."""
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            pass

    # -- typed access ---------------------------------------------------

    def get(self, spec: RunSpec) -> "RunResult | FailedRun | None":
        """The stored outcome for ``spec``: result, failure, or None."""
        record = self.get_record(spec.content_key())
        if record is None:
            return None
        try:
            if record["status"] == "ok":
                return RunResult.from_dict(record["result"])
            return FailedRun.from_dict(record["failure"])
        except (KeyError, TypeError, ValueError):
            self._quarantine(self._path(record["key"]))
            return None

    def put(self, spec: RunSpec, outcome: "RunResult | FailedRun",
            wall_s: float | None = None) -> str:
        """Record ``outcome`` for ``spec``; returns the content key."""
        key = spec.content_key()
        record = {
            "key": key,
            "schema": keys.SCHEMA_VERSION,
            "spec": spec.to_dict(),
            "wall_s": wall_s,
        }
        if isinstance(outcome, FailedRun):
            record["status"] = "failed"
            record["failure"] = outcome.to_dict()
        else:
            record["status"] = "ok"
            record["result"] = outcome.to_dict()
        self.put_record(record)
        return key

    # -- series sidecars -------------------------------------------------

    def _series_path(self, key: str) -> Path:
        return self._objects / key[:2] / f"{key}.series.json"

    def put_series(self, key: str, series: dict) -> None:
        """Atomically write a time-series sidecar beside a result record.

        Series are pull-mode samples of the *same* run that produced the
        result (bit-identical either way), so they share the result's
        content key; the distinct suffix keeps :meth:`records` and
        :meth:`clear` semantics untouched.
        """
        path = self._series_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(series, handle, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def get_series(self, key: str) -> dict | None:
        """The stored series sidecar for ``key``, or None."""
        try:
            text = self._series_path(key).read_text()
        except OSError:
            return None
        try:
            series = json.loads(text)
        except ValueError:
            return None
        return series if isinstance(series, dict) else None

    # -- maintenance ----------------------------------------------------

    def records(self):
        """Iterate every readable record (corrupt files are skipped)."""
        if not self._objects.is_dir():
            return
        for path in sorted(self._objects.glob("*/*.json")):
            if path.name.endswith(".series.json"):
                continue
            record = self.get_record(path.stem)
            if record is not None:
                yield record

    def stats(self) -> dict:
        """Record counts and on-disk footprint."""
        ok = failed = size_bytes = 0
        for record in self.records():
            if record["status"] == "ok":
                ok += 1
            else:
                failed += 1
            size_bytes += self._path(record["key"]).stat().st_size
        return {"root": str(self.root), "ok": ok, "failed": failed,
                "records": ok + failed, "size_bytes": size_bytes}

    def clear(self, failed_only: bool = False) -> int:
        """Delete records (all, or only failures); returns count removed."""
        removed = 0
        if not self._objects.is_dir():
            return removed
        for path in sorted(self._objects.glob("*/*")):
            if path.suffix == ".corrupt" and not failed_only:
                path.unlink(missing_ok=True)
                continue
            if path.name.endswith(".series.json"):
                # Series sidecars ride along with their record: a full
                # clear drops them (uncounted), a failed-only clear
                # keeps them (their record is an ok record).
                if not failed_only:
                    path.unlink(missing_ok=True)
                continue
            if path.suffix != ".json":
                continue
            if failed_only:
                record = self.get_record(path.stem)
                if record is None or record["status"] != "failed":
                    continue
            path.unlink(missing_ok=True)
            removed += 1
        return removed


# ----------------------------------------------------------------------
# Cache backends behind Runner
# ----------------------------------------------------------------------

class MemoryCache:
    """Per-process memo dict — the Runner's historical behavior."""

    def __init__(self) -> None:
        self._memo: dict[tuple, RunResult | FailedRun] = {}
        self.hits = 0
        self.misses = 0

    def get(self, spec: RunSpec) -> "RunResult | FailedRun | None":
        """The memoized outcome for ``spec``, or None."""
        outcome = self._memo.get(spec.memo_key())
        if outcome is None:
            self.misses += 1
        else:
            self.hits += 1
        return outcome

    def put(self, spec: RunSpec, outcome: "RunResult | FailedRun") -> None:
        """Memoize ``outcome`` for ``spec``."""
        self._memo[spec.memo_key()] = outcome

    def describe(self) -> str:
        """One-line backend description for diagnostics."""
        return f"memory ({len(self._memo)} entries)"


class StoreCache:
    """Store-backed cache: memo dict in front of a :class:`ResultStore`.

    The memory layer preserves the Runner's result-identity guarantee
    (two calls for the same spec return the *same* object) and avoids
    re-parsing JSON on every memo hit; the store layer makes results
    durable and shareable across processes.
    """

    def __init__(self, store: ResultStore) -> None:
        self.store = store
        self._memo: dict[tuple, RunResult | FailedRun] = {}
        self.hits = 0            # in-memory hits
        self.store_hits = 0      # on-disk hits
        self.misses = 0

    def get(self, spec: RunSpec) -> "RunResult | FailedRun | None":
        """Outcome from memory, then disk; None on a full miss."""
        memo_key = spec.memo_key()
        outcome = self._memo.get(memo_key)
        if outcome is not None:
            self.hits += 1
            return outcome
        outcome = self.store.get(spec)
        if outcome is not None:
            self._memo[memo_key] = outcome
            self.store_hits += 1
            return outcome
        self.misses += 1
        return None

    def put(self, spec: RunSpec, outcome: "RunResult | FailedRun",
            wall_s: float | None = None) -> None:
        """Record ``outcome`` in both layers."""
        self._memo[spec.memo_key()] = outcome
        self.store.put(spec, outcome, wall_s=wall_s)

    def describe(self) -> str:
        """One-line backend description for diagnostics."""
        return f"store at {self.store.root}"


__all__ = ["FailedRun", "RunFailedError", "ResultStore", "MemoryCache",
           "StoreCache"]
