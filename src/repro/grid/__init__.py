"""repro.grid — parallel experiment execution with a persistent store.

Every figure and table in the paper's evaluation is a sweep over
independent simulations.  This subsystem provides the two primitives a
design-space-exploration harness needs:

* a **content-addressed result store** (:mod:`repro.grid.store`): each
  :class:`~repro.results.RunResult` is recorded on disk under a stable
  hash of the full machine configuration + workload + preset +
  overrides + schema stamp, with atomic writes and corruption-tolerant
  reads, so repeated invocations never re-simulate a configuration;
* a **fault-tolerant parallel scheduler**
  (:mod:`repro.grid.scheduler`): deduplicated run requests fan out over
  a process pool, results stream back in completion order, and failed
  or crashed runs degrade to recorded
  :class:`~repro.grid.store.FailedRun` entries instead of aborting the
  sweep.

Both plug into :class:`~repro.harness.runner.Runner` through its cache
interface, so every experiment in :mod:`repro.harness.experiments`
gains parallelism and persistence without changing.  See ``docs/GRID.md``
for the store layout, key schema, and failure semantics, and
``python -m repro grid --help`` for the command-line surface.
"""

from repro.grid.keys import SCHEMA_VERSION, content_key, freeze
from repro.grid.progress import Progress
from repro.grid.scheduler import GridScheduler, PlanCache, RunOutcome, plan, replay_cache
from repro.grid.spec import RunSpec
from repro.grid.store import (
    FailedRun,
    MemoryCache,
    ResultStore,
    RunFailedError,
    StoreCache,
)

__all__ = [
    "SCHEMA_VERSION",
    "content_key",
    "freeze",
    "RunSpec",
    "ResultStore",
    "MemoryCache",
    "StoreCache",
    "FailedRun",
    "RunFailedError",
    "GridScheduler",
    "RunOutcome",
    "PlanCache",
    "plan",
    "replay_cache",
    "Progress",
]
