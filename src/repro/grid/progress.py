"""Structured sweep progress: live TTY line + JSON metrics.

The tracker is deliberately simulator-free: it measures the
*orchestration* layer (how many runs launched, hit the store, failed;
wall time per run; worker utilization), never simulated time.  Reading
the host clock here is therefore legitimate and exempted from the
REPRO001 wall-clock lint that protects the deterministic core.
"""

from __future__ import annotations

import json
import sys
import time


class Progress:
    """Counters and timings for one sweep, renderable live and as JSON."""

    def __init__(self, total: int = 0, jobs: int = 1, stream=None,
                 jsonl=None) -> None:
        self.total = total
        self.jobs = jobs
        self.stream = sys.stderr if stream is None else stream
        #: Optional text stream receiving one JSON line per event.
        self.jsonl = jsonl
        self.cache_hits = 0
        self.runs_launched = 0
        self.completed = 0
        self.failed = 0
        self.retries = 0
        self.run_wall_s: list[float] = []
        self._started = time.perf_counter()  # repro-lint: disable=REPRO001
        self._live = bool(getattr(self.stream, "isatty", lambda: False)())

    # -- event hooks -----------------------------------------------------

    def on_cache_hit(self) -> None:
        """A needed run was already in the store."""
        self.cache_hits += 1
        self.completed += 1
        self.emit()
        self.emit_jsonl("cache_hit")

    def on_launch(self) -> None:
        """A miss was handed to a worker."""
        self.runs_launched += 1
        self.emit()
        self.emit_jsonl("launch")

    def on_retry(self) -> None:
        """A failed attempt is being resubmitted."""
        self.retries += 1
        self.emit()
        self.emit_jsonl("retry")

    def on_done(self, wall_s: float | None = None,
                failed: bool = False) -> None:
        """A launched run finished (successfully or as a FailedRun)."""
        self.completed += 1
        if failed:
            self.failed += 1
        if wall_s is not None:
            self.run_wall_s.append(wall_s)
        self.emit()
        self.emit_jsonl("done")

    # -- derived metrics -------------------------------------------------

    def elapsed_s(self) -> float:
        """Wall time since the tracker was created."""
        return time.perf_counter() - self._started  # repro-lint: disable=REPRO001

    def utilization(self) -> float:
        """Fraction of worker capacity spent simulating (0..1)."""
        capacity_s = self.elapsed_s() * max(1, self.jobs)
        if capacity_s <= 0:
            return 0.0
        return min(1.0, sum(self.run_wall_s) / capacity_s)

    def as_dict(self) -> dict:
        """The full metrics payload (the ``--progress-json`` document)."""
        wall = sorted(self.run_wall_s)
        per_run = {}
        if wall:
            per_run = {
                "mean_s": sum(wall) / len(wall),
                "min_s": wall[0],
                "p50_s": wall[len(wall) // 2],
                "max_s": wall[-1],
            }
        elapsed = self.elapsed_s()
        return {
            "total": self.total,
            "jobs": self.jobs,
            "cache_hits": self.cache_hits,
            "runs_launched": self.runs_launched,
            "completed": self.completed,
            "failed": self.failed,
            "retries": self.retries,
            "elapsed_s": elapsed,
            "runs_per_s": self.completed / elapsed if elapsed > 0 else 0.0,
            "worker_utilization": self.utilization(),
            "run_wall_s": per_run,
        }

    def to_json(self) -> str:
        """:meth:`as_dict` as an indented JSON document."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    # -- rendering -------------------------------------------------------

    def render(self) -> str:
        """One status line, e.g. ``grid 37/99 | hits 12 | ...``."""
        parts = [f"grid {self.completed}/{self.total}",
                 f"hits {self.cache_hits}",
                 f"run {self.runs_launched}"]
        if self.failed:
            parts.append(f"fail {self.failed}")
        if self.retries:
            parts.append(f"retry {self.retries}")
        elapsed = self.elapsed_s()
        if elapsed > 0 and self.completed:
            parts.append(f"{self.completed / elapsed:.1f}/s")
        if self.runs_launched:
            parts.append(f"util {self.utilization() * 100:.0f}%")
        return " | ".join(parts)

    def emit(self) -> None:
        """Rewrite the live status line (TTY only; silent otherwise)."""
        if self._live:
            print(f"\r\x1b[2K{self.render()}", end="",
                  file=self.stream, flush=True)

    def event_payload(self, event: str, **extra) -> dict:
        """One progress event as a JSON-safe dict (counters snapshot).

        Shared by :meth:`emit_jsonl` and the serve server's ``progress``
        frames, so a ``--progress-json -`` consumer and a ``repro serve
        watch`` subscriber read the same schema.
        """
        payload = {
            "event": event,
            "completed": self.completed,
            "total": self.total,
            "cache_hits": self.cache_hits,
            "runs_launched": self.runs_launched,
            "failed": self.failed,
            "retries": self.retries,
        }
        payload.update(extra)
        return payload

    def emit_jsonl(self, event: str, **extra) -> None:
        """Write one progress event as a JSON line (when streaming).

        Each line is flushed immediately: the consumer is typically a
        pipe (``--progress-json -``), and block buffering would hold
        every event back until process exit, defeating live monitoring.
        """
        if self.jsonl is None:
            return
        payload = self.event_payload(event, **extra)
        self.jsonl.write(json.dumps(payload, sort_keys=True) + "\n")
        self.jsonl.flush()

    def close(self) -> None:
        """Finish the live line with a newline (TTY only)."""
        if self._live:
            print(f"\r\x1b[2K{self.render()}", file=self.stream, flush=True)


__all__ = ["Progress"]
