"""Parallel sweep execution over a process pool.

The scheduler turns a list of :class:`~repro.grid.spec.RunSpec` into a
stream of :class:`RunOutcome`:

1. requests are **deduplicated** by content key (a sweep that asks for
   the one-core baseline eleven times simulates it once),
2. keys already in the :class:`~repro.grid.store.ResultStore` are
   answered immediately as cache hits,
3. the misses are fanned out over a ``ProcessPoolExecutor`` and results
   **stream back in completion order** — the caller renders progress
   while the slowest simulations are still running,
4. failures degrade instead of aborting: an exception inside a worker
   is retried a bounded number of times and then recorded as a
   :class:`~repro.grid.store.FailedRun`; a run exceeding the per-run
   timeout is recorded as a timeout failure; a **killed worker** (the
   pool breaks) triggers isolated single-worker re-execution of every
   in-flight spec so one poison run cannot take innocent neighbours
   down with it.

Determinism: workers execute exactly the same
:meth:`RunSpec.execute` path as the serial Runner, and results cross
the process boundary through the lossless ``RunResult.to_dict`` /
``from_dict`` pair, so a parallel sweep is bit-identical to a serial
one (``tests/test_grid_determinism.py`` holds this line).

This module reads the host clock to time *orchestration* (never
simulated time); those lines carry REPRO001 lint exemptions.
"""

from __future__ import annotations

import ctypes
import os
import signal
import threading
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.grid.progress import Progress
from repro.grid.spec import RunSpec
from repro.grid.store import FailedRun, MemoryCache, ResultStore
from repro.results import Breakdown, EnergyBreakdown, RunResult, Traffic

#: Reserved override keys interpreted by the worker itself (test hooks
#: for the fault-tolerance paths); they never reach the workload build.
_HOOK_KEYS = ("_grid_kill_worker", "_grid_raise", "_grid_sleep_s")


class _RunTimeout(Exception):
    """Raised inside a worker when the per-run deadline fires."""


def _alarm(_signum, _frame):
    raise _RunTimeout()


class _DeadlineWatchdog:
    """Thread-safe per-run deadline for non-main-thread execution.

    ``signal.setitimer`` only works on the main thread of the main
    interpreter; when a run executes on a worker *thread* (the serve
    server's in-process fallback, or any embedding that calls
    :func:`_execute_in_worker` off the main thread), a daemon timer
    instead injects :class:`_RunTimeout` into the running thread via
    ``PyThreadState_SetAsyncExc``.  Delivery happens at the next
    bytecode boundary — a run blocked inside a single C call is only
    interrupted when it returns to Python — so this is a deadline
    guard, not hard preemption; the pure-Python simulator crosses
    bytecode boundaries constantly, which is what makes it effective.
    """

    def __init__(self, timeout_s: float) -> None:
        self._thread_id = threading.get_ident()
        self._timer = threading.Timer(timeout_s, self._fire)
        self._timer.daemon = True
        self.fired = False

    def start(self) -> None:
        self._timer.start()

    def _fire(self) -> None:
        self.fired = True
        ctypes.pythonapi.PyThreadState_SetAsyncExc(
            ctypes.c_long(self._thread_id), ctypes.py_object(_RunTimeout))

    def cancel(self) -> None:
        self._timer.cancel()
        if self.fired:
            # Withdraw an injected-but-undelivered exception so it can
            # never surface later inside unrelated code on this thread.
            ctypes.pythonapi.PyThreadState_SetAsyncExc(
                ctypes.c_long(self._thread_id), None)


def _execute_in_worker(spec: RunSpec, timeout_s: float | None,
                       series_interval_fs: int | None = None) -> dict:
    """Worker entry point: run one spec, never raise.

    Returns a payload dict: ``{"ok": True, "result": ..., "wall_s": ...}``
    (plus ``"series"`` when series sampling was requested) or
    ``{"ok": False, "kind": "exception"|"timeout", "message": ...}``.
    The per-run timeout is enforced with ``SIGITIMER`` inside the worker
    so a runaway simulation cannot wedge its pool slot forever; when the
    run executes off the main thread (where ``SIGALRM`` is unusable) a
    :class:`_DeadlineWatchdog` enforces the same deadline instead.
    """
    hooks = {k: (spec.overrides or {}).get(k) for k in _HOOK_KEYS}
    if any(hooks.values()):
        stripped = {k: v for k, v in spec.overrides.items()
                    if k not in _HOOK_KEYS}
        spec = RunSpec(**{**spec.to_dict(), "overrides": stripped or None})
        if hooks["_grid_kill_worker"]:
            os._exit(13)  # simulate a worker killed mid-run
    start = time.perf_counter()  # repro-lint: disable=REPRO001
    use_alarm = (timeout_s is not None and hasattr(signal, "SIGALRM")
                 and threading.current_thread() is threading.main_thread())
    watchdog = None
    if use_alarm:
        previous = signal.signal(signal.SIGALRM, _alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout_s)
    elif timeout_s is not None:
        watchdog = _DeadlineWatchdog(timeout_s)
        watchdog.start()
    series = None
    try:
        if hooks["_grid_sleep_s"]:
            # Sleep in slices so an injected deadline exception (which
            # only lands between bytecodes) is delivered promptly.
            deadline = time.monotonic() + float(hooks["_grid_sleep_s"])  # repro-lint: disable=REPRO001
            while time.monotonic() < deadline:  # repro-lint: disable=REPRO001
                time.sleep(0.02)
        if hooks["_grid_raise"]:
            raise RuntimeError(str(hooks["_grid_raise"]))
        if series_interval_fs is not None:
            result, series = spec.execute_with_series(series_interval_fs)
        else:
            result = spec.execute()
    except _RunTimeout:
        return {"ok": False, "kind": "timeout",
                "message": f"exceeded the per-run timeout of {timeout_s} s",
                "wall_s": time.perf_counter() - start}  # repro-lint: disable=REPRO001
    except Exception as exc:
        return {"ok": False, "kind": "exception",
                "message": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(limit=20),
                "wall_s": time.perf_counter() - start}  # repro-lint: disable=REPRO001
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)
        if watchdog is not None:
            watchdog.cancel()
    payload = {"ok": True, "result": result.to_dict(),
               "wall_s": time.perf_counter() - start}  # repro-lint: disable=REPRO001
    if series is not None:
        payload["series"] = series
    return payload


@dataclass
class RunOutcome:
    """One settled grid request: a result or a recorded failure."""

    spec: RunSpec
    key: str
    status: str                    # "ok" | "failed"
    source: str                    # "store" | "run" | "shared"
    result: RunResult | None = None
    failure: FailedRun | None = None
    wall_s: float | None = None


def outcome_from_payload(spec: RunSpec, key: str, payload: dict,
                         attempts: int,
                         store: ResultStore | None) -> RunOutcome:
    """Record a final worker payload in the store and settle the outcome.

    This is the single source of truth for turning an
    :func:`_execute_in_worker` payload into a durable record plus a
    :class:`RunOutcome` — shared by the batch scheduler and the serve
    server so both persist exactly the same records.  Retry decisions
    are the caller's; by the time a payload reaches here it is final.
    """
    wall_s = payload.get("wall_s")
    if payload["ok"]:
        result = RunResult.from_dict(payload["result"])
        if store is not None:
            store.put(spec, result, wall_s=wall_s)
            if payload.get("series") is not None:
                store.put_series(key, payload["series"])
        return RunOutcome(spec, key, "ok", "run", result=result,
                          wall_s=wall_s)
    failure = FailedRun(key=key, label=spec.label(), kind=payload["kind"],
                        message=payload["message"], attempts=attempts)
    if store is not None:
        store.put(spec, failure, wall_s=wall_s)
    return RunOutcome(spec, key, "failed", "run", failure=failure,
                      wall_s=wall_s)


class GridScheduler:
    """Deduplicating, fault-tolerant fan-out over a process pool."""

    def __init__(self, jobs: int | None = None,
                 store: ResultStore | None = None,
                 timeout_s: float | None = None,
                 retries: int = 1,
                 retry_failed: bool = False,
                 progress: Progress | None = None,
                 series_interval_fs: int | None = None) -> None:
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.store = store
        self.timeout_s = timeout_s
        self.retries = max(0, retries)
        self.retry_failed = retry_failed
        self.progress = progress
        #: When not None, every executed run also samples a metric time
        #: series (0 = automatic window) stored beside its result record.
        self.series_interval_fs = series_interval_fs

    def map(self, specs):
        """Yield a :class:`RunOutcome` per unique spec, as each settles."""
        unique: dict[str, RunSpec] = {}
        for spec in specs:
            unique.setdefault(spec.content_key(), spec)
        progress = self.progress or Progress(jobs=self.jobs)
        if not progress.total:
            progress.total = len(unique)
        progress.jobs = self.jobs

        pending: list[tuple[str, RunSpec]] = []
        for key, spec in unique.items():
            cached = self.store.get(spec) if self.store is not None else None
            if isinstance(cached, FailedRun) and self.retry_failed:
                cached = None
            if cached is None:
                pending.append((key, spec))
                continue
            progress.on_cache_hit()
            if isinstance(cached, FailedRun):
                yield RunOutcome(spec, key, "failed", "store", failure=cached)
            else:
                yield RunOutcome(spec, key, "ok", "store", result=cached)
        if not pending:
            return

        attempts = dict.fromkeys((key for key, _ in pending), 0)
        executor = ProcessPoolExecutor(max_workers=self.jobs)
        try:
            futures = {}
            for key, spec in pending:
                attempts[key] += 1
                futures[executor.submit(
                    _execute_in_worker, spec, self.timeout_s,
                    self.series_interval_fs)] = (key, spec)
                progress.on_launch()
            while futures:
                done, _ = wait(futures, return_when=FIRST_COMPLETED)
                crashed: list[tuple[str, RunSpec]] = []
                for future in done:
                    key, spec = futures.pop(future)
                    try:
                        payload = future.result()
                    except BrokenProcessPool:
                        crashed.append((key, spec))
                        continue
                    outcome = self._settle(key, spec, payload, attempts,
                                           executor, futures, progress)
                    if outcome is not None:
                        yield outcome
                if crashed:
                    # The pool is broken: every other in-flight future is
                    # doomed too.  Drain them, rebuild the pool, and
                    # re-run each affected spec in isolation.
                    for future, (key, spec) in list(futures.items()):
                        crashed.append((key, spec))
                    futures.clear()
                    executor.shutdown(wait=False, cancel_futures=True)
                    executor = ProcessPoolExecutor(max_workers=self.jobs)
                    for key, spec in crashed:
                        yield self._run_isolated(key, spec, progress)
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
            progress.close()

    def run_batch(self, specs) -> dict[str, RunOutcome]:
        """Settle one batch of specs; returns ``{content_key: outcome}``.

        The batched-submission surface for callers that drive the grid
        round by round (the design-space tuner's screen/refine loop):
        every unique spec settles — store hit or executed — before the
        call returns, and the mapping lets the caller re-order the
        completion-ordered stream back into its own candidate order.
        """
        return {outcome.key: outcome for outcome in self.map(specs)}

    # -- internals -------------------------------------------------------

    def _settle(self, key, spec, payload, attempts, executor, futures,
                progress) -> RunOutcome | None:
        """Turn a worker payload into an outcome (or schedule a retry)."""
        if not payload["ok"] and payload["kind"] == "exception" \
                and attempts[key] <= self.retries:
            attempts[key] += 1
            progress.on_retry()
            futures[executor.submit(
                _execute_in_worker, spec, self.timeout_s,
                self.series_interval_fs)] = (key, spec)
            return None
        outcome = outcome_from_payload(spec, key, payload, attempts[key],
                                       self.store)
        progress.on_done(wall_s=outcome.wall_s,
                         failed=outcome.status == "failed")
        return outcome

    def _run_isolated(self, key, spec, progress) -> RunOutcome:
        """Re-run one spec in its own single-worker pool.

        After a pool break we cannot tell which in-flight run killed the
        worker, so each affected spec gets a private pool: the poison one
        fails alone, the innocent ones complete normally.
        """
        progress.on_retry()
        isolated = ProcessPoolExecutor(max_workers=1)
        try:
            future = isolated.submit(_execute_in_worker, spec, self.timeout_s,
                                     self.series_interval_fs)
            try:
                payload = future.result()
            except BrokenProcessPool:
                failure = FailedRun(
                    key=key, label=spec.label(), kind="crash",
                    message="worker process died (killed or crashed "
                            "the interpreter)",
                    attempts=2)
                return self._record_failure(spec, failure, None, progress)
        finally:
            isolated.shutdown(wait=False, cancel_futures=True)
        outcome = outcome_from_payload(spec, key, payload, 2, self.store)
        progress.on_done(wall_s=outcome.wall_s,
                         failed=outcome.status == "failed")
        return outcome

    def _record_failure(self, spec, failure, wall_s, progress) -> RunOutcome:
        if self.store is not None:
            self.store.put(spec, failure, wall_s=wall_s)
        progress.on_done(wall_s=wall_s, failed=True)
        return RunOutcome(spec, failure.key, "failed", "run",
                          failure=failure, wall_s=wall_s)


# ----------------------------------------------------------------------
# Experiment planning: capture the run set without simulating
# ----------------------------------------------------------------------

class _PlannerStats(dict):
    """Stats mapping that answers every key, so planning never KeyErrors.

    ``dict.get`` never consults ``__missing__``, so without the override
    below experiment code written as ``stats.get(key, 0)`` would see an
    inconsistent 0 while planning even though ``stats[key]`` answers
    1.0.  Plan-mode stats must be uniform either way: every lookup —
    subscript or ``get``, any default — answers the same placeholder.
    """

    def __missing__(self, key):
        return 1.0

    def get(self, key, default=None):
        """Answer like ``stats[key]`` — the default is never needed."""
        return self[key]


def _synthetic_result(spec: RunSpec) -> RunResult:
    """A plausible, nonzero placeholder result used during planning."""
    return RunResult(
        workload=spec.workload, model=spec.model, num_cores=spec.cores,
        clock_ghz=spec.clock_ghz,
        exec_time_fs=1_000_000_000, settled_fs=1_000_000_000,
        breakdown=Breakdown(4e8, 1e8, 3e8, 2e8),
        traffic=Traffic(read_bytes=1024, write_bytes=1024),
        energy=EnergyBreakdown(*([1e-3] * 7)),
        instructions=1000, word_accesses=1000, local_accesses=100,
        l1_misses=100, l1_load_misses=60, l1_store_misses=40,
        l2_accesses=100, l2_misses=50,
        stats=_PlannerStats(),
    )


class PlanCache:
    """A Runner cache that records every requested spec.

    Every lookup "hits" with a synthetic result, so driving an
    experiment function with a plan-backed Runner enumerates the exact
    run set without simulating anything.  This works because the
    experiments' run sets are static — which runs they request never
    depends on measured values, only on their sweep grids.
    """

    def __init__(self) -> None:
        self.specs: list[RunSpec] = []
        self._memo: dict[tuple, RunResult] = {}

    def get(self, spec: RunSpec) -> RunResult:
        """Record ``spec`` (once) and return the placeholder result."""
        memo_key = spec.memo_key()
        if memo_key not in self._memo:
            self._memo[memo_key] = _synthetic_result(spec)
            self.specs.append(spec)
        return self._memo[memo_key]

    def put(self, spec: RunSpec, outcome) -> None:
        """Planning never stores real results."""

    def describe(self) -> str:
        """One-line backend description for diagnostics."""
        return f"planner ({len(self.specs)} specs captured)"


def plan(experiment_fns, preset: str = "default") -> list[RunSpec]:
    """The deduplicated run set needed by the given experiment functions."""
    from repro.harness.runner import Runner

    cache = PlanCache()
    runner = Runner(preset=preset, cache=cache)
    for fn in experiment_fns:
        fn(runner)
    return cache.specs


def replay_cache(outcomes) -> MemoryCache:
    """A Runner cache pre-filled from settled outcomes.

    Failed outcomes are installed as :class:`FailedRun` markers so a
    replaying Runner raises a clean
    :class:`~repro.grid.store.RunFailedError` instead of silently
    re-simulating the failed point in-process.
    """
    cache = MemoryCache()
    for outcome in outcomes:
        cache.put(outcome.spec, outcome.result if outcome.status == "ok"
                  else outcome.failure)
    return cache


__all__ = ["GridScheduler", "RunOutcome", "PlanCache", "plan",
           "replay_cache", "outcome_from_payload"]
