"""The serializable unit of grid work: one fully-specified simulation.

A :class:`RunSpec` captures everything :func:`repro.run_workload` needs —
workload, memory model, machine knobs, preset, overrides — as a frozen
value object that can be

* executed (:meth:`RunSpec.execute`, in-process or inside a worker),
* memoized in a dict (:meth:`RunSpec.memo_key`),
* addressed in the on-disk store (:meth:`RunSpec.content_key`, a hash
  of the *expanded* :class:`~repro.config.MachineConfig` so any config
  field change — not just the sweep knobs — changes the key), and
* shipped across a process boundary (plain picklable dataclass, plus
  :meth:`to_dict` / :meth:`from_dict` for the JSON store records).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.grid import keys


@dataclass(frozen=True)
class RunSpec:
    """One simulation request, fully specified and serializable.

    ``overrides`` are *workload* overrides (forwarded to the workload
    build); ``config_overrides`` are *machine* overrides — a dict of
    dotted config paths applied via
    :meth:`repro.config.MachineConfig.with_overrides`
    (``{"l1.capacity_bytes": 65536, "dram.channels": 4}``).  They make
    every MachineConfig field the design-space tuner sweeps addressable
    through the same store/scheduler fabric as the classic sweep knobs;
    the content key hashes the *expanded* config, so two spellings of
    the same machine share one store record.
    """

    workload: str
    model: str = "cc"
    cores: int = 16
    clock_ghz: float = 0.8
    bandwidth_gbps: float = 6.4
    prefetch: bool = False
    prefetch_depth: int = 4
    preset: str = "default"
    overrides: dict | None = None
    config_overrides: dict | None = None

    def to_config(self):
        """Expand the sweep knobs into the full :class:`MachineConfig`."""
        from repro.config import MachineConfig

        config = MachineConfig(num_cores=self.cores).with_model(self.model)
        config = config.with_clock(self.clock_ghz)
        config = config.with_bandwidth(self.bandwidth_gbps)
        if self.prefetch:
            config = config.with_prefetch(depth=self.prefetch_depth)
        if self.config_overrides:
            config = config.with_overrides(self.config_overrides)
        return config

    def execute(self):
        """Run the simulation this spec describes; returns a RunResult.

        This is *the* execution path: the serial :class:`Runner`, the
        parallel workers, and ``repro.run_workload`` all reduce to the
        same config-build + program-build + :func:`run_program` calls,
        which is what makes serial and parallel sweeps bit-identical.
        """
        from repro.config import MemoryModel
        from repro.core.system import run_program
        from repro.workloads import get_workload

        config = self.to_config()
        program = get_workload(self.workload).build(
            MemoryModel.parse(self.model), config, preset=self.preset,
            overrides=self.overrides)
        return run_program(config, program)

    def execute_with_series(self, interval_fs: int = 0):
        """Like :meth:`execute`, but also sample a metric time series.

        Returns ``(result, series_dict)``.  The sampling is pull-mode
        (:class:`repro.obs.sampler.MetricsSampler`), which attaches no
        hooks and adds no events, so ``result`` — including
        ``stats["sim.events"]`` — is bit-identical to :meth:`execute`
        and safe to store under the same content key.  ``interval_fs=0``
        picks an automatic window of 20k core cycles.
        """
        from repro.config import MemoryModel
        from repro.core.system import CmpSystem
        from repro.obs.sampler import MetricsSampler
        from repro.workloads import get_workload

        config = self.to_config()
        program = get_workload(self.workload).build(
            MemoryModel.parse(self.model), config, preset=self.preset,
            overrides=self.overrides)
        system = CmpSystem(config, program)
        if interval_fs <= 0:
            interval_fs = max(1, config.core.cycle_fs * 20_000)
        sampler = MetricsSampler(system, interval_fs)
        result = sampler.drive()
        return result, sampler.to_dict()

    def memo_key(self) -> tuple:
        """Cheap hashable key for in-process memo dictionaries."""
        return (self.workload, self.model, self.cores, self.clock_ghz,
                self.bandwidth_gbps, self.prefetch, self.prefetch_depth,
                self.preset, keys.freeze(self.overrides or {}),
                keys.freeze(self.config_overrides or {}))

    def content_key(self) -> str:
        """Stable store address: hash of the full expanded configuration."""
        return keys.content_key({
            "workload": self.workload,
            "preset": self.preset,
            "overrides": keys.jsonable(self.overrides or {}),
            "config": self.to_config().to_dict(),
        })

    def to_dict(self) -> dict:
        """JSON-safe description (sets in overrides become tagged lists)."""
        return {
            "workload": self.workload,
            "model": self.model,
            "cores": self.cores,
            "clock_ghz": self.clock_ghz,
            "bandwidth_gbps": self.bandwidth_gbps,
            "prefetch": self.prefetch,
            "prefetch_depth": self.prefetch_depth,
            "preset": self.preset,
            "overrides": keys.jsonable(self.overrides) if self.overrides
                         else None,
            "config_overrides": keys.jsonable(self.config_overrides)
                                if self.config_overrides else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        """Rebuild a spec written by :meth:`to_dict`.

        Records written before ``config_overrides`` existed simply omit
        the key; the dataclass default covers them.
        """
        return cls(**data)

    def label(self) -> str:
        """Short human-readable identity for progress lines and errors."""
        parts = [f"{self.workload}/{self.model}", f"x{self.cores}",
                 f"@{self.clock_ghz}GHz", f"{self.bandwidth_gbps}GB/s"]
        if self.prefetch:
            parts.append(f"pf{self.prefetch_depth}")
        if self.overrides:
            parts.append("+" + ",".join(sorted(map(str, self.overrides))))
        if self.config_overrides:
            parts.append("cfg{" + ",".join(
                f"{k}={v}" for k, v in sorted(self.config_overrides.items()))
                + "}")
        parts.append(f"[{self.preset}]")
        return " ".join(parts)


__all__ = ["RunSpec"]
