"""Canonical run keys: one canonicalizer for memoization and storage.

Every cache layer in the system — the in-process memo dict of
:class:`~repro.harness.runner.Runner`, the on-disk store of
:mod:`repro.grid.store`, and the deduplication set of the parallel
scheduler — must agree on when two run requests are "the same run".
This module is the single source of that answer:

* :func:`freeze` turns an overrides mapping (or any nested structure of
  dicts / lists / tuples / sets) into a hashable, order-independent
  tuple for in-memory dictionary keys.
* :func:`jsonable` produces the equivalent canonical JSON-safe form
  (sets become tagged sorted lists, so a set and a list never collide).
* :func:`content_key` hashes the *full* machine configuration plus the
  workload / preset / overrides and a schema + code version stamp into
  a stable hex digest — the address of a result in the on-disk store.

The schema stamp (:data:`SCHEMA_VERSION`) must be bumped whenever the
meaning of a stored result changes: a new ``RunResult`` field, a change
to simulator semantics that alters measurements, or a change to the key
payload itself.  Bumping it orphans (but does not delete) every old
record; ``python -m repro grid clear`` reclaims the space.
"""

from __future__ import annotations

import hashlib
import json

#: Version stamp mixed into every content key.  Bump on any change to
#: the stored-result schema or to simulator semantics (see module doc).
SCHEMA_VERSION = 1

#: Tag marking a set in the canonical JSON form; dicts containing this
#: key cannot be confused with it because dict keys stay strings.
_SET_TAG = "__repro_set__"


def freeze(value):
    """Recursively convert ``value`` into a hashable canonical form.

    Dicts become key-sorted tuples of pairs, lists/tuples become tuples,
    sets and frozensets become order-independent sorted tuples (tagged so
    they can never collide with a list of the same elements).  Any other
    leaf must already be hashable; an unhashable leaf (e.g. a stray dict
    subclass or a numpy array) raises :class:`TypeError` immediately
    instead of silently producing an unstable key.
    """
    if isinstance(value, dict):
        return tuple(sorted((str(k), freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(freeze(v) for v in value)
    if isinstance(value, (set, frozenset)):
        frozen = sorted((repr(v), freeze(v)) for v in value)
        return (_SET_TAG,) + tuple(item for _, item in frozen)
    try:
        hash(value)
    except TypeError:
        raise TypeError(
            f"cannot build a stable run key from unhashable leaf "
            f"{value!r} of type {type(value).__name__}; use plain "
            f"dicts/lists/sets/scalars in overrides"
        ) from None
    return value


def jsonable(value):
    """The canonical JSON-safe equivalent of :func:`freeze`.

    Returns a structure ``json.dumps`` accepts with no custom encoder:
    dicts keep string keys, sets become ``[_SET_TAG, ...sorted items]``,
    tuples become lists.  Leaves must be JSON scalars (str / int /
    float / bool / None); anything else raises :class:`TypeError`.
    """
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in sorted(value.items(),
                                                       key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        items = sorted((repr(v), jsonable(v)) for v in value)
        return [_SET_TAG] + [item for _, item in items]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise TypeError(
        f"cannot serialize run-key leaf {value!r} of type "
        f"{type(value).__name__}; use JSON-compatible scalars"
    )


def canonical_json(payload) -> str:
    """Deterministic JSON text for ``payload`` (sorted keys, no spaces)."""
    return json.dumps(jsonable(payload), sort_keys=True,
                      separators=(",", ":"))


def content_key(payload) -> str:
    """Stable sha256 hex digest of a canonicalized key payload.

    The caller supplies the payload dict (full config, workload, preset,
    overrides); this function mixes in :data:`SCHEMA_VERSION` and the
    package version so results recorded by incompatible code never
    collide with fresh ones.
    """
    import repro

    stamped = {
        "schema": SCHEMA_VERSION,
        "code": repro.__version__,
        "payload": payload,
    }
    digest = hashlib.sha256(canonical_json(stamped).encode("utf-8"))
    return digest.hexdigest()


__all__ = ["SCHEMA_VERSION", "freeze", "jsonable", "canonical_json",
           "content_key"]
