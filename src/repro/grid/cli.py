"""Command-line surface of the grid subsystem.

Usage::

    python -m repro grid sweep figure2 table3 --preset tiny --jobs 4
    python -m repro grid sweep all --jobs 8 --progress-json sweep.json
    python -m repro grid plan figure2 --preset tiny
    python -m repro grid info
    python -m repro grid clear --failed
    python -m repro grid compact [--failed]

``sweep`` regenerates the named experiments (default: every one) by
planning their deduplicated run set, executing the misses on a worker
pool, and replaying the experiments from the settled results.  The
existing ``python -m repro figureN/table3/all`` commands accept
``--jobs`` / ``--store`` / ``--no-store`` and route through the same
machinery.

The store location is ``--store PATH`` if given, else the
``REPRO_STORE`` environment variable, else ``.repro-cache/`` in the
working directory.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.grid.progress import Progress
from repro.grid.scheduler import GridScheduler, plan, replay_cache
from repro.grid.store import (
    MemoryCache,
    ResultStore,
    RunFailedError,
    StoreCache,
)

#: Default store directory when neither --store nor REPRO_STORE is set.
DEFAULT_STORE = ".repro-cache"


def resolve_store(path: str | None = None,
                  no_store: bool = False) -> ResultStore | None:
    """The store for this invocation (None when storing is disabled)."""
    if no_store:
        return None
    # Sanctioned read: resolved once per CLI invocation, before any run.
    env_root = os.environ.get("REPRO_STORE")  # repro-lint: disable=REPRO007
    root = path or env_root or DEFAULT_STORE
    return ResultStore(root)


def _experiment_names(requested: list[str]) -> list[str]:
    from repro.harness import EXPERIMENTS

    if not requested or requested == ["all"]:
        return list(EXPERIMENTS)
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        raise SystemExit(
            f"unknown experiment(s) {', '.join(unknown)}; "
            f"choose from {', '.join(EXPERIMENTS)} (or 'all')")
    return list(dict.fromkeys(requested))


def run_experiments(names: list[str], preset: str = "default",
                    jobs: int = 1, store: ResultStore | None = None,
                    timeout_s: float | None = None, retries: int = 1,
                    retry_failed: bool = False,
                    progress_json: str | None = None,
                    series_interval_fs: int | None = None,
                    render=None) -> int:
    """Regenerate experiments with optional parallelism and persistence.

    ``render(name, experiment_result)`` is called for each completed
    experiment (default: print the text table to stdout).
    ``progress_json`` may be a path (one summary document written at the
    end) or ``"-"`` (one JSON line per sweep event streamed to stdout,
    flushed per line).  ``series_interval_fs`` additionally samples a
    metric time series inside every executed run and stores it beside
    the result record (0 means a per-config automatic interval).

    Returns the process exit code: 0 when everything settled in band, 1
    when any run degraded to a recorded FailedRun, and 2 when every run
    settled but a scorecard claim left its acceptance band (so CI fails
    on a quietly-broken reproduction, not just on crashes).
    """
    from repro.harness import EXPERIMENTS
    from repro.harness.runner import Runner

    if render is None:
        def render(_name, result):
            print(result.to_text())
            print()

    names = _experiment_names(names)
    fns = [EXPERIMENTS[name] for name in names]
    jobs = max(1, jobs)
    stream_events = progress_json == "-"
    progress = Progress(jobs=jobs,
                        jsonl=sys.stdout if stream_events else None)
    failures: dict[str, object] = {}
    results: list = []

    if jobs == 1 and series_interval_fs is None:
        cache = StoreCache(store) if store is not None else MemoryCache()
        runner = Runner(preset=preset, cache=cache)
        rendered = _replay(names, fns, runner, failures, render, results)
        progress.total = cache.hits + cache.misses  # post-hoc accounting
        progress.cache_hits = getattr(cache, "store_hits", 0)
        progress.runs_launched = runner.runs
        progress.completed = progress.cache_hits + runner.runs
        progress.failed = len(failures)
    else:
        specs = plan(fns, preset=preset)
        scheduler = GridScheduler(jobs=jobs, store=store,
                                  timeout_s=timeout_s, retries=retries,
                                  retry_failed=retry_failed,
                                  progress=progress,
                                  series_interval_fs=series_interval_fs)
        outcomes = list(scheduler.map(specs))
        for outcome in outcomes:
            if outcome.status == "failed":
                failures[outcome.key] = outcome.failure
        runner = Runner(preset=preset, cache=replay_cache(outcomes))
        rendered = _replay(names, fns, runner, failures, render, results)

    out_of_band = [
        row for result in results for row in result.rows
        if row.get("ok") is False
    ]
    if failures:
        print(f"\n{len(failures)} run(s) failed "
              f"({len(names) - rendered} experiment(s) incomplete):",
              file=sys.stderr)
        for failure in failures.values():
            print(f"  - {failure.label}: {failure.kind}: {failure.message}",
                  file=sys.stderr)
    if out_of_band:
        print(f"\n{len(out_of_band)} claim(s) out of band:", file=sys.stderr)
        for row in out_of_band:
            print(f"  - {row.get('claim', '?')}: measured "
                  f"{row.get('measured')} outside {row.get('band')}",
                  file=sys.stderr)
    if stream_events:
        payload = progress.as_dict()
        payload["experiments"] = names
        payload["preset"] = preset
        progress.emit_jsonl("summary", **payload)
    elif progress_json:
        payload = progress.as_dict()
        payload["experiments"] = names
        payload["preset"] = preset
        payload["store"] = str(store.root) if store is not None else None
        with open(progress_json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if failures:
        return 1
    return 2 if out_of_band else 0


def _replay(names, fns, runner, failures, render, results=None) -> int:
    """Render each experiment from the runner; collect clean failures."""
    rendered = 0
    for name, fn in zip(names, fns):
        try:
            result = fn(runner)
        except RunFailedError as error:
            failures[error.failure.key] = error.failure
            print(f"{name}: incomplete — {error}", file=sys.stderr)
            continue
        if results is not None:
            results.append(result)
        render(name, result)
        rendered += 1
    return rendered


def _cmd_sweep(args) -> int:
    from repro.units import ns_to_fs

    store = resolve_store(args.store, args.no_store)
    series_interval_fs = None
    if args.series:
        series_interval_fs = ns_to_fs(args.series_interval_ns) \
            if args.series_interval_ns else 0
    return run_experiments(
        args.experiments, preset=args.preset, jobs=args.jobs, store=store,
        timeout_s=args.timeout, retries=args.retries,
        retry_failed=args.retry_failed, progress_json=args.progress_json,
        series_interval_fs=series_interval_fs)


def _cmd_plan(args) -> int:
    from repro.harness import EXPERIMENTS

    names = _experiment_names(args.experiments)
    specs = plan([EXPERIMENTS[name] for name in names], preset=args.preset)
    unique = dict((spec.content_key(), spec) for spec in specs)
    for key, spec in unique.items():
        print(f"{key[:12]}  {spec.label()}")
    print(f"{len(unique)} unique run(s) for {', '.join(names)} "
          f"({args.preset} preset)", file=sys.stderr)
    return 0


def _cmd_info(args) -> int:
    store = resolve_store(args.store)
    stats = store.stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print(f"store      : {stats['root']}")
    print(f"records    : {stats['records']} "
          f"({stats['ok']} ok, {stats['failed']} failed)")
    print(f"size       : {stats['size_bytes'] / 1024:.1f} KiB")
    print(f"series     : {stats['series']} sidecar(s), "
          f"{stats['series_bytes'] / 1024:.1f} KiB")
    if stats["corrupt"]:
        print(f"corrupt    : {stats['corrupt']} quarantined file(s), "
              f"{stats['corrupt_bytes'] / 1024:.1f} KiB "
              f"(reclaim with 'grid compact')")
    return 0


def _cmd_clear(args) -> int:
    store = resolve_store(args.store)
    removed = store.clear(failed_only=args.failed)
    what = "failed record(s)" if args.failed else "record(s)"
    print(f"removed {removed} {what} from {store.root}")
    return 0


def _cmd_compact(args) -> int:
    store = resolve_store(args.store)
    summary = store.compact(drop_failed=args.failed)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"compacted {store.root}: removed {summary['removed']} file(s) "
          f"({summary['corrupt']} quarantined, {summary['stale']} "
          f"version-stale, {summary['failed']} failed, "
          f"{summary['orphaned_series']} orphaned series), "
          f"kept {summary['kept']} record(s), reclaimed "
          f"{summary['reclaimed_bytes'] / 1024:.1f} KiB")
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro grid",
        description="parallel experiment execution with a persistent "
                    "result store")
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser(
        "sweep", help="plan, execute in parallel, and render experiments")
    sweep.add_argument("experiments", nargs="*", default=[],
                       help="experiment names (default: all)")
    sweep.add_argument("--preset", default="default",
                       choices=["default", "small", "tiny"])
    sweep.add_argument("--jobs", type=int,
                       default=os.cpu_count() or 1,
                       help="worker processes (default: CPU count)")
    sweep.add_argument("--store", metavar="PATH",
                       help=f"store directory (default: $REPRO_STORE or "
                            f"{DEFAULT_STORE})")
    sweep.add_argument("--no-store", action="store_true",
                       help="run without persisting results")
    sweep.add_argument("--timeout", type=float, metavar="S",
                       help="per-run timeout in seconds")
    sweep.add_argument("--retries", type=int, default=1,
                       help="resubmissions after a worker exception")
    sweep.add_argument("--retry-failed", action="store_true",
                       help="re-run keys whose stored record is a failure")
    sweep.add_argument("--progress-json", metavar="PATH",
                       help="write the sweep metrics as JSON "
                            "('-' streams one line per event to stdout)")
    sweep.add_argument("--series", action="store_true",
                       help="sample a metric time series inside every "
                            "executed run and store it beside the result")
    sweep.add_argument("--series-interval-ns", type=int, default=0,
                       metavar="NS",
                       help="series sampling window in simulated ns "
                            "(default: 20k core cycles per config)")

    plan_p = sub.add_parser(
        "plan", help="print the deduplicated run set of experiments")
    plan_p.add_argument("experiments", nargs="*", default=[])
    plan_p.add_argument("--preset", default="default",
                        choices=["default", "small", "tiny"])

    info = sub.add_parser("info", help="store statistics")
    info.add_argument("--store", metavar="PATH")
    info.add_argument("--json", action="store_true")

    clear = sub.add_parser("clear", help="delete store records")
    clear.add_argument("--store", metavar="PATH")
    clear.add_argument("--failed", action="store_true",
                       help="only delete failure records")

    compact = sub.add_parser(
        "compact", help="garbage-collect quarantined, version-stale, and "
                        "orphaned store files")
    compact.add_argument("--store", metavar="PATH")
    compact.add_argument("--failed", action="store_true",
                         help="also drop recorded failures")
    compact.add_argument("--json", action="store_true")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro grid`` / ``python -m repro.grid``."""
    args = _build_parser().parse_args(argv)
    handler = {"sweep": _cmd_sweep, "plan": _cmd_plan,
               "info": _cmd_info, "clear": _cmd_clear,
               "compact": _cmd_compact}[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
