"""First-order silicon area model (90 nm) for design-space constraints.

The design-space tuner (:mod:`repro.tune`) needs a pre-simulation
feasibility test: "does this MachineConfig even fit the area budget?".
Following the constraint formulation of Yavits et al. (*Cache Hierarchy
Optimization*), chip area is a resource shared between cores, cache,
and I/O — growing one level of the hierarchy must pay for itself
against the others.  This module prices a :class:`MachineConfig` in
mm² with the same first-order scaling the CACTI-flavoured energy model
uses (:mod:`repro.energy.cacti`):

* **SRAM arrays** scale linearly with capacity (90 nm 6T cell plus a
  fixed array-efficiency factor for decoders/sense-amps), with a
  per-way tag overhead for tagged arrays — a local store is cheaper
  than a cache of the same capacity, which is exactly the trade the
  paper's streaming model makes;
* **cores** are a per-core constant (Tensilica-LX-class 3-way VLIW);
* **interconnect** charges per cluster bus and crossbar port;
* **DRAM channels** each pay a PHY/pad constant, which is what makes
  "just add channels" a real design decision instead of a free knob.

Absolute numbers are calibrated to land in the plausible 90 nm range
(a Table 2 baseline 8-core CC machine comes out around 60 mm²); as with
the energy constants, the *ordering* between configurations is what the
tuner consumes.
"""

from __future__ import annotations

from repro.config import MachineConfig, MemoryModel

#: 90 nm 6T SRAM cell, mm² per byte (≈1.0 µm²/bit), including a 1.45×
#: array-efficiency factor for decoders, sense-amps, and wiring.
_SRAM_MM2_PER_BYTE = 8 * 1.0e-6 * 1.45
#: Extra tag-array area per way, as a fraction of the data array of a
#: 32-byte-line cache (tag + state bits ≈ 9% of a line per way pair).
_TAG_FRACTION_PER_WAY = 0.018
#: One 3-way VLIW core, register files and pipeline, no caches.
_CORE_MM2 = 1.6
#: One cluster bus / one crossbar port pair.
_BUS_MM2 = 0.35
_XBAR_PORT_MM2 = 0.45
#: One DRAM channel: PHY, pads, and the controller queue.
_DRAM_CHANNEL_MM2 = 4.5


def sram_area_mm2(capacity_bytes: int, associativity: int = 1,
                  tagged: bool = True) -> float:
    """Area of one SRAM array in mm² (90 nm).

    ``tagged=False`` models a directly indexed local store — no tag
    array or comparators, mirroring :func:`repro.energy.cacti.sram_energy`.
    """
    if capacity_bytes <= 0:
        raise ValueError(f"capacity must be positive, got {capacity_bytes}")
    if associativity <= 0:
        raise ValueError(
            f"associativity must be positive, got {associativity}")
    data_mm2 = capacity_bytes * _SRAM_MM2_PER_BYTE
    tag_mm2 = data_mm2 * _TAG_FRACTION_PER_WAY * associativity if tagged \
        else 0.0
    return data_mm2 + tag_mm2


def machine_area_mm2(config: MachineConfig) -> dict[str, float]:
    """Per-component area breakdown of a machine, in mm².

    Returns a dict with one entry per component class plus ``"total"``.
    The first-level data storage follows the active memory model: the
    32 KB D-cache under CC, the local store plus the 8 KB stream cache
    under STR (Table 2's two first-level options).
    """
    cores = config.num_cores
    core_mm2 = cores * _CORE_MM2
    icache_mm2 = cores * sram_area_mm2(config.icache.capacity_bytes,
                                       config.icache.associativity)
    if config.model is MemoryModel.STREAMING:
        l1_mm2 = cores * (
            sram_area_mm2(config.stream.local_store_bytes, tagged=False)
            + sram_area_mm2(config.stream_l1.capacity_bytes,
                            config.stream_l1.associativity))
    else:
        l1_mm2 = cores * sram_area_mm2(config.l1.capacity_bytes,
                                       config.l1.associativity)
    l2_mm2 = sram_area_mm2(config.l2.capacity_bytes,
                           config.l2.associativity)
    network_mm2 = (config.num_clusters * _BUS_MM2
                   + (config.num_clusters + 1) * _XBAR_PORT_MM2)
    dram_mm2 = config.dram.channels * _DRAM_CHANNEL_MM2
    breakdown = {
        "core": core_mm2,
        "icache": icache_mm2,
        "l1": l1_mm2,
        "l2": l2_mm2,
        "network": network_mm2,
        "dram_io": dram_mm2,
    }
    breakdown["total"] = sum(breakdown.values())
    return breakdown


__all__ = ["sram_area_mm2", "machine_area_mm2"]
