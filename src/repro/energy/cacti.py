"""CACTI-flavoured analytical SRAM energy model (90 nm, 1.0 V).

The real CACTI 4.1 solves for an optimal sub-array organization; here we
use the standard first-order scaling it produces: per-access dynamic
energy grows roughly with the square root of capacity (bitline/wordline
length of a well-banked array) plus a per-way tag overhead, and leakage
power grows linearly with capacity.

Constants are fit so the structures of Table 2 land at plausible 90 nm
values (within the range CACTI 4.1 reports):

* 8 KB 2-way cache   ~ 12 pJ/access
* 32 KB 2-way cache  ~ 22 pJ/access
* 24 KB local store  ~ 14 pJ/access (no tags)
* 512 KB 16-way L2   ~ 180 pJ/access

The absolute values matter less than their ordering and the tag-vs-no-tag
difference: Section 5.2 observes that eliminating tag lookups saves
little because DRAM dominates — a conclusion our constants preserve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Fit constants (picojoules / milliwatts), 90 nm general-purpose process.
_E_FIXED_PJ = 1.5            # decoder + sense-amp overhead per access
_E_ARRAY_PJ_PER_SQRT_B = 0.105   # data-array energy per sqrt(byte)
_E_TAG_PJ_PER_WAY = 0.55     # tag read + compare per way
_LEAKAGE_MW_PER_KB = 0.040   # subthreshold + gate leakage per KB


@dataclass(frozen=True)
class SramEnergy:
    """Per-access energy (joules) and leakage power (watts) of one array."""

    read_j: float
    write_j: float
    tag_j: float
    leakage_w: float


def sram_energy(capacity_bytes: int, associativity: int = 1,
                tagged: bool = True) -> SramEnergy:
    """Return the energy characteristics of an SRAM array.

    ``tagged=False`` models the streaming local store: a directly indexed
    RAM with no tag array or comparators (Section 2.3: "streaming accesses
    to the first-level storage eliminate the energy overhead of caches").
    """
    if capacity_bytes <= 0:
        raise ValueError(f"capacity must be positive, got {capacity_bytes}")
    if associativity <= 0:
        raise ValueError(f"associativity must be positive, got {associativity}")
    array_pj = _E_FIXED_PJ + _E_ARRAY_PJ_PER_SQRT_B * math.sqrt(capacity_bytes)
    tag_pj = _E_TAG_PJ_PER_WAY * associativity if tagged else 0.0
    read_pj = array_pj + tag_pj
    # Writes skip the sense amplifiers but drive the bitlines harder; the
    # net effect in CACTI is a slightly cheaper access.
    write_pj = 0.9 * array_pj + tag_pj
    leakage_w = _LEAKAGE_MW_PER_KB * (capacity_bytes / 1024) * 1e-3
    return SramEnergy(
        read_j=read_pj * 1e-12,
        write_j=write_pj * 1e-12,
        tag_j=tag_pj * 1e-12,
        leakage_w=leakage_w,
    )
