"""Energy model for the 90 nm CMP (Section 4.1, Figure 4).

The paper combines layout-derived core energy, CACTI 4.1 SRAM energies,
scaled interconnect measurements, and DRAMsim-derived DRAM energy, all at
90 nm / 1.0 V, including leakage and clock gating.  We reproduce the
*structure* of that model analytically:

* :mod:`repro.energy.cacti` — a CACTI-flavoured analytical SRAM model
  giving per-access energy and leakage power as a function of capacity,
  associativity, and line size (tagged caches pay tag read + compare;
  the streaming local store does not),
* :mod:`repro.energy.model` — per-event energy accounting over the
  counters a finished simulation exposes, yielding the Figure 4
  categories (core, I-cache, D-cache, local memory, network, L2, DRAM),
* :mod:`repro.energy.area` — first-order 90 nm silicon area pricing of
  a full :class:`~repro.config.MachineConfig`, the feasibility
  constraint the design-space tuner (:mod:`repro.tune`) screens
  candidates against before spending simulation budget on them.
"""

from repro.energy.area import machine_area_mm2, sram_area_mm2
from repro.energy.cacti import SramEnergy, sram_energy
from repro.energy.model import EnergyModel, EnergyParams

__all__ = ["SramEnergy", "sram_energy", "EnergyModel", "EnergyParams",
           "machine_area_mm2", "sram_area_mm2"]
