"""Full-system energy accounting (Figure 4).

The model walks the counters of a finished simulation and charges:

* **core** — per-instruction dynamic energy (from the instruction mix of
  a Tensilica LX-class 3-way VLIW at 90 nm) plus active-cycle overhead
  and leakage; stalled cycles are clock-gated and pay leakage only,
* **icache** — one 16 KB I-cache read per issue group, plus misses,
* **dcache** — L1 D-cache (or the streaming model's 8 KB cache) accesses,
  snoop tag lookups, and refills,
* **local_store** — local store reads/writes (no tag energy),
* **network** — per-byte energy on the cluster buses and the crossbar,
  scaled from the on-chip interconnect measurements of Ho et al. [19],
* **l2** — shared L2 accesses and leakage,
* **dram** — per-byte transfer energy, per-access activate energy, and
  background power, following the DRAMsim-derived model of [42].

Energy follows performance and traffic: a model that finishes earlier
pays less leakage/background energy, and a model that moves fewer bytes
pays less network + DRAM energy — the two effects behind the paper's
energy conclusions (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import MachineConfig, MemoryModel
from repro.energy.cacti import sram_energy
from repro.results import EnergyBreakdown
from repro.units import fs_to_seconds


@dataclass(frozen=True)
class EnergyParams:
    """Tunable per-event energies (90 nm, 1.0 V defaults)."""

    core_instruction_pj: float = 24.0
    core_active_cycle_pj: float = 12.0
    core_leakage_mw: float = 6.0
    bus_pj_per_byte: float = 4.0
    xbar_pj_per_byte: float = 7.0
    dram_pj_per_byte: float = 280.0
    dram_access_pj: float = 1200.0
    dram_background_mw: float = 180.0


class EnergyModel:
    """Computes an :class:`~repro.results.EnergyBreakdown` for a run."""

    def __init__(self, config: MachineConfig,
                 params: EnergyParams | None = None) -> None:
        self.config = config
        self.params = params or EnergyParams()
        self._icache = sram_energy(
            config.icache.capacity_bytes, config.icache.associativity
        )
        l1_config = (
            config.stream_l1 if config.model is MemoryModel.STREAMING else config.l1
        )
        self._dcache = sram_energy(l1_config.capacity_bytes, l1_config.associativity)
        self._local_store = sram_energy(
            config.stream.local_store_bytes, associativity=1, tagged=False
        )
        self._l2 = sram_energy(config.l2.capacity_bytes, config.l2.associativity)

    def compute(self, system) -> EnergyBreakdown:
        """Charge every counter of a finished :class:`CmpSystem`."""
        config = self.config
        params = self.params
        hierarchy = system.hierarchy
        uncore = hierarchy.uncore
        seconds = fs_to_seconds(system.exec_time_fs)
        num_cores = config.num_cores

        instructions = sum(p.instructions for p in system.processors)
        useful_s = fs_to_seconds(sum(p.useful_fs for p in system.processors))

        core_j = (
            instructions * params.core_instruction_pj * 1e-12
            + useful_s * config.core.clock_ghz * 1e9 * params.core_active_cycle_pj * 1e-12
            + num_cores * params.core_leakage_mw * 1e-3 * seconds
        )

        fetches = instructions / config.core.issue_width
        icache_misses = sum(p.icache_misses for p in system.processors)
        icache_j = (
            fetches * self._icache.read_j
            + icache_misses * self._l2.read_j
            + num_cores * self._icache.leakage_w * seconds
        )

        word_accesses = sum(p.word_accesses for p in system.processors)
        refills = hierarchy.l1_misses + hierarchy.prefetches_issued
        dcache_j = (
            word_accesses * self._dcache.read_j
            + hierarchy.snoop_lookups * self._dcache.tag_j
            + refills * (config.line_bytes / 4) * self._dcache.write_j
            + num_cores * self._dcache.leakage_w * seconds
        )

        local_j = 0.0
        if config.model is MemoryModel.STREAMING:
            local_accesses = sum(p.local_accesses for p in system.processors)
            dma_words = hierarchy.dma_bytes / 4
            local_j = (
                (local_accesses + dma_words) * self._local_store.read_j
                + num_cores * self._local_store.leakage_w * seconds
            )

        bus_bytes = sum(b.bytes_moved for b in uncore.buses)
        xbar_bytes = uncore.xbar.bytes_moved
        network_j = (
            bus_bytes * params.bus_pj_per_byte * 1e-12
            + xbar_bytes * params.xbar_pj_per_byte * 1e-12
        )

        l2_accesses = uncore.l2_reads + uncore.l2_writes
        l2_j = (
            l2_accesses * self._l2.read_j
            # Directory mode: sharer-set lookups, co-located with the L2.
            + hierarchy.directory_lookups * self._l2.tag_j
            + self._l2.leakage_w * seconds
        )

        dram = uncore.dram
        dram_j = (
            dram.total_bytes * params.dram_pj_per_byte * 1e-12
            + dram.total_accesses * params.dram_access_pj * 1e-12
            + params.dram_background_mw * 1e-3 * seconds
        )

        return EnergyBreakdown(
            core=core_j,
            icache=icache_j,
            dcache=dcache_j,
            local_store=local_j,
            network=network_j,
            l2=l2_j,
            dram=dram_j,
        )
