"""CLI for the analysis subsystem: ``python -m repro.analysis``.

Subcommands::

    check-protocol   exhaustively model-check MESI for 2..N caches
    lint             run the simulator-aware lint pass over source trees
    audit-programs   statically audit workload op streams for races,
                     DMA hazards, and block-replay eligibility
    monitor          run one workload with runtime invariant monitors on

Exit status is non-zero when a check fails, the lint pass has findings,
or the audit reports hazards, so each subcommand can gate CI directly.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.lint import lint_paths, render_findings, rule_range
from repro.analysis.model_check import BROKEN_TABLE_BUGS, run_full_check


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="Static analysis and verification for the repro simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check_p = sub.add_parser(
        "check-protocol",
        help="exhaustive MESI model check (tables + real hierarchy)")
    check_p.add_argument("--caches", type=int, default=4,
                         help="largest cache count to verify (default 4)")
    check_p.add_argument("--broken", choices=BROKEN_TABLE_BUGS,
                         help="seed a protocol bug and demand the checker "
                              "produce a counterexample trace")

    lint_p = sub.add_parser(
        "lint", help=f"simulator-aware lint ({rule_range()})")
    lint_p.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories (default: src/repro)")
    lint_p.add_argument("--json", action="store_true",
                        help="machine-readable JSON output")

    audit_p = sub.add_parser(
        "audit-programs",
        help="static dataflow audit of workload op streams: races, "
             "false sharing, DMA/local-store hazards, block eligibility")
    audit_p.add_argument("workloads", nargs="*",
                         help="workload names (default: all shipped)")
    audit_p.add_argument("--models", nargs="+", default=["cc", "str"],
                         choices=["cc", "str", "icc"],
                         help="memory models to audit (default: cc str)")
    audit_p.add_argument("--cores", nargs="+", type=int, default=[4],
                         help="core counts to audit (default: 4)")
    audit_p.add_argument("--preset", default="tiny",
                         choices=["default", "small", "tiny"])
    audit_p.add_argument("--json", action="store_true",
                         help="machine-readable JSON output")
    audit_p.add_argument("--expect-converted", metavar="NAMES",
                         help="comma-separated workloads that must replay "
                              "OpBlock templates in the cc mapping; exit "
                              "non-zero when the audited set differs")
    audit_p.add_argument("--expect-phased", metavar="NAMES",
                         help="comma-separated workloads that must dispatch "
                              "at least one eligible OpPhase in the cc "
                              "mapping; exit non-zero when the audited set "
                              "differs (guards against silent "
                              "de-vectorization)")
    audit_p.add_argument("--expect-streamed", metavar="NAMES",
                         help="comma-separated workloads that must dispatch "
                              "at least one eligible OpStream in the str "
                              "mapping; exit non-zero when the audited set "
                              "differs (guards against silent de-streaming)")

    mon_p = sub.add_parser(
        "monitor",
        help="run one workload with runtime invariant monitors enabled")
    mon_p.add_argument("workload")
    mon_p.add_argument("--model", choices=["cc", "str", "icc"], default="cc")
    mon_p.add_argument("--cores", type=int, default=8)
    mon_p.add_argument("--preset", default="small",
                       choices=["default", "small", "tiny"])
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)

    if args.command == "check-protocol":
        if not 2 <= args.caches <= 8:
            print("--caches must be between 2 and 8", file=sys.stderr)
            return 2
        ok, report = run_full_check(2, args.caches, broken=args.broken)
        print(report)
        if args.broken is not None:
            # Success means the seeded bug WAS detected.
            print("\nseeded bug detected with counterexample" if ok
                  else "\nseeded bug NOT detected — checker regression")
            return 0 if ok else 1
        print("\nprotocol verified" if ok else "\nprotocol check FAILED")
        return 0 if ok else 1

    if args.command == "lint":
        try:
            findings = lint_paths(args.paths)
        except OSError as exc:
            print(f"repro-lint: cannot read {exc.filename}: {exc.strerror}",
                  file=sys.stderr)
            return 2
        print(render_findings(findings, as_json=args.json))
        return 1 if findings else 0

    if args.command == "audit-programs":
        from repro.analysis.dataflow import audit_workload, render_reports
        from repro.workloads import workload_names

        names = args.workloads or workload_names()
        reports = []
        for name in names:
            for model in args.models:
                for cores in args.cores:
                    try:
                        reports.append(audit_workload(
                            name, model, cores=cores, preset=args.preset))
                    except KeyError as exc:
                        print(exc.args[0], file=sys.stderr)
                        return 2
        print(render_reports(reports, as_json=args.json))
        status = 0
        if any(r.hazards for r in reports):
            status = 1
        if args.expect_converted is not None:
            expected = sorted({part.strip()
                               for part in args.expect_converted.split(",")
                               if part.strip()})
            converted = sorted({r.workload for r in reports
                                if r.model == "cc" and r.converted})
            if converted != expected:
                print(f"expect-converted mismatch: expected {expected}, "
                      f"audited programs replay blocks in {converted}",
                      file=sys.stderr)
                status = 1
        if args.expect_phased is not None:
            expected = sorted({part.strip()
                               for part in args.expect_phased.split(",")
                               if part.strip()})
            phased = sorted({r.workload for r in reports
                             if r.model == "cc" and r.phased})
            if phased != expected:
                print(f"expect-phased mismatch: expected {expected}, "
                      f"audited programs dispatch eligible phases in "
                      f"{phased}", file=sys.stderr)
                status = 1
        if args.expect_streamed is not None:
            expected = sorted({part.strip()
                               for part in args.expect_streamed.split(",")
                               if part.strip()})
            streamed = sorted({r.workload for r in reports
                               if r.model == "str" and r.streamed})
            if streamed != expected:
                print(f"expect-streamed mismatch: expected {expected}, "
                      f"audited programs dispatch eligible streams in "
                      f"{streamed}", file=sys.stderr)
                status = 1
        return status

    # monitor
    from repro import MachineConfig, get_workload
    from repro.core.system import CmpSystem
    from repro.sim.kernel import InvariantViolation

    config = (MachineConfig(num_cores=args.cores)
              .with_model(args.model).with_debug_invariants())
    try:
        workload = get_workload(args.workload)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    program = workload.build(config.model, config, preset=args.preset)
    system = CmpSystem(config, program)
    try:
        result = system.run()
    except InvariantViolation as exc:
        print(f"INVARIANT VIOLATION: {exc}")
        if system.monitors is not None:
            print(system.monitors.summary())
        return 1
    print(result.summary())
    if system.monitors is not None:
        print(system.monitors.summary())
    print("no invariant violations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
