"""CLI for the analysis subsystem: ``python -m repro.analysis``.

Subcommands::

    check-protocol   exhaustively model-check MESI for 2..N caches
    lint             run the simulator-aware lint pass over source trees
    monitor          run one workload with runtime invariant monitors on

Exit status is non-zero when a check fails or the lint pass has
findings, so each subcommand can gate CI directly.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.lint import lint_paths, render_findings
from repro.analysis.model_check import BROKEN_TABLE_BUGS, run_full_check


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="Static analysis and verification for the repro simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check_p = sub.add_parser(
        "check-protocol",
        help="exhaustive MESI model check (tables + real hierarchy)")
    check_p.add_argument("--caches", type=int, default=4,
                         help="largest cache count to verify (default 4)")
    check_p.add_argument("--broken", choices=BROKEN_TABLE_BUGS,
                         help="seed a protocol bug and demand the checker "
                              "produce a counterexample trace")

    lint_p = sub.add_parser(
        "lint", help="simulator-aware lint (REPRO001..REPRO005)")
    lint_p.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories (default: src/repro)")
    lint_p.add_argument("--json", action="store_true",
                        help="machine-readable JSON output")

    mon_p = sub.add_parser(
        "monitor",
        help="run one workload with runtime invariant monitors enabled")
    mon_p.add_argument("workload")
    mon_p.add_argument("--model", choices=["cc", "str", "icc"], default="cc")
    mon_p.add_argument("--cores", type=int, default=8)
    mon_p.add_argument("--preset", default="small",
                       choices=["default", "small", "tiny"])
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)

    if args.command == "check-protocol":
        if not 2 <= args.caches <= 8:
            print("--caches must be between 2 and 8", file=sys.stderr)
            return 2
        ok, report = run_full_check(2, args.caches, broken=args.broken)
        print(report)
        if args.broken is not None:
            # Success means the seeded bug WAS detected.
            print("\nseeded bug detected with counterexample" if ok
                  else "\nseeded bug NOT detected — checker regression")
            return 0 if ok else 1
        print("\nprotocol verified" if ok else "\nprotocol check FAILED")
        return 0 if ok else 1

    if args.command == "lint":
        try:
            findings = lint_paths(args.paths)
        except OSError as exc:
            print(f"repro-lint: cannot read {exc.filename}: {exc.strerror}",
                  file=sys.stderr)
            return 2
        print(render_findings(findings, as_json=args.json))
        return 1 if findings else 0

    # monitor
    from repro import MachineConfig, get_workload
    from repro.core.system import CmpSystem
    from repro.sim.kernel import InvariantViolation

    config = (MachineConfig(num_cores=args.cores)
              .with_model(args.model).with_debug_invariants())
    try:
        workload = get_workload(args.workload)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    program = workload.build(config.model, config, preset=args.preset)
    system = CmpSystem(config, program)
    try:
        result = system.run()
    except InvariantViolation as exc:
        print(f"INVARIANT VIOLATION: {exc}")
        if system.monitors is not None:
            print(system.monitors.summary())
        return 1
    print(result.summary())
    if system.monitors is not None:
        print(system.monitors.summary())
    print("no invariant violations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
