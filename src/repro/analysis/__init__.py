"""Static analysis and verification for the simulator (``repro.analysis``).

Three coordinated passes guard the reproduction against protocol and
modeling regressions (see ``docs/ANALYSIS.md``):

* :mod:`repro.analysis.model_check` — Murphi-style exhaustive BFS over
  the MESI protocol for N caches and one line, with shortest
  counterexample traces, run both on the declarative transition tables
  and on the real hierarchy implementation;
* :mod:`repro.analysis.monitors` — runtime invariant monitors attached
  to a live simulation via ``MachineConfig(debug_invariants=True)``;
* :mod:`repro.analysis.lint` — an AST lint pass enforcing repo-specific
  rules (no wall-clock reads, integer timestamps, unit-suffix naming,
  no mutable defaults, no bare asserts).

Command line::

    python -m repro.analysis check-protocol [--caches 4] [--broken BUG]
    python -m repro.analysis lint [paths ...] [--json]
    python -m repro.analysis monitor fir --model str --cores 8
"""

from repro.analysis.lint import Finding, lint_paths, lint_source, render_findings
from repro.analysis.model_check import (BROKEN_TABLE_BUGS, CheckResult,
                                        Counterexample, HierarchyModel,
                                        ProtoState, TableModel,
                                        broken_table_model, check_protocol,
                                        cross_validate, run_full_check)
from repro.analysis.monitors import (CoherenceMonitor, DmaRaceMonitor,
                                     EventQueueMonitor, LocalStoreMonitor,
                                     MonitorSet, attach_monitors)
from repro.sim.kernel import InvariantViolation

__all__ = [
    "InvariantViolation",
    # lint
    "Finding",
    "lint_paths",
    "lint_source",
    "render_findings",
    # model checking
    "BROKEN_TABLE_BUGS",
    "CheckResult",
    "Counterexample",
    "HierarchyModel",
    "ProtoState",
    "TableModel",
    "broken_table_model",
    "check_protocol",
    "cross_validate",
    "run_full_check",
    # monitors
    "CoherenceMonitor",
    "DmaRaceMonitor",
    "EventQueueMonitor",
    "LocalStoreMonitor",
    "MonitorSet",
    "attach_monitors",
]
