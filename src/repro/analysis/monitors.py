"""Runtime invariant monitors — pluggable observers over a live simulation.

Every monitor checks one family of invariants after every relevant state
change and raises :class:`~repro.sim.kernel.InvariantViolation` (a typed
:class:`~repro.sim.kernel.SimulationError` that survives ``python -O``)
with cycle-stamped context as soon as a check fails:

* :class:`CoherenceMonitor` — the MESI single-writer/multiple-reader
  invariant over the touched line, after every demand load/store and
  every software flush/invalidate (coherent hierarchies only; the
  incoherent model violates SWMR *by design* between sync points).
* :class:`DmaRaceMonitor` — DMA-vs-cached-line overlap races in the
  streaming model: a DMA ``get`` overlapping a line some cache holds
  dirty reads stale memory; a DMA ``put`` overlapping any valid cached
  copy silently makes that copy stale.
* :class:`LocalStoreMonitor` — local-store discipline: the configured
  capacity budget (24 KB in the paper) is respected and every recorded
  access falls inside the currently allocated region (catching
  use-after-``reset`` and out-of-bounds offsets).
* :class:`EventQueueMonitor` — event-queue monotonicity: popped
  timestamps never decrease (wraps the live queue's ``pop``).

Monitors attach via the hook points the instrumented classes expose
(``hierarchy.register_observer``, ``DmaEngine.observer``,
``LocalStore.observer``) and are enabled for a whole run by the
``debug_invariants`` flag of :class:`~repro.config.MachineConfig`::

    config = MachineConfig(num_cores=8).with_model("str") \
        .with_debug_invariants()
    result = run_program(config, program)   # raises on the first violation

The cost is one Python call per state change, so leave the flag off for
performance experiments.
"""

from __future__ import annotations

from repro.mem.coherence import MesiState, check_global_invariant
from repro.sim.kernel import InvariantViolation


class CoherenceMonitor:
    """Checks the MESI global invariant on every observed line operation."""

    name = "coherence"

    def __init__(self) -> None:
        self.checks = 0

    def __call__(self, kind: str, core: int, line: int, now_fs: int,
                 hierarchy) -> None:
        self.checks += 1
        check_global_invariant(hierarchy.line_states(line),
                               now_fs=now_fs, line=line)


class DmaRaceMonitor:
    """Flags DMA transfers that overlap cached copies of the same lines.

    The streaming model's software contract (paper Section 3.3) is that
    DMA regions and cached regions are disjoint: the local store carries
    the streamed data while the small cache carries stack and globals.
    An overlap is exactly the data race streaming software must avoid by
    construction, so it is reported as an invariant violation:

    * ``get`` racing a **dirty** (M) cached line reads stale memory;
    * ``put`` racing **any valid** cached line leaves that cache stale.
    """

    name = "dma-race"

    def __init__(self, hierarchy) -> None:
        self.hierarchy = hierarchy
        self.checks = 0

    def _lines(self, engine, addr: int, nbytes: int, stride: int,
               block: int | None):
        shift = engine.line_bytes.bit_length() - 1
        for block_addr, block_size in engine._blocks(addr, nbytes, stride,
                                                     block):
            first = block_addr >> shift
            last = (block_addr + block_size - 1) >> shift
            yield from range(first, last + 1)

    def __call__(self, kind: str, engine, addr: int, nbytes: int,
                 stride: int, block: int | None, now_fs: int) -> None:
        self.checks += 1
        for line in self._lines(engine, addr, nbytes, stride, block):
            for core, l1 in enumerate(self.hierarchy.l1s):
                entry = l1.lookup(line)
                if entry is None:
                    continue
                racy = (entry.state is MesiState.MODIFIED
                        if kind == "get" else True)
                if racy:
                    raise InvariantViolation(
                        f"DMA {kind} by core {engine.core_id} overlaps a "
                        f"cached line",
                        now_fs=now_fs,
                        context={"line": line, "cached_by": core,
                                 "state": entry.state.name, "addr": addr,
                                 "nbytes": nbytes},
                    )


class LocalStoreMonitor:
    """Checks local-store capacity budget and access bounds."""

    name = "local-store"

    def __init__(self, budget_bytes: int) -> None:
        self.budget_bytes = budget_bytes
        self.checks = 0

    def __call__(self, kind: str, store, offset: int, num_bytes: int) -> None:
        self.checks += 1
        if store.capacity_bytes > self.budget_bytes:
            raise InvariantViolation(
                "local store exceeds the configured capacity budget",
                context={"capacity_bytes": store.capacity_bytes,
                         "budget_bytes": self.budget_bytes},
            )
        if store.allocated_bytes > self.budget_bytes:
            raise InvariantViolation(
                "local-store allocations exceed the capacity budget",
                context={"allocated_bytes": store.allocated_bytes,
                         "budget_bytes": self.budget_bytes},
            )
        if kind == "access" and offset + num_bytes > store.allocated_bytes:
            raise InvariantViolation(
                "local-store access outside the allocated region "
                "(use-after-reset or out-of-bounds offset)",
                context={"offset": offset, "num_bytes": num_bytes,
                         "allocated_bytes": store.allocated_bytes},
            )


class EventQueueMonitor:
    """Checks that popped event timestamps never go backwards."""

    name = "event-queue"

    def __init__(self, sim) -> None:
        self.sim = sim
        self.checks = 0
        self.last_fs = 0
        queue = sim.queue
        original_pop = queue.pop

        def checked_pop():
            time_fs, callback = original_pop()
            self.checks += 1
            if time_fs < self.last_fs:
                raise InvariantViolation(
                    "event queue popped a timestamp out of order",
                    now_fs=time_fs,
                    context={"previous_fs": self.last_fs},
                )
            self.last_fs = time_fs
            return time_fs, callback

        self._original_pop = original_pop
        self._checked_pop = checked_pop
        queue.pop = checked_pop  # type: ignore[method-assign]

    def detach(self) -> None:
        """Unwrap the queue's ``pop`` (only while ours is still on top)."""
        queue = self.sim.queue
        if queue.pop is self._checked_pop:
            queue.pop = self._original_pop  # type: ignore[method-assign]


class MonitorSet:
    """The monitors attached to one simulation, for stats and reporting."""

    def __init__(self) -> None:
        self.monitors: list = []
        self._detachers: list = []

    def add(self, monitor, detach=None) -> None:
        """Track ``monitor``; ``detach`` optionally undoes its attachment."""
        self.monitors.append(monitor)
        if detach is not None:
            self._detachers.append(detach)

    def detach(self) -> None:
        """Remove every monitor from its hook point (idempotent).

        The symmetric half of :func:`attach_monitors`: hierarchy
        observers are unregistered (restoring
        ``hierarchy.fastpath_safe``), DMA and local-store observers are
        cleared, and the event queue's wrapped ``pop`` is unwound.
        Without this, a monitor set detached between runs would leave
        ``hierarchy._observers`` populated and permanently pin the
        system to the slow path.
        """
        for undo in self._detachers:
            undo()
        self._detachers = []

    @property
    def total_checks(self) -> int:
        """Invariant checks performed across all monitors."""
        return sum(m.checks for m in self.monitors)

    def summary(self) -> str:
        parts = [f"{m.name}={m.checks}" for m in self.monitors]
        return f"invariant checks: {self.total_checks} ({', '.join(parts)})"


def attach_monitors(system) -> MonitorSet:
    """Attach every applicable monitor to a :class:`~repro.core.system.CmpSystem`.

    Called by ``CmpSystem.__init__`` when the config sets
    ``debug_invariants=True``; usable directly on a hand-built system in
    tests.  Returns the :class:`MonitorSet` for later inspection.
    """
    from repro.mem.hierarchy import (IncoherentCacheHierarchy,
                                     StreamingHierarchy)

    monitors = MonitorSet()
    hierarchy = system.hierarchy
    if not isinstance(hierarchy, IncoherentCacheHierarchy):
        coherence = CoherenceMonitor()
        hierarchy.register_observer(coherence)
        monitors.add(coherence,
                     detach=lambda: hierarchy.unregister_observer(coherence))
    if isinstance(hierarchy, StreamingHierarchy):
        dma_monitor = DmaRaceMonitor(hierarchy)
        for engine in hierarchy.dma_engines:
            engine.observer = dma_monitor

        def _clear_dma_observers():
            for engine in hierarchy.dma_engines:
                if engine.observer is dma_monitor:
                    engine.observer = None

        monitors.add(dma_monitor, detach=_clear_dma_observers)
        ls_monitor = LocalStoreMonitor(
            system.config.stream.local_store_bytes)
        for store in hierarchy.local_stores:
            store.observer = ls_monitor

        def _clear_ls_observers():
            for store in hierarchy.local_stores:
                if store.observer is ls_monitor:
                    store.observer = None

        monitors.add(ls_monitor, detach=_clear_ls_observers)
    queue_monitor = EventQueueMonitor(system.sim)
    monitors.add(queue_monitor, detach=queue_monitor.detach)
    return monitors
