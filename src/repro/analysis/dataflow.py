"""Static dataflow auditor over workload op streams.

The simulator's correctness contracts — coherent workloads must be free
of data races, streaming workloads must never overlap in-flight DMA with
the data it moves — are enforced dynamically by the runtime monitors
(:mod:`repro.analysis.monitors`), but only on the runs we happen to
execute.  This pass proves them *statically*: it walks every thread
generator of a bound :class:`~repro.workloads.base.Program` without a
simulator, extracts per-unit, per-epoch address footprints as merged
byte-interval sets, and reports:

* **CC hazards** — cross-unit write-write conflicts within one barrier
  epoch (a true race: MESI serializes the stores, so the dynamic
  monitors cannot see it, but the result is timing-dependent), plus
  read-write overlap and same-line false sharing as warnings;
* **STR hazards** — DMA transfers overlapping cached footprints
  (mirroring :class:`~repro.analysis.monitors.DmaRaceMonitor`),
  concurrent put-put overlap, waits on tags that never issued, DMA left
  in flight at a barrier or thread end, and local-store out-of-bounds /
  use-after-reset / capacity violations (mirroring
  :class:`~repro.analysis.monitors.LocalStoreMonitor`);
* **Block eligibility** — a proof per replayed
  :class:`~repro.core.ops.OpBlock` template (arithmetic-only,
  line-aligned replay stride, footprint fits in L1, no cross-iteration
  self-conflict), plus *candidate* loops: periodic raw-op runs that
  could use :func:`repro.core.ops.block` closed-form replay but do not —
  the work-list for the vectorized phase engine.

Concurrency model: a *unit* is either a core's top-level code or one
task popped from a :class:`~repro.core.sync.TaskQueue` (tasks may land
on any core, so two tasks are potentially concurrent even when one
walker happens to execute both).  Accesses of different units in the
same barrier *epoch* are potentially concurrent unless their lock sets
intersect.  All shipped barriers are full-width, so epochs advance in
lockstep at each barrier release.

Known limitation (by design): DMA ops carry no local-store offset, so
hazards that depend on *which* local-store buffer a transfer fills
(e.g. overwriting a buffer while a put of it is still in flight) are
not statically expressible; the dynamic monitors remain authoritative
there.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from collections.abc import Callable, Iterable
from dataclasses import asdict, dataclass
from typing import Any

from repro.config import MachineConfig, MemoryModel
from repro.core.ops import (
    OP_BARRIER,
    OP_BLOCK,
    OP_BULK_PREFETCH,
    OP_CACHE_FLUSH,
    OP_CACHE_INVALIDATE,
    OP_COMPUTE,
    OP_DMA_GET,
    OP_DMA_PUT,
    OP_DMA_WAIT,
    OP_ICACHE_MISS,
    OP_LOAD,
    OP_LOCAL_LOAD,
    OP_LOCAL_STORE,
    OP_LOCK,
    OP_PFS,
    OP_PHASE,
    OP_STORE,
    OP_STREAM,
    OP_TASK_POP,
    OP_UNLOCK,
    OpBlock,
    OpPhase,
    OpStream,
    merge_intervals,
)
from repro.workloads import get_workload
from repro.workloads.base import Program

HAZARD = "hazard"
WARNING = "warning"

#: Walk budget across all threads of one audit; tiny presets use a tiny
#: fraction of this.  Exceeding it truncates the walk with a warning.
MAX_WALK_OPS = 2_000_000

#: Longest raw-op loop body the candidate detector considers.
MAX_PERIOD = 64

#: Raw ops traced per un-broken segment for candidate detection.
MAX_TRACE_SEGMENT = 50_000

#: Comparison budget for periodic-run detection, per walk.
MAX_PERIOD_COMPARISONS = 4_000_000

Interval = tuple[int, int]


def _intersect(a: Iterable[Interval], b: Iterable[Interval]) -> list[Interval]:
    """Intersection of two sorted-disjoint interval lists."""
    out: list[Interval] = []
    ai, bi = list(a), list(b)
    i = j = 0
    while i < len(ai) and j < len(bi):
        lo = max(ai[i][0], bi[j][0])
        hi = min(ai[i][1], bi[j][1])
        if lo < hi:
            out.append((lo, hi))
        if ai[i][1] <= bi[j][1]:
            i += 1
        else:
            j += 1
    return out


def _to_lines(intervals: Iterable[Interval], line_bytes: int) -> tuple:
    """Byte intervals -> merged intervals of cache-line numbers."""
    return merge_intervals(
        [(s // line_bytes, (e - 1) // line_bytes + 1) for s, e in intervals])


@dataclass(frozen=True)
class Diagnostic:
    """One auditor finding: a hazard (must-fix) or a warning."""

    severity: str
    kind: str
    message: str
    unit_a: str = ""
    unit_b: str = ""
    epoch: int = -1

    def render(self) -> str:
        where = ""
        if self.unit_a:
            where = f" [{self.unit_a}"
            if self.unit_b:
                where += f" vs {self.unit_b}"
            if self.epoch >= 0:
                where += f", epoch {self.epoch}"
            where += "]"
        return f"{self.severity.upper()} {self.kind}: {self.message}{where}"


@dataclass(frozen=True)
class BlockProof:
    """Eligibility proof for one replayed OpBlock template."""

    name: str
    replays: int
    strides: tuple
    arith_only: bool
    line_aligned: bool
    fits_l1: bool
    self_conflict: bool

    @property
    def eligible(self) -> bool:
        return (self.arith_only and self.line_aligned and self.fits_l1
                and not self.self_conflict)

    def render(self) -> str:
        verdict = "eligible" if self.eligible else "NOT eligible"
        why = []
        if not self.arith_only:
            why.append("non-arith ops")
        if not self.line_aligned:
            why.append("unaligned stride")
        if not self.fits_l1:
            why.append("exceeds L1")
        if self.self_conflict:
            why.append("self-conflict")
        tail = f" ({', '.join(why)})" if why else ""
        strides = ",".join(str(s) for s in self.strides) or "-"
        return (f"block {self.name!r}: {self.replays} replays, "
                f"stride {strides}: {verdict}{tail}")


@dataclass(frozen=True)
class PhaseProof:
    """Eligibility verdict for one dispatched OpPhase descriptor.

    ``eligible`` mirrors the processor's *wholesale* phase gates (the
    slice-invariant conditions under which the phase engine will even
    attempt the closed form): arithmetic lanes with nonzero cost,
    line-aligned bases and strides, and a local-store footprint inside
    the capacity budget.  L1 residency is inherently dynamic — the
    engine verifies it per iteration and spills exactly the misses — so
    ``fits_l1`` is reported as a predictor, not a gate.
    """

    name: str
    lanes: int
    dispatches: int
    iterations: int
    arith_only: bool
    line_aligned: bool
    ls_fits: bool
    fits_l1: bool
    all_static: bool

    @property
    def eligible(self) -> bool:
        return self.arith_only and self.line_aligned and self.ls_fits

    def render(self) -> str:
        verdict = "eligible" if self.eligible else "NOT eligible"
        why = []
        if not self.arith_only:
            why.append("non-arith or zero-cost lanes")
        if not self.line_aligned:
            why.append("unaligned base/stride")
        if not self.ls_fits:
            why.append("exceeds local store")
        tail = f" ({', '.join(why)})" if why else ""
        shape = "static" if self.all_static else "strided"
        resident = "resident-sized" if self.fits_l1 else "exceeds L1"
        return (f"phase {self.name!r}: {self.lanes} lane(s) x "
                f"{self.iterations} iteration(s) over "
                f"{self.dispatches} dispatch(es), {shape}, {resident}: "
                f"{verdict}{tail}")


@dataclass(frozen=True)
class StreamProof:
    """Eligibility verdict for one dispatched OpStream descriptor.

    The ``stream()`` factory already validates shape at construction
    (table coverage, positive DMA ranges, kernel tables of OpBlocks),
    so a dispatched descriptor is structurally sound; what remains to
    prove is what lets the stream arm's renewal calculus retire whole
    double-buffer iterations cheaply: every kernel lane closes in
    arithmetic form (``arith_cycles`` precomputed) and every
    local-store touch fits the capacity budget.  An ineligible stream
    still runs bit-identically — the arm just spills the offending
    kernels op by op.
    """

    name: str
    steps: int
    dispatches: int
    iterations: int
    dma_steps: int
    kernels_arith: bool
    ls_fits: bool

    @property
    def eligible(self) -> bool:
        return self.kernels_arith and self.ls_fits

    def render(self) -> str:
        verdict = "eligible" if self.eligible else "NOT eligible"
        why = []
        if not self.kernels_arith:
            why.append("non-arith kernel lanes")
        if not self.ls_fits:
            why.append("exceeds local store")
        tail = f" ({', '.join(why)})" if why else ""
        return (f"stream {self.name!r}: {self.steps} step(s) x "
                f"{self.iterations} iteration(s) over "
                f"{self.dispatches} dispatch(es), {self.dma_steps} DMA "
                f"rim step(s): {verdict}{tail}")


@dataclass(frozen=True)
class LoopCandidate:
    """A raw-op loop that could be converted to OpBlock replay."""

    body_ops: int
    reps: int
    loops: int
    delta: int
    opcodes: str
    region: str
    mem_positions: int
    eligible_positions: int

    def render(self) -> str:
        return (f"candidate loop over {self.region}: body [{self.opcodes}], "
                f"{self.reps} reps x {self.loops} occurrence(s), "
                f"delta {self.delta} "
                f"({self.eligible_positions}/{self.mem_positions} mem ops "
                "convertible)")


@dataclass
class AuditReport:
    """Everything one audit of one (workload, model, cores) produced."""

    workload: str
    model: str
    cores: int
    preset: str
    diagnostics: list[Diagnostic]
    blocks: list[BlockProof]
    phases: list[PhaseProof]
    streams: list[StreamProof]
    candidates: list[LoopCandidate]
    ops_walked: int
    truncated: bool

    @property
    def hazards(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == HAZARD]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def converted(self) -> bool:
        """True when the program already replays OpBlock templates."""
        return bool(self.blocks)

    @property
    def phased(self) -> bool:
        """True when the program dispatches at least one eligible phase."""
        return any(p.eligible for p in self.phases)

    @property
    def streamed(self) -> bool:
        """True when the program dispatches at least one eligible stream."""
        return any(s.eligible for s in self.streams)

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "model": self.model,
            "cores": self.cores,
            "preset": self.preset,
            "hazards": [asdict(d) for d in self.hazards],
            "warnings": [asdict(d) for d in self.warnings],
            "blocks": [dict(asdict(b), eligible=b.eligible)
                       for b in self.blocks],
            "phases": [dict(asdict(p), eligible=p.eligible)
                       for p in self.phases],
            "streams": [dict(asdict(s), eligible=s.eligible)
                        for s in self.streams],
            "candidates": [asdict(c) for c in self.candidates],
            "converted": self.converted,
            "phased": self.phased,
            "streamed": self.streamed,
            "ops_walked": self.ops_walked,
            "truncated": self.truncated,
        }

    def render(self, max_warnings: int = 10) -> str:
        lines = [
            f"{self.workload}/{self.model} cores={self.cores} "
            f"preset={self.preset}: {len(self.hazards)} hazard(s), "
            f"{len(self.warnings)} warning(s), {len(self.blocks)} block "
            f"template(s), {len(self.phases)} phase descriptor(s), "
            f"{len(self.streams)} stream descriptor(s), "
            f"{len(self.candidates)} candidate loop(s) "
            f"[{self.ops_walked} ops walked]"
        ]
        for d in self.hazards:
            lines.append("  " + d.render())
        for d in self.warnings[:max_warnings]:
            lines.append("  " + d.render())
        hidden = len(self.warnings) - max_warnings
        if hidden > 0:
            lines.append(f"  ... {hidden} more warning(s)")
        for b in self.blocks:
            lines.append("  " + b.render())
        for p in self.phases:
            lines.append("  " + p.render())
        for s in self.streams:
            lines.append("  " + s.render())
        for c in self.candidates:
            lines.append("  " + c.render())
        if self.truncated:
            lines.append("  (walk truncated at op budget; results partial)")
        return "\n".join(lines)


class AuditLocalStore:
    """A local store stand-in that records violations instead of raising.

    Implements the allocation surface thread factories use
    (:meth:`alloc`, :meth:`reset`, :attr:`allocated_bytes`) and adds
    :meth:`check` for the walker's ``lsld``/``lsst`` accesses, applying
    the same rules as :class:`~repro.analysis.monitors.LocalStoreMonitor`
    (capacity budget, single-allocation containment, use-after-reset) —
    but it keeps walking after a violation so one audit surfaces them
    all.
    """

    def __init__(self, core_id: int, capacity_bytes: int,
                 sink: Callable[[Diagnostic], None]) -> None:
        self.core_id = core_id
        self.capacity_bytes = capacity_bytes
        self._sink = sink
        self._brk = 0
        self._live: list[tuple[int, int, str]] = []
        self._dead: list[tuple[int, int, str]] = []

    @property
    def allocated_bytes(self) -> int:
        return self._brk

    def alloc(self, num_bytes: int, name: str = "buffer") -> int:
        offset = self._brk
        if num_bytes <= 0:
            self._sink(Diagnostic(
                HAZARD, "ls-bad-alloc",
                f"core {self.core_id}: local-store allocation {name!r} of "
                f"{num_bytes} bytes", unit_a=f"core{self.core_id}"))
            return offset
        if offset + num_bytes > self.capacity_bytes:
            self._sink(Diagnostic(
                HAZARD, "ls-over-capacity",
                f"core {self.core_id}: allocating {name!r} ({num_bytes} B) "
                f"at offset {offset} exceeds the local-store capacity "
                f"budget of {self.capacity_bytes} B",
                unit_a=f"core{self.core_id}"))
        self._brk = offset + num_bytes
        self._live.append((offset, offset + num_bytes, name))
        return offset

    def reset(self) -> None:
        self._dead.extend(self._live)
        self._live = []
        self._brk = 0

    def check(self, offset: int, nbytes: int, unit: str) -> None:
        end = offset + nbytes
        for start, stop, _name in self._live:
            if start <= offset and end <= stop:
                return
        for start, stop, name in self._live:
            if offset < stop and start < end:
                self._sink(Diagnostic(
                    HAZARD, "ls-out-of-bounds",
                    f"core {self.core_id}: local-store access "
                    f"[{offset}, {end}) straddles the boundary of "
                    f"allocation {name!r} [{start}, {stop})", unit_a=unit))
                return
        for start, stop, name in self._dead:
            if offset < stop and start < end:
                self._sink(Diagnostic(
                    HAZARD, "ls-use-after-reset",
                    f"core {self.core_id}: local-store access "
                    f"[{offset}, {end}) hits allocation {name!r} "
                    "freed by reset()", unit_a=unit))
                return
        self._sink(Diagnostic(
            HAZARD, "ls-out-of-bounds",
            f"core {self.core_id}: local-store access [{offset}, {end}) "
            "is outside every allocated region", unit_a=unit))


class _Walker:
    """Per-thread symbolic execution state."""

    __slots__ = ("core", "gen", "epoch", "unit", "locks", "issued",
                 "outstanding", "barrier", "done", "send", "trace",
                 "trace_truncated")

    def __init__(self, core: int, gen: Any) -> None:
        self.core = core
        self.gen = gen
        self.epoch = 0
        self.unit: tuple = ("core", core)
        self.locks: set[int] = set()
        self.issued: set[int] = set()
        self.outstanding: dict[int, int] = {}
        self.barrier: Any = None
        self.done = False
        self.send: Any = None
        self.trace: list[tuple] = []
        self.trace_truncated = False


class _ProgramAuditor:
    """Walks one bound program and accumulates footprints and findings."""

    def __init__(self, program: Program, config: MachineConfig,
                 workload: str, preset: str) -> None:
        self.program = program
        self.config = config
        self.workload = workload
        self.preset = preset
        self.model = config.model
        self.line_bytes = config.line_bytes
        self.streaming = config.model is MemoryModel.STREAMING
        self.diagnostics: list[Diagnostic] = []
        self._diag_keys: set[tuple] = set()
        # (unit, epoch, lockset) -> [read intervals, write intervals]
        self.buckets: dict[tuple, list[list[Interval]]] = {}
        # (unit, epoch) -> list of (kind, interval tuple, tag)
        self.dma: dict[tuple, list[tuple]] = {}
        self.cached_reads: list[Interval] = []
        self.cached_writes: list[Interval] = []
        self.block_stats: dict[int, dict] = {}
        self.phase_stats: dict[int, dict] = {}
        self.stream_stats: dict[int, dict] = {}
        self.segments: list[tuple[str, list[tuple]]] = []
        self.pop_seq: dict[int, int] = {}
        self.unit_labels: dict[tuple, str] = {}
        self.ops_walked = 0
        self.truncated = False
        self._tracing = True
        self.stores: list[AuditLocalStore] | None = None
        if self.streaming:
            self.stores = [
                AuditLocalStore(core, config.stream.local_store_bytes,
                                self._sink)
                for core in range(config.num_cores)
            ]
        regions = sorted(
            (base, base + size, name)
            for name, (base, size) in program.arena.regions.items())
        self._region_starts = [r[0] for r in regions]
        self._regions = regions

    # -- reporting -----------------------------------------------------

    def _sink(self, diag: Diagnostic) -> None:
        key = (diag.kind, diag.unit_a, diag.unit_b, diag.epoch)
        if key in self._diag_keys:
            return
        self._diag_keys.add(key)
        self.diagnostics.append(diag)

    def _region_of(self, addr: int) -> str:
        i = bisect_right(self._region_starts, addr) - 1
        if i >= 0:
            base, end, name = self._regions[i]
            if addr < end:
                return f"{name}+{addr - base:#x}"
        return f"{addr:#x}"

    def _label(self, unit: tuple) -> str:
        label = self.unit_labels.get(unit)
        if label is None:
            label = f"core{unit[1]}" if unit[0] == "core" else repr(unit)
            self.unit_labels[unit] = label
        return label

    # -- the walk ------------------------------------------------------

    def run(self) -> None:
        gens = self.program.introspect_threads(self.config, self.stores)
        walkers = [_Walker(i, g) for i, g in enumerate(gens)]
        while not all(w.done for w in walkers):
            for w in walkers:
                if not w.done and w.barrier is None:
                    self._advance(w)
            if self.truncated:
                break
            if not self._release_barriers(walkers):
                self._stall(walkers)
        for w in walkers:
            self._flush_trace(w)
        self._analyze_conflicts()
        self._analyze_dma()

    def _release_barriers(self, walkers: list[_Walker]) -> bool:
        blocked: dict[int, list[_Walker]] = {}
        barriers: dict[int, Any] = {}
        for w in walkers:
            if w.barrier is not None:
                blocked.setdefault(id(w.barrier), []).append(w)
                barriers[id(w.barrier)] = w.barrier
        released = False
        for key, group in blocked.items():
            if len(group) >= barriers[key].parties:
                for w in group:
                    w.barrier = None
                    w.epoch += 1
                released = True
        return released

    def _stall(self, walkers: list[_Walker]) -> None:
        stuck = [w for w in walkers if w.barrier is not None]
        if not stuck:
            return
        names = sorted({getattr(w.barrier, "name", "?") for w in stuck})
        self._sink(Diagnostic(
            HAZARD, "barrier-stall",
            f"barrier(s) {', '.join(names)} can never complete: "
            f"{len(stuck)} thread(s) wait but the remaining threads "
            "finished without arriving"))
        for w in stuck:  # force-release so the walk can finish
            w.barrier = None
            w.epoch += 1

    def _advance(self, w: _Walker) -> None:
        while True:
            if self.ops_walked >= MAX_WALK_OPS:
                self._mark_truncated()
                return
            try:
                op = w.gen.send(w.send)
            except StopIteration:
                w.done = True
                self._thread_end(w)
                return
            except Exception as exc:  # surface, don't crash the audit
                w.done = True
                self._sink(Diagnostic(
                    HAZARD, "walk-error",
                    f"core {w.core}: thread raised "
                    f"{type(exc).__name__}: {exc}",
                    unit_a=self._label(w.unit)))
                return
            w.send = None
            if not self._dispatch(w, op):
                return

    def _mark_truncated(self) -> None:
        if not self.truncated:
            self.truncated = True
            self._sink(Diagnostic(
                WARNING, "walk-truncated",
                f"walk stopped after {MAX_WALK_OPS} ops; "
                "audit results are partial"))

    def _thread_end(self, w: _Walker) -> None:
        self._check_outstanding(w, "thread end")
        self._flush_trace(w)

    def _check_outstanding(self, w: _Walker, where: str) -> None:
        for tag, count in w.outstanding.items():
            if count > 0:
                self._sink(Diagnostic(
                    HAZARD, "dma-outstanding",
                    f"core {w.core}: {count} DMA command(s) under tag "
                    f"{tag} still in flight at {where} — data may not "
                    "have arrived", unit_a=self._label(w.unit)))

    # -- op dispatch ---------------------------------------------------

    def _dispatch(self, w: _Walker, op: tuple) -> bool:
        """Interpret one op; returns False when the walker suspends."""
        self.ops_walked += 1
        kind = op[0]
        if kind == OP_COMPUTE:
            self._trace(w, (kind, None, None))
        elif kind in (OP_LOAD, OP_BULK_PREFETCH):
            self._record(w, False, op[1], op[2])
            self._trace(w, (OP_LOAD, op[1], op[2]))
        elif kind in (OP_STORE, OP_PFS):
            self._record(w, True, op[1], op[2])
            self._trace(w, (OP_STORE, op[1], op[2]))
        elif kind in (OP_LOCAL_LOAD, OP_LOCAL_STORE):
            self._local(w, op[1], op[2])
            self._trace(w, (kind, op[1], op[2]))
        elif kind == OP_BLOCK:
            self._flush_trace(w)
            self._replay_block(w, op[1], op[2])
        elif kind == OP_PHASE:
            self._flush_trace(w)
            self._replay_phase(w, op[1])
        elif kind == OP_STREAM:
            self._flush_trace(w)
            self._replay_stream(w, op[1])
        elif kind in (OP_DMA_GET, OP_DMA_PUT):
            self._flush_trace(w)
            self._dma_command(w, kind, op[1], op[2], op[3], op[4], op[5])
        elif kind == OP_DMA_WAIT:
            self._flush_trace(w)
            tag = op[1]
            if tag not in w.issued:
                self._sink(Diagnostic(
                    HAZARD, "dma-wait-unissued",
                    f"core {w.core}: dwait on tag {tag} which never "
                    "issued a DMA command", unit_a=self._label(w.unit)))
            else:
                w.outstanding[tag] = 0
        elif kind == OP_BARRIER:
            self._flush_trace(w)
            self._check_outstanding(w, f"barrier "
                                       f"{getattr(op[1], 'name', '?')!r}")
            w.unit = ("core", w.core)
            w.barrier = op[1]
            return False
        elif kind == OP_LOCK:
            self._flush_trace(w)
            w.locks.add(id(op[1]))
        elif kind == OP_UNLOCK:
            self._flush_trace(w)
            if id(op[1]) not in w.locks:
                self._sink(Diagnostic(
                    HAZARD, "lock-discipline",
                    f"core {w.core}: releases lock "
                    f"{getattr(op[1], 'name', '?')!r} it does not hold",
                    unit_a=self._label(w.unit)))
            else:
                w.locks.discard(id(op[1]))
        elif kind == OP_TASK_POP:
            self._flush_trace(w)
            queue = op[1]
            item, _done = queue.pop(0, 0)
            if item is None:
                w.unit = ("core", w.core)
            else:
                seq = self.pop_seq.get(id(queue), 0)
                self.pop_seq[id(queue)] = seq + 1
                w.unit = ("task", id(queue), seq)
                self.unit_labels[w.unit] = f"{queue.name}[{seq}]"
            w.send = item
        elif kind in (OP_CACHE_FLUSH, OP_CACHE_INVALIDATE, OP_ICACHE_MISS):
            self._flush_trace(w)
        else:
            self._sink(Diagnostic(
                WARNING, "unknown-op",
                f"core {w.core}: unknown opcode {kind!r} skipped",
                unit_a=self._label(w.unit)))
        return True

    def _record(self, w: _Walker, is_write: bool,
                addr: int, nbytes: int) -> None:
        key = (w.unit, w.epoch, frozenset(w.locks))
        bucket = self.buckets.get(key)
        if bucket is None:
            bucket = self.buckets[key] = [[], []]
        bucket[1 if is_write else 0].append((addr, addr + nbytes))
        if self.streaming:
            side = self.cached_writes if is_write else self.cached_reads
            side.append((addr, addr + nbytes))

    def _local(self, w: _Walker, offset: int, nbytes: int) -> None:
        if self.stores is None:
            self._sink(Diagnostic(
                HAZARD, "ls-no-store",
                f"core {w.core}: local-store op in a mapping "
                "with no local stores", unit_a=self._label(w.unit)))
            return
        self.stores[w.core].check(offset, nbytes, self._label(w.unit))

    def _replay_block(self, w: _Walker, blk: OpBlock, delta: int) -> None:
        stats = self.block_stats.get(id(blk))
        if stats is None:
            stats = self.block_stats[id(blk)] = {
                "blk": blk, "replays": 0, "strides": set(), "last": {},
            }
        stats["replays"] += 1
        last = stats["last"].get(w.core)
        if last is not None:
            stride = delta - last[0]
            # Only strides seen on consecutive replay pairs count as
            # loop strides; a one-off jump (e.g. wrapping to the next
            # pass of a sort) is not an iteration stride.
            if stride == last[1]:
                stats["strides"].add(stride)
            stats["last"][w.core] = (delta, stride)
        else:
            stats["last"][w.core] = (delta, None)
        fp = blk.footprint()
        if fp.arith_only:
            self.ops_walked += len(blk.ops)
            for s, e in fp.reads:
                self._record(w, False, s + delta, e - s)
            for s, e in fp.writes:
                self._record(w, True, s + delta, e - s)
            for s, e in fp.ls_reads:
                self._local(w, s, e - s)
            for s, e in fp.ls_writes:
                self._local(w, s, e - s)
            return
        # DMA/prefetch-bearing blocks fall back to their op stream.
        self._tracing = False
        try:
            for mop in blk.materialize(delta):
                self._dispatch(w, mop)
        finally:
            self._tracing = True

    def _replay_phase(self, w: _Walker, ph: OpPhase) -> None:
        """Walk a phase as the block replays it stands for.

        The phase's semantics *are* its per-iteration block replays
        (iteration-major, lane-minor), so routing every replay through
        :meth:`_replay_block` keeps the conflict analysis, footprints,
        and block proofs identical to the unconverted loop while the
        phase descriptor itself gets a separate eligibility verdict.
        """
        stats = self.phase_stats.get(id(ph))
        if stats is None:
            stats = self.phase_stats[id(ph)] = {"ph": ph, "dispatches": 0,
                                                "iterations": 0}
        stats["dispatches"] += 1
        stats["iterations"] += ph.count
        lanes = ph.lanes
        for k in range(ph.count):
            if self.ops_walked >= MAX_WALK_OPS:
                self._mark_truncated()
                return
            for blk, base, stride in lanes:
                self._replay_block(w, blk, base + k * stride)

    def _replay_stream(self, w: _Walker, st: OpStream) -> None:
        """Walk a stream as the materialized op run it stands for.

        :meth:`OpStream.materialize` is the stream's ground truth, so
        routing its chunks back through :meth:`_dispatch` keeps DMA
        hazard tracking, tag accounting, and kernel block proofs
        identical to the unconverted loop while the stream descriptor
        itself gets a separate eligibility verdict.
        """
        stats = self.stream_stats.get(id(st))
        if stats is None:
            stats = self.stream_stats[id(st)] = {"st": st, "dispatches": 0,
                                                 "iterations": 0}
        stats["dispatches"] += 1
        stats["iterations"] += st.count
        k = 0
        while k < st.count:
            if self.ops_walked >= MAX_WALK_OPS:
                self._mark_truncated()
                return
            hi = min(k + 256, st.count)
            for mop in st.materialize(k, hi):
                self._dispatch(w, mop)
            k = hi

    def _dma_command(self, w: _Walker, kind: str, tag: int, addr: int,
                     nbytes: int, stride: int, block: int | None) -> None:
        if stride == 0:
            pieces = [(addr, addr + nbytes)]
        elif block is None or block <= 0 or abs(stride) < block:
            self._sink(Diagnostic(
                HAZARD, "dma-bad-shape",
                f"core {w.core}: strided DMA with stride={stride} "
                f"block={block}", unit_a=self._label(w.unit)))
            pieces = [(addr, addr + nbytes)]
        else:
            pieces = []
            offset, position = 0, addr
            while offset < nbytes:
                size = min(block, nbytes - offset)
                pieces.append((position, position + size))
                position += stride
                offset += size
        intervals = merge_intervals(pieces)
        self.dma.setdefault((w.unit, w.epoch), []).append((kind, intervals))
        w.issued.add(tag)
        w.outstanding[tag] = w.outstanding.get(tag, 0) + 1

    # -- raw-op tracing for candidate detection ------------------------

    def _trace(self, w: _Walker, entry: tuple) -> None:
        if not self._tracing:
            return
        if len(w.trace) < MAX_TRACE_SEGMENT:
            w.trace.append(entry)
        else:
            w.trace_truncated = True

    def _flush_trace(self, w: _Walker) -> None:
        if len(w.trace) >= 3:
            self.segments.append((self._label(w.unit), w.trace))
        w.trace = []

    # -- post-walk analyses --------------------------------------------

    def _bucket_rows(self) -> dict[int, list[tuple]]:
        by_epoch: dict[int, list[tuple]] = {}
        for (unit, epoch, locks), (reads, writes) in self.buckets.items():
            by_epoch.setdefault(epoch, []).append(
                (unit, locks, merge_intervals(reads),
                 merge_intervals(writes)))
        return by_epoch

    def _analyze_conflicts(self) -> None:
        if self.config.num_cores < 2:
            return
        for epoch, rows in self._bucket_rows().items():
            for i in range(len(rows)):
                unit_a, locks_a, reads_a, writes_a = rows[i]
                for j in range(i + 1, len(rows)):
                    unit_b, locks_b, reads_b, writes_b = rows[j]
                    if unit_a == unit_b or (locks_a & locks_b):
                        continue
                    self._check_pair(epoch, unit_a, reads_a, writes_a,
                                     unit_b, reads_b, writes_b)

    def _check_pair(self, epoch: int, unit_a: tuple, reads_a: tuple,
                    writes_a: tuple, unit_b: tuple, reads_b: tuple,
                    writes_b: tuple) -> None:
        la, lb = self._label(unit_a), self._label(unit_b)
        ww = _intersect(writes_a, writes_b)
        if ww:
            lo, hi = ww[0]
            self._sink(Diagnostic(
                HAZARD, "ww-conflict",
                f"concurrent writes overlap on {hi - lo} byte(s) at "
                f"{self._region_of(lo)} ({len(ww)} range(s))",
                unit_a=la, unit_b=lb, epoch=epoch))
            return
        rw = _intersect(reads_a, writes_b) + _intersect(writes_a, reads_b)
        if rw:
            lo, hi = rw[0]
            self._sink(Diagnostic(
                WARNING, "rw-overlap",
                f"concurrent read and write overlap on {hi - lo} byte(s) "
                f"at {self._region_of(lo)} ({len(rw)} range(s)); ordering "
                "is timing-dependent (chaotic-relaxation style sharing)",
                unit_a=la, unit_b=lb, epoch=epoch))
            return
        lines_wa = _to_lines(writes_a, self.line_bytes)
        lines_wb = _to_lines(writes_b, self.line_bytes)
        touch_a = _to_lines(list(reads_a) + list(writes_a), self.line_bytes)
        touch_b = _to_lines(list(reads_b) + list(writes_b), self.line_bytes)
        shared = _intersect(lines_wa, touch_b) + _intersect(lines_wb, touch_a)
        if shared:
            line = shared[0][0]
            self._sink(Diagnostic(
                WARNING, "false-sharing",
                f"disjoint bytes share cache line(s) starting at line "
                f"{line} ({self._region_of(line * self.line_bytes)}); "
                "coherence will ping-pong the line",
                unit_a=la, unit_b=lb, epoch=epoch))

    def _analyze_dma(self) -> None:
        if not self.dma:
            return
        if self.config.num_cores >= 2:
            by_epoch: dict[int, list[tuple]] = {}
            for (unit, epoch), commands in self.dma.items():
                gets = merge_intervals(
                    [iv for kind, ivs in commands
                     for iv in ivs if kind == OP_DMA_GET])
                puts = merge_intervals(
                    [iv for kind, ivs in commands
                     for iv in ivs if kind == OP_DMA_PUT])
                by_epoch.setdefault(epoch, []).append((unit, gets, puts))
            for epoch, rows in by_epoch.items():
                for i in range(len(rows)):
                    unit_a, gets_a, puts_a = rows[i]
                    for j in range(i + 1, len(rows)):
                        unit_b, gets_b, puts_b = rows[j]
                        self._check_dma_pair(epoch, unit_a, gets_a, puts_a,
                                             unit_b, gets_b, puts_b)
        # DMA vs cached footprints, mirroring DmaRaceMonitor: a get over
        # a dirty (written) cached line reads stale memory; a put over
        # any cached copy makes that cache stale.
        all_gets = merge_intervals(
            [iv for commands in self.dma.values()
             for kind, ivs in commands for iv in ivs if kind == OP_DMA_GET])
        all_puts = merge_intervals(
            [iv for commands in self.dma.values()
             for kind, ivs in commands for iv in ivs if kind == OP_DMA_PUT])
        cached_w = _to_lines(merge_intervals(self.cached_writes),
                             self.line_bytes)
        cached_any = _to_lines(
            merge_intervals(self.cached_reads + self.cached_writes),
            self.line_bytes)
        hit = _intersect(_to_lines(all_gets, self.line_bytes), cached_w)
        if hit:
            line = hit[0][0]
            self._sink(Diagnostic(
                HAZARD, "dma-get-cached",
                f"DMA get overlaps cached written line {line} "
                f"({self._region_of(line * self.line_bytes)}); the get "
                "reads stale memory"))
        hit = _intersect(_to_lines(all_puts, self.line_bytes), cached_any)
        if hit:
            line = hit[0][0]
            self._sink(Diagnostic(
                HAZARD, "dma-put-cached",
                f"DMA put overlaps cached line {line} "
                f"({self._region_of(line * self.line_bytes)}); the cached "
                "copy goes stale"))

    def _check_dma_pair(self, epoch: int, unit_a: tuple, gets_a: tuple,
                        puts_a: tuple, unit_b: tuple, gets_b: tuple,
                        puts_b: tuple) -> None:
        la, lb = self._label(unit_a), self._label(unit_b)
        pp = _intersect(puts_a, puts_b)
        if pp:
            lo, hi = pp[0]
            self._sink(Diagnostic(
                HAZARD, "dma-put-put",
                f"concurrent DMA puts overlap on {hi - lo} byte(s) at "
                f"{self._region_of(lo)}; final memory contents are "
                "timing-dependent", unit_a=la, unit_b=lb, epoch=epoch))
            return
        gp = _intersect(gets_a, puts_b) + _intersect(gets_b, puts_a)
        if gp:
            lo, hi = gp[0]
            self._sink(Diagnostic(
                WARNING, "dma-get-put",
                f"concurrent DMA get and put overlap on {hi - lo} byte(s) "
                f"at {self._region_of(lo)}; the get may observe either "
                "generation of the data",
                unit_a=la, unit_b=lb, epoch=epoch))

    # -- block eligibility ---------------------------------------------

    def _l1_capacity(self) -> int:
        if self.streaming:
            return self.config.stream_l1.capacity_bytes
        return self.config.l1.capacity_bytes

    def block_proofs(self) -> list[BlockProof]:
        proofs = []
        for stats in self.block_stats.values():
            blk: OpBlock = stats["blk"]
            fp = blk.footprint()
            strides = tuple(sorted(stats["strides"]))
            line_aligned = all(s % self.line_bytes == 0 for s in strides)
            if fp.reads or fp.writes:
                fits = (fp.line_bytes_touched(self.line_bytes)
                        <= self._l1_capacity())
            else:
                fits = True  # local-store-only block
            conflict = any(fp.self_conflict(s) for s in strides if s)
            proof = BlockProof(
                name=blk.name or "anonymous",
                replays=stats["replays"],
                strides=strides,
                arith_only=fp.arith_only,
                line_aligned=line_aligned,
                fits_l1=fits,
                self_conflict=conflict,
            )
            proofs.append(proof)
            if not proof.eligible:
                self._sink(Diagnostic(
                    WARNING, "block-proof-failed",
                    f"replayed block {proof.name!r} fails its "
                    "eligibility proof: " + proof.render()))
        proofs.sort(key=lambda p: p.name)
        return proofs

    def phase_proofs(self) -> list[PhaseProof]:
        # Run-length coalescing (phase_runs) mints a fresh descriptor per
        # run, so same-shaped descriptors aggregate under one proof:
        # signature -> [dispatches, iterations].
        grouped: dict[tuple, list[int]] = {}
        line_bytes = self.line_bytes
        for stats in self.phase_stats.values():
            ph: OpPhase = stats["ph"]
            # One iteration's cache footprint: every lane's intervals
            # shifted to the first iteration's deltas, merged across
            # lanes (later iterations have the same shape).
            intervals = []
            ls_fits = True
            for blk, base, _stride in ph.lanes:
                fp = blk.footprint()
                for s, e in fp.reads:
                    intervals.append((s + base, e + base))
                for s, e in fp.writes:
                    intervals.append((s + base, e + base))
            if intervals:
                lines = _to_lines(merge_intervals(intervals), line_bytes)
                touched = sum(e - s for s, e in lines) * line_bytes
                fits = touched <= self._l1_capacity()
            else:
                fits = True
            if ph.has_local:
                capacity = (self.config.stream.local_store_bytes
                            if self.streaming else 0)
                ls_fits = ph.ls_max_end <= capacity
            key = (ph.name or "anonymous", len(ph.lanes),
                   ph.iter_cycles is not None,
                   ph.align_or % line_bytes == 0,
                   ls_fits, fits, ph.all_static)
            counts = grouped.setdefault(key, [0, 0])
            counts[0] += stats["dispatches"]
            counts[1] += stats["iterations"]
        proofs = []
        for key, (dispatches, iterations) in grouped.items():
            name, lanes, arith, aligned, ls_fits, fits, static = key
            proof = PhaseProof(
                name=name,
                lanes=lanes,
                dispatches=dispatches,
                iterations=iterations,
                arith_only=arith,
                line_aligned=aligned,
                ls_fits=ls_fits,
                fits_l1=fits,
                all_static=static,
            )
            proofs.append(proof)
            if not proof.eligible:
                self._sink(Diagnostic(
                    WARNING, "phase-proof-failed",
                    f"dispatched phase {proof.name!r} fails its "
                    "eligibility proof: " + proof.render()))
        proofs.sort(key=lambda p: (p.name, -p.iterations))
        return proofs

    def stream_proofs(self) -> list[StreamProof]:
        # Workloads mint one descriptor per (thread, vector) shape, so
        # same-shaped descriptors aggregate under one proof:
        # signature -> [dispatches, iterations].
        grouped: dict[tuple, list[int]] = {}
        capacity = (self.config.stream.local_store_bytes
                    if self.streaming else 0)
        for stats in self.stream_stats.values():
            st: OpStream = stats["st"]
            kernels_arith = True
            ls_fits = True
            dma_steps = 0
            for step in st.steps:
                kind = step[0]
                if kind == OP_BLOCK:
                    for blk in step[1][:st.count]:
                        if blk.arith_cycles is None:
                            kernels_arith = False
                        if blk.ls_max_end > capacity:
                            ls_fits = False
                elif kind == OP_LOCAL_STORE:
                    _, table, nbytes, _accesses = step
                    if any(off + nbytes > capacity
                           for off in table[:st.count]):
                        ls_fits = False
                elif kind in (OP_DMA_GET, OP_DMA_PUT):
                    dma_steps += 1
            key = (st.name or "anonymous", len(st.steps), dma_steps,
                   kernels_arith, ls_fits)
            counts = grouped.setdefault(key, [0, 0])
            counts[0] += stats["dispatches"]
            counts[1] += stats["iterations"]
        proofs = []
        for key, (dispatches, iterations) in grouped.items():
            name, steps, dma_steps, kernels_arith, ls_fits = key
            proof = StreamProof(
                name=name,
                steps=steps,
                dispatches=dispatches,
                iterations=iterations,
                dma_steps=dma_steps,
                kernels_arith=kernels_arith,
                ls_fits=ls_fits,
            )
            proofs.append(proof)
            if not proof.eligible:
                self._sink(Diagnostic(
                    WARNING, "stream-proof-failed",
                    f"dispatched stream {proof.name!r} fails its "
                    "eligibility proof: " + proof.render()))
        proofs.sort(key=lambda p: (p.name, -p.iterations))
        return proofs

    # -- candidate loops -----------------------------------------------

    def find_candidates(self) -> list[LoopCandidate]:
        budget = MAX_PERIOD_COMPARISONS
        found: dict[tuple, dict] = {}
        for _unit, seg in self.segments:
            budget = self._scan_segment(seg, found, budget)
            if budget <= 0:
                self._sink(Diagnostic(
                    WARNING, "candidate-scan-truncated",
                    "periodic-loop detection stopped at its comparison "
                    "budget; the candidate list may be incomplete"))
                break
        out = []
        for entry in found.values():
            out.append(LoopCandidate(
                body_ops=entry["period"],
                reps=entry["reps"],
                loops=entry["loops"],
                delta=entry["delta"],
                opcodes=entry["opcodes"],
                region=entry["region"],
                mem_positions=entry["mem"],
                eligible_positions=entry["eligible"],
            ))
        out.sort(key=lambda c: (c.region, c.body_ops))
        return out

    def _scan_segment(self, seg: list[tuple], found: dict[tuple, dict],
                      budget: int) -> int:
        n = len(seg)
        i = 0
        while i < n and budget > 0:
            hit = None
            max_p = min(MAX_PERIOD, (n - i) // 3)
            for period in range(1, max_p + 1):
                reps, deltas, budget = self._count_reps(seg, i, period,
                                                        budget)
                if reps >= 3:
                    hit = (period, reps, deltas)
                    break
                if budget <= 0:
                    break
            if hit is None:
                i += 1
                continue
            period, reps, deltas = hit
            self._record_candidate(seg[i:i + period], deltas, period,
                                   reps, found)
            i += period * reps
        return budget

    def _count_reps(self, seg: list[tuple], start: int, period: int,
                    budget: int) -> tuple[int, list, int]:
        n = len(seg)
        base = seg[start:start + period]
        if not any(e[1] is not None for e in base):
            return 0, [], budget
        deltas: list[int | None] = [None] * period
        reps = 1
        while start + (reps + 1) * period <= n and budget > 0:
            prev = start + (reps - 1) * period
            cur = start + reps * period
            ok = True
            for j in range(period):
                budget -= 1
                a, b = seg[prev + j], seg[cur + j]
                if a[0] != b[0] or a[2] != b[2]:
                    ok = False
                    break
                if (a[1] is None) != (b[1] is None):
                    ok = False
                    break
                if a[1] is not None:
                    d = b[1] - a[1]
                    if reps == 1:
                        deltas[j] = d
                    elif deltas[j] != d:
                        ok = False
                        break
            if not ok:
                break
            reps += 1
        return reps, deltas, budget

    def _record_candidate(self, base: list[tuple], deltas: list,
                          period: int, reps: int,
                          found: dict[tuple, dict]) -> None:
        mem = [j for j, e in enumerate(base) if e[1] is not None]
        votes: dict[int, int] = {}
        for j in mem:
            d = deltas[j]
            if d:
                votes[d] = votes.get(d, 0) + 1
        if votes:
            primary = max(votes, key=lambda d: (votes[d], -abs(d)))
        else:
            primary = 0  # resident loop: same footprint every iteration
        if primary % self.line_bytes != 0:
            return
        eligible = [j for j in mem if deltas[j] == primary]
        if not eligible:
            return
        reads = merge_intervals(
            [(base[j][1], base[j][1] + base[j][2])
             for j in eligible if base[j][0] != OP_STORE])
        writes = merge_intervals(
            [(base[j][1], base[j][1] + base[j][2])
             for j in eligible if base[j][0] == OP_STORE])
        if primary and _has_shift_conflict(reads, writes, primary):
            return
        touched = sum(e - s for s, e in list(reads) + list(writes))
        if touched > self._l1_capacity():
            return
        opcodes = _summarize_opcodes([e[0] for e in base])
        first = base[eligible[0]][1]
        region = self._region_of(first).split("+")[0]
        key = (opcodes, period, primary, region)
        entry = found.get(key)
        if entry is None:
            found[key] = {
                "period": period, "reps": reps, "loops": 1,
                "delta": primary, "opcodes": opcodes, "region": region,
                "mem": len(mem), "eligible": len(eligible),
            }
        else:
            entry["loops"] += 1
            entry["reps"] = max(entry["reps"], reps)

    # -- report --------------------------------------------------------

    def report(self) -> AuditReport:
        blocks = self.block_proofs()
        phases = self.phase_proofs()
        streams = self.stream_proofs()
        candidates = self.find_candidates()
        return AuditReport(
            workload=self.workload,
            model=self.model.value,
            cores=self.config.num_cores,
            preset=self.preset,
            diagnostics=list(self.diagnostics),
            blocks=blocks,
            phases=phases,
            streams=streams,
            candidates=candidates,
            ops_walked=self.ops_walked,
            truncated=self.truncated,
        )


def _has_shift_conflict(reads: tuple, writes: tuple, stride: int) -> bool:
    for k in (1, 2):
        shift = k * stride
        shifted = [(s + shift, e + shift) for s, e in writes]
        if (_intersect(shifted, reads) or _intersect(shifted, writes)
                or _intersect([(s + shift, e + shift) for s, e in reads],
                              writes)):
            return True
    return False


def _summarize_opcodes(kinds: list[str]) -> str:
    out = []
    i = 0
    while i < len(kinds):
        j = i
        while j < len(kinds) and kinds[j] == kinds[i]:
            j += 1
        count = j - i
        out.append(f"{count}x{kinds[i]}" if count > 1 else kinds[i])
        i = j
    return " ".join(out)


def audit_program(program: Program, config: MachineConfig,
                  workload: str = "?", preset: str = "?") -> AuditReport:
    """Statically audit one bound program; no simulator is constructed."""
    auditor = _ProgramAuditor(program, config, workload, preset)
    auditor.run()
    return auditor.report()


def audit_workload(name: str, model: str = "cc", cores: int = 4,
                   preset: str = "tiny",
                   overrides: dict | None = None) -> AuditReport:
    """Build one shipped workload for ``model`` and audit it."""
    config = MachineConfig(num_cores=cores).with_model(model)
    workload = get_workload(name)
    program = workload.build(config.model, config, preset=preset,
                             overrides=overrides)
    return audit_program(program, config, workload=name, preset=preset)


def render_reports(reports: list[AuditReport], as_json: bool = False) -> str:
    """Human- or machine-readable output for a batch of audits."""
    if as_json:
        hazards = sum(len(r.hazards) for r in reports)
        return json.dumps({
            "reports": [r.to_dict() for r in reports],
            "hazards": hazards,
            "count": len(reports),
        }, indent=2)
    lines = [r.render() for r in reports]
    hazards = sum(len(r.hazards) for r in reports)
    warnings = sum(len(r.warnings) for r in reports)
    lines.append(f"audit-programs: {len(reports)} audit(s), "
                 f"{hazards} hazard(s), {warnings} warning(s)")
    return "\n".join(lines)
