"""Simulator-aware lint: AST rules no off-the-shelf linter knows.

The simulator has repo-specific correctness conventions — integer
femtosecond timestamps, unit-suffixed names, no wall-clock reads inside
the deterministic event loop — that ruff/flake8 cannot check.  This pass
walks the AST of every file under ``src/repro`` and enforces:

========== ==========================================================
REPRO001   no wall-clock calls (``time.time``, ``time.monotonic``,
           ``time.perf_counter``, ``datetime.now`` …) in simulator
           code: simulations must be a pure function of the config
REPRO002   no float ``==`` / ``!=`` against ``_fs`` / ``_ns`` / cycle
           quantities: timestamps are exact integers; a float literal
           in such a comparison is a unit or rounding bug
REPRO003   unit-suffix naming discipline: public attributes and
           dataclass fields holding physical quantities (latency,
           bandwidth, energy, capacity, …) must name their unit
           (``_fs``, ``_bytes``, ``_pj``, ``_ns``, ``_gbps``, …)
REPRO004   no mutable default arguments (shared-state bugs across
           per-core component instances)
REPRO005   no bare ``assert`` for invariant checks outside ``tests/``:
           ``python -O`` strips asserts — raise
           :class:`~repro.sim.kernel.InvariantViolation` or
           :class:`~repro.sim.kernel.SimulationError` instead
REPRO006   no float arithmetic assigned to exact integer quantities:
           an assignment (or augmented assignment) whose target ends in
           ``_fs`` / ``_cycles`` must not mix in float
           literals or true division — the run-until-miss fast path
           advances local copies of the clock with plain ``+=``, and one
           float contaminates every later timestamp.  Quantize
           explicitly (``round(...)`` / ``int(...)`` or the
           :mod:`repro.units` converters) or use ``//``
REPRO007   no ``os.environ`` / ``os.getenv`` reads of ``REPRO_*``
           escape hatches outside construction-time code: the
           fastpath/blocks contract reads hatches once when the system
           is built, so a mid-run read makes behaviour depend on when
           the environment mutates — a determinism bug.  The sanctioned
           construction-time readers carry suppression comments
========== ==========================================================

A file that cannot be parsed is reported as a single ``REPRO000``
finding rather than crashing the pass.

Suppression: append ``# repro-lint: disable=REPRO001`` (comma-separate
several ids, or ``disable=all``) to the offending line.  ``--json``
emits machine-readable findings for CI.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import asdict, dataclass
from pathlib import Path

#: Module-level callables that read the wall clock.
_WALL_CLOCK_MODULES = {"time"}
_WALL_CLOCK_TIME_ATTRS = {"time", "monotonic", "perf_counter", "process_time",
                          "clock", "time_ns", "monotonic_ns",
                          "perf_counter_ns"}
_WALL_CLOCK_DATETIME_ATTRS = {"now", "utcnow", "today"}

#: Name roots that denote a physical quantity and therefore need a unit.
_QUANTITY_ROOTS = ("latency", "bandwidth", "energy", "capacity", "delay",
                   "period", "duration")
#: Accepted unit suffixes (extend as new units appear).
_UNIT_SUFFIXES = ("_fs", "_ns", "_us", "_ms", "_s", "_bytes", "_bits", "_kib",
                  "_mib", "_pj", "_nj", "_uj", "_mj", "_j", "_ghz", "_mhz",
                  "_hz", "_gbps", "_mbps", "_per_byte", "_per_bit",
                  "_cycles", "_instructions")

#: Name endings that mark exact integer time/cycle quantities (REPRO002).
_EXACT_QUANTITY_RE = re.compile(r"(_fs|_ns|_cycles|cycle_fs)$")

#: Name endings in the *integer* time domain (REPRO006).  Narrower than
#: :data:`_EXACT_QUANTITY_RE`: ``_ns`` quantities are the human-friendly
#: float configuration domain and may carry fractions; only once
#: converted to femtoseconds (or cycle counts) must values stay integer.
_INT_QUANTITY_RE = re.compile(r"(_fs|_cycles)$")


_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")

#: Rule registry: id -> one-line summary.  Help text and documentation
#: render from this table so they cannot drift when rules are added.
#: REPRO000 is the parse-failure pseudo-rule, not part of the advertised
#: range.
RULES: dict[str, str] = {
    "REPRO000": "file cannot be parsed (reported as a finding, not a crash)",
    "REPRO001": "no wall-clock reads in simulator code",
    "REPRO002": "no float equality against exact integer quantities",
    "REPRO003": "physical-quantity attributes must name their unit",
    "REPRO004": "no mutable default arguments",
    "REPRO005": "no bare assert for invariant checks",
    "REPRO006": "no float arithmetic assigned to integer clock quantities",
    "REPRO007": "no mid-run reads of REPRO_* environment escape hatches",
}


def rule_range() -> str:
    """The advertised rule range, e.g. ``"REPRO001..REPRO007"``.

    Rendered from :data:`RULES` (excluding the REPRO000 pseudo-rule) so
    CLI help and docs can never drift from the implementation.
    """
    numbered = sorted(rule for rule in RULES if rule != "REPRO000")
    return f"{numbered[0]}..{numbered[-1]}"


@dataclass(frozen=True)
class Finding:
    """One lint finding, pointing at a file:line."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _dotted_name(node: ast.AST) -> str:
    """Best-effort dotted name of a call target ('time.time', 'x.y.now')."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _operand_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _operand_name(node.func)
    return None


def _is_float_constant(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and type(node.value) is float:
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_constant(node.operand)
    return False


def _float_taint(node: ast.AST) -> ast.AST | None:
    """First sub-expression introducing float arithmetic, or None.

    Walks bare arithmetic only (``+ - * //`` chains, unary ops,
    conditional expressions); a float literal or a true division anywhere
    in the walked expression taints it.  Calls are *not* descended into:
    explicit quantizers (``round``, ``int``) and the unit converters
    return exact integers by contract, and unknown callables are given
    the benefit of the doubt — the rule targets inline clock arithmetic,
    where the float has nowhere to hide.
    """
    if isinstance(node, ast.Constant):
        return node if type(node.value) is float else None
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return node
        return _float_taint(node.left) or _float_taint(node.right)
    if isinstance(node, ast.UnaryOp):
        return _float_taint(node.operand)
    if isinstance(node, ast.IfExp):
        return _float_taint(node.body) or _float_taint(node.orelse)
    return None


def _exact_target_name(node: ast.AST) -> str | None:
    """The terminal name of an assignment target, if it is exact-integer."""
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name is not None and _INT_QUANTITY_RE.search(name):
        return name
    return None


def _needs_unit_suffix(name: str) -> bool:
    if name.startswith("_"):
        return False
    lowered = name.lower()
    if not any(root in lowered for root in _QUANTITY_ROOTS):
        return False
    return not lowered.endswith(_UNIT_SUFFIXES)


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: list[Finding] = []

    def _add(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(Finding(self.path, node.lineno, node.col_offset,
                                     rule, message))

    # REPRO001 ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        parts = dotted.split(".")
        if len(parts) >= 2:
            module, attr = parts[-2], parts[-1]
            if module in _WALL_CLOCK_MODULES and attr in _WALL_CLOCK_TIME_ATTRS:
                self._add(node, "REPRO001",
                          f"wall-clock call {dotted}() in simulator code; "
                          "simulated time must come from the event kernel")
            elif (attr in _WALL_CLOCK_DATETIME_ATTRS
                  and any("datetime" in p or p == "date" for p in parts[:-1])):
                self._add(node, "REPRO001",
                          f"wall-clock call {dotted}() in simulator code; "
                          "simulated time must come from the event kernel")
        self._check_env_call(node, parts)
        self.generic_visit(node)

    # REPRO007 ---------------------------------------------------------
    def _flag_env_read(self, node: ast.AST, key: str) -> None:
        self._add(node, "REPRO007",
                  f"environment escape hatch {key!r} read here; hatches "
                  "are read once at system construction — accept the "
                  "resolved value as a parameter instead")

    def _check_env_call(self, node: ast.Call, parts: list[str]) -> None:
        attr = parts[-1] if parts else ""
        is_env_read = attr == "getenv" or (
            attr == "get" and len(parts) >= 2 and parts[-2] == "environ")
        if not is_env_read or not node.args:
            return
        first = node.args[0]
        if (isinstance(first, ast.Constant) and isinstance(first.value, str)
                and first.value.startswith("REPRO_")):
            self._flag_env_read(node, first.value)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        dotted = _dotted_name(node.value)
        if dotted.split(".")[-1] == "environ":
            key = node.slice
            if (isinstance(key, ast.Constant) and isinstance(key.value, str)
                    and key.value.startswith("REPRO_")):
                self._flag_env_read(node, key.value)
        self.generic_visit(node)

    # REPRO002 ---------------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        eq_ops = [op for op in node.ops if isinstance(op, (ast.Eq, ast.NotEq))]
        if eq_ops:
            has_float = any(_is_float_constant(o) for o in operands)
            exact_names = [
                name for o in operands
                if (name := _operand_name(o)) is not None
                and _EXACT_QUANTITY_RE.search(name)
            ]
            if has_float and exact_names:
                self._add(node, "REPRO002",
                          f"float equality against exact integer quantity "
                          f"{exact_names[0]!r}; timestamps and cycle counts "
                          "are exact ints — compare against an int")
        self.generic_visit(node)

    # REPRO003 ---------------------------------------------------------
    def _check_attr_name(self, node: ast.AST, name: str) -> None:
        if _needs_unit_suffix(name):
            self._add(node, "REPRO003",
                      f"public attribute {name!r} holds a physical quantity "
                      "but names no unit; add a suffix such as "
                      "'_fs', '_bytes', or '_pj'")

    @staticmethod
    def _is_numeric_value(node: ast.AST) -> bool:
        """Heuristic: the assigned value is a scalar numeric quantity.

        Only scalars need unit suffixes; an attribute holding a structured
        object (e.g. an ``EnergyBreakdown``) carries its units inside.
        """
        if isinstance(node, ast.Constant):
            return type(node.value) in (int, float)
        if isinstance(node, ast.UnaryOp):
            return _Visitor._is_numeric_value(node.operand)
        if isinstance(node, ast.BinOp):
            return True
        return False

    @staticmethod
    def _is_numeric_annotation(node: ast.AST | None) -> bool:
        if node is None:
            return False
        if isinstance(node, ast.Name):
            return node.id in ("int", "float")
        if isinstance(node, ast.BinOp):  # e.g. ``float | None``
            return (_Visitor._is_numeric_annotation(node.left)
                    or _Visitor._is_numeric_annotation(node.right))
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value in ("int", "float")
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_numeric_value(node.value):
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    self._check_attr_name(target, target.attr)
        self._check_exact_assign(node.targets, node.value, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if self._is_numeric_annotation(node.annotation):
            target = node.target
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                self._check_attr_name(target, target.attr)
            elif isinstance(target, ast.Name):
                # Class-level annotated names: dataclass fields.
                self._check_attr_name(target, target.id)
        if node.value is not None:
            self._check_exact_assign([node.target], node.value, node)
        self.generic_visit(node)

    # REPRO006 ---------------------------------------------------------
    def _flag_float_arith(self, node: ast.AST, name: str,
                          taint: ast.AST) -> None:
        kind = ("true division" if isinstance(taint, ast.BinOp)
                else "float literal")
        self._add(node, "REPRO006",
                  f"{kind} in arithmetic assigned to exact integer "
                  f"quantity {name!r}; clock updates must stay integer "
                  "femtoseconds — quantize with round()/int() or use '//'")

    def _check_exact_assign(self, targets: list[ast.AST], value: ast.AST,
                            node: ast.AST) -> None:
        taint = _float_taint(value)
        if taint is None:
            return
        for target in targets:
            name = _exact_target_name(target)
            if name is not None:
                self._flag_float_arith(node, name, taint)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        name = _exact_target_name(node.target)
        if name is not None:
            if isinstance(node.op, ast.Div):
                self._flag_float_arith(node, name, node)
            else:
                taint = _float_taint(node.value)
                if taint is not None:
                    self._flag_float_arith(node, name, taint)
        self.generic_visit(node)

    # REPRO004 ---------------------------------------------------------
    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set", "bytearray",
                                        "deque", "defaultdict", "OrderedDict")
            )
            if mutable:
                self._add(default, "REPRO004",
                          f"mutable default argument in {node.name}(); "
                          "per-core components would share it — default to "
                          "None and construct inside the body")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # REPRO005 ---------------------------------------------------------
    def visit_Assert(self, node: ast.Assert) -> None:
        self._add(node, "REPRO005",
                  "bare 'assert' in simulator code is stripped by "
                  "'python -O'; raise InvariantViolation (or another "
                  "SimulationError) instead")
        self.generic_visit(node)


def _suppressed(finding: Finding, source_lines: list[str]) -> bool:
    if not 1 <= finding.line <= len(source_lines):
        return False
    match = _SUPPRESS_RE.search(source_lines[finding.line - 1])
    if match is None:
        return False
    rules = {r.strip().upper() for r in match.group(1).split(",")}
    return "ALL" in rules or finding.rule in rules


def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint one Python source string; returns unsuppressed findings.

    An unparseable file yields one ``REPRO000`` finding rather than
    raising, so one broken file cannot crash a whole-tree lint run.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 1, (exc.offset or 1) - 1,
                        "REPRO000",
                        f"file cannot be parsed: {exc.msg}")]
    visitor = _Visitor(path)
    visitor.visit(tree)
    lines = source.splitlines()
    findings = [f for f in visitor.findings if not _suppressed(f, lines)]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_paths(paths: list[str | Path]) -> list[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    findings: list[Finding] = []
    for file in files:
        findings.extend(lint_source(file.read_text(), str(file)))
    return findings


def render_findings(findings: list[Finding], as_json: bool = False) -> str:
    """Human- or machine-readable report for a findings list."""
    if as_json:
        return json.dumps({
            "findings": [asdict(f) for f in findings],
            "count": len(findings),
        }, indent=2)
    if not findings:
        return "repro-lint: no findings"
    lines = [f.render() for f in findings]
    lines.append(f"repro-lint: {len(findings)} finding(s)")
    return "\n".join(lines)
