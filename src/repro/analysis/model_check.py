"""Murphi-style exhaustive model checking of the MESI protocol.

Explores, breadth-first, every protocol state reachable for *N caches and
one cache line* under demand events (load / store / evict per cache) and
checks a set of safety invariants in every state:

* **SWMR** — at most one M/E holder, and never an M/E holder alongside
  S copies (single-writer / multiple-reader);
* **data-value** — the dirty owner holds the freshest value token, every
  readable copy is fresh, and memory is fresh whenever no cache holds the
  line dirty;
* **L2 inclusion** (hierarchy-backed model) — once filled, the shared L2
  retains a copy whenever any L1 holds the line (no L2 capacity pressure
  exists in the one-line model, so a missing L2 copy means a protocol
  walk forgot a write-back or fill).

Two models are explored and cross-validated against each other:

* :class:`TableModel` runs on the declarative transition tables of
  :mod:`repro.mem.coherence` and carries value-freshness tokens.  Tests
  (and the ``--broken`` CLI flag) pass deliberately mutated tables to
  prove the checker detects protocol bugs.
* :class:`HierarchyModel` drives the *real*
  :class:`~repro.mem.hierarchy.CacheCoherentHierarchy` by replaying event
  prefixes, so the checker verifies the shipped implementation, not a
  parallel re-implementation that could drift.

BFS returns the **shortest counterexample trace** on failure.  State
spaces are tiny (tens of states for N <= 4), so exhaustive exploration
takes milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import CacheConfig, MachineConfig
from repro.mem.coherence import (REQUESTER_TRANSITIONS, SNOOP_TRANSITIONS,
                                 MesiEvent, MesiState, apply_event,
                                 check_global_invariant)
from repro.sim.kernel import InvariantViolation


@dataclass(frozen=True)
class ProtoState:
    """One protocol state: per-cache MESI states plus value-freshness tokens.

    ``fresh[i]`` is True when cache *i* holds the latest written value
    (normalized to False for INVALID copies); ``mem_fresh`` is True when
    the memory-side copy (L2/DRAM) is up to date.
    """

    states: tuple[MesiState, ...]
    fresh: tuple[bool, ...]
    mem_fresh: bool

    def describe(self) -> str:
        caches = " ".join(
            f"C{i}:{s.name[0]}{'*' if f else ''}"
            for i, (s, f) in enumerate(zip(self.states, self.fresh))
        )
        return f"{caches} mem:{'fresh' if self.mem_fresh else 'STALE'}"


@dataclass
class Counterexample:
    """The shortest event sequence reaching an invariant violation."""

    events: list[tuple[int, MesiEvent]]
    trace: list[ProtoState]
    violation: str

    def render(self) -> str:
        lines = ["counterexample (shortest trace):",
                 f"  init: {self.trace[0].describe()}"]
        for (core, event), state in zip(self.events, self.trace[1:]):
            lines.append(f"  core {core} {event.value:<5} -> {state.describe()}")
        lines.append(f"  VIOLATION: {self.violation}")
        return "\n".join(lines)


@dataclass
class CheckResult:
    """Outcome of one exhaustive exploration."""

    model: str
    num_caches: int
    ok: bool
    states_explored: int = 0
    transitions: int = 0
    counterexample: Counterexample | None = None
    mismatches: list[str] = field(default_factory=list)

    def render(self) -> str:
        status = "OK" if self.ok else "FAIL"
        out = (f"[{status}] {self.model}: {self.num_caches} caches, "
               f"{self.states_explored} states, "
               f"{self.transitions} transitions")
        if self.counterexample is not None:
            out += "\n" + self.counterexample.render()
        if self.mismatches:
            out += "\n" + "\n".join("  MISMATCH: " + m for m in self.mismatches)
        return out


def _swmr_violation(states: tuple[MesiState, ...]) -> str | None:
    try:
        check_global_invariant(states)
    except InvariantViolation as exc:
        return str(exc)
    return None


class TableModel:
    """Protocol model over the declarative MESI transition tables.

    ``requester_transitions`` / ``snoop_transitions`` default to the
    shipped tables in :mod:`repro.mem.coherence`; pass mutated copies to
    seed protocol bugs.  ``skip_writeback_on_evict`` seeds a data-value
    bug that the state tables alone cannot express (a dirty line silently
    dropped instead of written back).
    """

    name = "table-model"

    def __init__(self, num_caches: int,
                 requester_transitions: dict | None = None,
                 snoop_transitions: dict | None = None,
                 skip_writeback_on_evict: bool = False) -> None:
        if not 1 <= num_caches <= 8:
            raise ValueError(f"num_caches must be in 1..8, got {num_caches}")
        self.num_caches = num_caches
        self._req = dict(REQUESTER_TRANSITIONS if requester_transitions is None
                         else requester_transitions)
        self._snp = dict(SNOOP_TRANSITIONS if snoop_transitions is None
                         else snoop_transitions)
        self._skip_writeback = skip_writeback_on_evict

    def initial(self) -> ProtoState:
        n = self.num_caches
        return ProtoState((MesiState.INVALID,) * n, (False,) * n, True)

    def events(self, state: ProtoState):
        for core in range(self.num_caches):
            yield core, MesiEvent.LOAD
            yield core, MesiEvent.STORE
            if state.states[core] is not MesiState.INVALID:
                yield core, MesiEvent.EVICT

    def apply(self, state: ProtoState, core: int, event: MesiEvent) -> ProtoState:
        old_states = state.states
        new_states = apply_event(old_states, core, event, self._req, self._snp)
        fresh = list(state.fresh)
        mem_fresh = state.mem_fresh

        if event is MesiEvent.STORE:
            # The writer produces the new latest value; every other copy
            # and the memory image go stale (stale copies are normally
            # invalidated by the snoop table — if a buggy table keeps
            # them valid, the data-value invariant flags them).
            fresh = [False] * len(fresh)
            fresh[core] = True
            mem_fresh = False
        elif event is MesiEvent.LOAD:
            supplier = None
            for i, s in enumerate(old_states):
                if i == core or s is MesiState.INVALID:
                    continue
                if supplier is None or s > old_states[supplier]:
                    supplier = i
            if old_states[core] is not MesiState.INVALID:
                pass  # load hit: keeps its own copy
            elif supplier is not None:
                fresh[core] = state.fresh[supplier]
                if old_states[supplier] is MesiState.MODIFIED:
                    # Dirty supply writes the data back on the downgrade.
                    mem_fresh = state.fresh[supplier]
            else:
                fresh[core] = mem_fresh
        elif event is MesiEvent.EVICT:
            if (old_states[core] is MesiState.MODIFIED
                    and not self._skip_writeback):
                mem_fresh = state.fresh[core]
            fresh[core] = False

        # Normalize: freshness tokens are only meaningful for valid copies.
        fresh = [f and s is not MesiState.INVALID
                 for f, s in zip(fresh, new_states)]
        return ProtoState(new_states, tuple(fresh), mem_fresh)

    def invariant_violation(self, state: ProtoState) -> str | None:
        swmr = _swmr_violation(state.states)
        if swmr is not None:
            return f"SWMR: {swmr}"
        for i, (s, f) in enumerate(zip(state.states, state.fresh)):
            if s is not MesiState.INVALID and not f:
                return (f"data-value: cache {i} holds a readable but stale "
                        f"copy ({s.name})")
        if not state.mem_fresh and not any(
                s is MesiState.MODIFIED for s in state.states):
            return ("data-value: memory is stale but no cache holds the "
                    "line dirty (lost write)")
        return None


class HierarchyModel:
    """Protocol model backed by the real :class:`CacheCoherentHierarchy`.

    Each abstract state is the per-core MESI projection (plus L2
    presence) for one line; events are applied by replaying the shortest
    event prefix on a freshly built hierarchy.  Replay is cheap because
    the one-line state graph has a tiny diameter, and it guarantees the
    checker observes exactly what the shipped implementation does.
    """

    name = "hierarchy-model"

    #: The line number explored; arbitrary (any line behaves identically).
    LINE = 100

    def __init__(self, num_caches: int) -> None:
        if not 1 <= num_caches <= 8:
            raise ValueError(f"num_caches must be in 1..8, got {num_caches}")
        self.num_caches = num_caches
        self._config = MachineConfig(num_cores=num_caches)
        self._l1_config = CacheConfig(capacity_bytes=512, associativity=2)
        self._sequences: dict[ProtoState, tuple] = {}

    def _build(self):
        from repro.mem.hierarchy import CacheCoherentHierarchy

        return CacheCoherentHierarchy(self._config, l1_config=self._l1_config)

    def _replay(self, events):
        hierarchy = self._build()
        now = 0
        line = self.LINE
        for core, event in events:
            now += 1_000_000
            if event is MesiEvent.LOAD:
                hierarchy.load_line(core, line, now)
            elif event is MesiEvent.STORE:
                hierarchy.store_line(core, line, now)
            else:
                hierarchy.invalidate_range(core, line, line, now)
        return hierarchy

    def _project(self, hierarchy) -> ProtoState:
        states = hierarchy.line_states(self.LINE)
        # Freshness is not observable from the hierarchy (it models no
        # data); reuse the slot for the L2-inclusion bit instead: every
        # token True <=> L2 holds the line.
        l2_present = hierarchy.uncore.l2.lookup(self.LINE) is not None
        return ProtoState(states, (l2_present,) * len(states), True)

    def initial(self) -> ProtoState:
        state = self._project(self._build())
        self._sequences[state] = ()
        return state

    def events(self, state: ProtoState):
        for core in range(self.num_caches):
            yield core, MesiEvent.LOAD
            yield core, MesiEvent.STORE
            if state.states[core] is not MesiState.INVALID:
                yield core, MesiEvent.EVICT

    def apply(self, state: ProtoState, core: int, event: MesiEvent) -> ProtoState:
        prefix = self._sequences[state]
        events = prefix + ((core, event),)
        new_state = self._project(self._replay(events))
        self._sequences.setdefault(new_state, events)
        return new_state

    def invariant_violation(self, state: ProtoState) -> str | None:
        swmr = _swmr_violation(state.states)
        if swmr is not None:
            return f"SWMR: {swmr}"
        l2_present = state.fresh[0] if state.fresh else True
        if not l2_present and any(
                s is not MesiState.INVALID for s in state.states):
            return ("L2 inclusion: an L1 holds the line but the shared L2 "
                    "dropped its copy (missing fill or write-back)")
        return None


def check_protocol(model) -> CheckResult:
    """Exhaustive BFS over ``model``'s reachable states.

    Returns a :class:`CheckResult`; on an invariant violation the result
    carries the shortest :class:`Counterexample` (BFS order guarantees
    minimality in event count).
    """
    result = CheckResult(model=model.name, num_caches=model.num_caches, ok=True)
    initial = model.initial()
    # parents: state -> (previous state, event) for trace reconstruction.
    parents: dict[ProtoState, tuple[ProtoState, tuple[int, MesiEvent]] | None]
    parents = {initial: None}
    frontier = [initial]
    result.states_explored = 1

    def trace_to(state: ProtoState, violation: str) -> Counterexample:
        events: list[tuple[int, MesiEvent]] = []
        trace = [state]
        cursor = state
        while parents[cursor] is not None:
            cursor, event = parents[cursor]
            events.append(event)
            trace.append(cursor)
        events.reverse()
        trace.reverse()
        return Counterexample(events, trace, violation)

    violation = model.invariant_violation(initial)
    if violation is not None:
        result.ok = False
        result.counterexample = trace_to(initial, violation)
        return result

    while frontier:
        next_frontier = []
        for state in frontier:
            for core, event in model.events(state):
                successor = model.apply(state, core, event)
                result.transitions += 1
                if successor in parents:
                    continue
                parents[successor] = (state, (core, event))
                result.states_explored += 1
                violation = model.invariant_violation(successor)
                if violation is not None:
                    result.ok = False
                    result.counterexample = trace_to(successor, violation)
                    return result
                next_frontier.append(successor)
        frontier = next_frontier
    return result


def cross_validate(num_caches: int) -> list[str]:
    """Check the declarative tables against the real hierarchy.

    Explores the hierarchy-backed model and verifies that, for every
    reachable state and event, :func:`repro.mem.coherence.apply_event`
    predicts exactly the MESI projection the implementation produces.
    Returns a list of human-readable mismatches (empty when the spec and
    the implementation agree).
    """
    model = HierarchyModel(num_caches)
    mismatches: list[str] = []
    seen = {model.initial()}
    frontier = list(seen)
    while frontier:
        next_frontier = []
        for state in frontier:
            for core, event in model.events(state):
                successor = model.apply(state, core, event)
                predicted = apply_event(state.states, core, event)
                if predicted != successor.states:
                    mismatches.append(
                        f"caches={state.states} core={core} "
                        f"event={event.value}: table predicts {predicted}, "
                        f"hierarchy produced {successor.states}"
                    )
                if successor not in seen:
                    seen.add(successor)
                    next_frontier.append(successor)
        frontier = next_frontier
    return mismatches


#: Named protocol-bug seeds for the CLI's ``--broken`` flag and the tests.
BROKEN_TABLE_BUGS = ("no-invalidate-on-store", "exclusive-with-sharers",
                     "silent-dirty-evict")


def broken_table_model(num_caches: int, bug: str) -> TableModel:
    """A :class:`TableModel` with one deliberately seeded protocol bug."""
    req = dict(REQUESTER_TRANSITIONS)
    snp = dict(SNOOP_TRANSITIONS)
    skip_writeback = False
    if bug == "no-invalidate-on-store":
        # Peers keep their S copy when another core writes: classic
        # missing-invalidation bug; violates SWMR (M coexists with S).
        snp[(MesiState.SHARED, MesiEvent.STORE)] = MesiState.SHARED
    elif bug == "exclusive-with-sharers":
        # A load miss fills EXCLUSIVE even when sharers exist.
        req[(MesiState.INVALID, MesiEvent.LOAD, True)] = MesiState.EXCLUSIVE
    elif bug == "silent-dirty-evict":
        # A dirty eviction drops the data instead of writing it back;
        # only the data-value invariant can see this one.
        skip_writeback = True
    else:
        raise ValueError(
            f"unknown bug {bug!r}; expected one of {BROKEN_TABLE_BUGS}")
    return TableModel(num_caches, requester_transitions=req,
                      snoop_transitions=snp,
                      skip_writeback_on_evict=skip_writeback)


def run_full_check(min_caches: int = 2, max_caches: int = 4,
                   broken: str | None = None) -> tuple[bool, str]:
    """Run every model for every cache count; returns (ok, report text)."""
    lines: list[str] = []
    ok = True
    for n in range(min_caches, max_caches + 1):
        if broken is not None:
            result = check_protocol(broken_table_model(n, broken))
            # A broken table *must* produce a counterexample; the run is
            # "successful" when the checker finds it.
            lines.append(result.render())
            ok = ok and not result.ok
            continue
        for model in (TableModel(n), HierarchyModel(n)):
            result = check_protocol(model)
            ok = ok and result.ok
            lines.append(result.render())
        mismatches = cross_validate(n)
        if mismatches:
            ok = False
            lines.append(f"[FAIL] spec-vs-implementation: {n} caches")
            lines.extend("  MISMATCH: " + m for m in mismatches)
        else:
            lines.append(f"[OK] spec-vs-implementation: {n} caches "
                         f"(tables match the hierarchy)")
    return ok, "\n".join(lines)
