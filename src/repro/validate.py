"""Internal-consistency checks for simulation results.

:func:`check_result` audits a :class:`~repro.results.RunResult` against
the physical invariants the simulator must never violate — time
conservation, channel capacity, counter conservation laws — and returns
a list of human-readable violations (empty when everything holds).
:func:`assert_valid` raises instead.

The test suite runs these on every workload; downstream users extending
the machine model or adding workloads can call them to catch accounting
bugs early.
"""

from __future__ import annotations

from repro.results import RunResult


def check_result(result: RunResult, config=None) -> list[str]:
    """Return every invariant violation found in ``result``."""
    problems: list[str] = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            problems.append(message)

    # --- time conservation -------------------------------------------------
    breakdown = result.breakdown
    check(result.exec_time_fs >= 0, "negative execution time")
    check(result.settled_fs >= result.exec_time_fs,
          "settle time precedes execution end")
    components = (breakdown.useful_fs, breakdown.sync_fs,
                  breakdown.load_fs, breakdown.store_fs)
    check(all(c >= 0 for c in components),
          "negative execution-time component")
    total = sum(components)
    check(abs(total - result.exec_time_fs) <= max(1, result.exec_time_fs) * 1e-9,
          f"breakdown sums to {total}, execution time is {result.exec_time_fs}")

    # --- traffic -----------------------------------------------------------
    traffic = result.traffic
    check(traffic.read_bytes >= 0 and traffic.write_bytes >= 0,
          "negative off-chip traffic")
    if config is not None and result.settled_fs > 0:
        capacity_mb_s = (config.dram.bandwidth_gbps * 1000
                         * config.dram.channels)
        check(result.offchip_mb_per_s <= capacity_mb_s * 1.001,
              f"average bandwidth {result.offchip_mb_per_s:.0f} MB/s exceeds "
              f"channel capacity {capacity_mb_s:.0f} MB/s")

    # --- counter conservation ----------------------------------------------
    check(result.l1_misses <= result.stats.get("l1.load_ops", 0)
          + result.stats.get("l1.store_ops", 0),
          "more L1 misses than L1 line operations")
    check(result.l1_load_misses + result.l1_store_misses == result.l1_misses,
          "load+store misses do not sum to total misses")
    check(result.l2_misses <= result.l2_accesses,
          "more L2 misses than L2 accesses")
    line_ops = (result.stats.get("l1.load_ops", 0)
                + result.stats.get("l1.store_ops", 0))
    check(result.word_accesses > 0 or line_ops == 0,
          "line operations performed without any word accesses")
    hits = result.stats.get("l2.read_hits", 0) + result.stats.get(
        "l2.write_hits", 0)
    check(hits + result.l2_misses == result.l2_accesses,
          "L2 hits + misses do not sum to accesses")

    # --- energy ------------------------------------------------------------
    energy = result.energy.as_dict()
    check(all(v >= 0 for v in energy.values()), "negative energy component")
    if result.model != "str":
        check(energy["local_store"] == 0,
              "cache-based run charged local-store energy")
    check(result.energy.total > 0 or result.instructions == 0,
          "work performed but zero energy")

    return problems


def assert_valid(result: RunResult, config=None) -> None:
    """Raise ``AssertionError`` listing every violated invariant."""
    problems = check_result(result, config)
    if problems:
        raise AssertionError(
            "result failed validation:\n  - " + "\n  - ".join(problems)
        )
