"""Benchmarks of the simulator itself (wall time, not simulated time).

See :mod:`repro.perf.bench` for the harness and ``docs/PERF.md`` for the
fast-path invariants, usage, and the baseline-update procedure.
"""

from repro.perf.bench import (
    DEFAULT_CASES,
    BenchCase,
    bench_case,
    compare_reports,
    load_report,
    render_report,
    run_bench,
    save_report,
)

__all__ = [
    "BenchCase",
    "DEFAULT_CASES",
    "bench_case",
    "compare_reports",
    "load_report",
    "render_report",
    "run_bench",
    "save_report",
]
