"""CLI for the simulator benchmark harness.

Usage::

    python -m repro perf bench --preset tiny --jobs 2
    python -m repro perf bench --out BENCH_baseline.json --no-gate
    python -m repro perf compare BENCH_abc123.json BENCH_baseline.json

``bench`` writes ``BENCH_<rev>.json`` and, when a baseline file exists,
gates against it (exit code 1 on regression).  ``compare`` re-runs the
gate on two existing reports without simulating anything.
"""

from __future__ import annotations

import argparse
import sys

from repro.perf.bench import (DEFAULT_CASES, compare_reports, current_rev,
                              load_report, render_delta_table, render_report,
                              run_bench, save_report)

#: The committed reference report the gate runs against by default.
DEFAULT_BASELINE = "BENCH_baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro perf",
        description="benchmark the simulator and gate perf regressions")
    sub = parser.add_subparsers(dest="command", required=True)

    bench_p = sub.add_parser("bench", help="run the benchmark case set")
    bench_p.add_argument("--preset", default="tiny",
                         choices=["default", "small", "tiny"])
    bench_p.add_argument("--repeats", type=int, default=3, metavar="N",
                         help="wall time is the best of N runs (default 3)")
    bench_p.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes across cases (default 1)")
    bench_p.add_argument("--out", metavar="PATH",
                         help="report path (default BENCH_<rev>.json)")
    bench_p.add_argument("--baseline", default=DEFAULT_BASELINE,
                         metavar="PATH",
                         help="baseline report to gate against "
                              f"(default {DEFAULT_BASELINE})")
    bench_p.add_argument("--max-regression", type=float, default=0.25,
                         metavar="FRAC",
                         help="allowed fractional drop in speedup / growth "
                              "in events (default 0.25)")
    bench_p.add_argument("--no-gate", action="store_true",
                         help="skip the baseline comparison (e.g. when "
                              "regenerating the baseline itself)")

    cmp_p = sub.add_parser(
        "compare", help="gate one existing report against another")
    cmp_p.add_argument("current", help="report under test (JSON)")
    cmp_p.add_argument("baseline", help="reference report (JSON)")
    cmp_p.add_argument("--max-regression", type=float, default=0.25,
                       metavar="FRAC")
    return parser


def _gate(current: dict, baseline_path: str, max_regression: float) -> int:
    baseline = load_report(baseline_path)
    print(f"\n{render_delta_table(current, baseline)}")
    problems = compare_reports(current, baseline,
                               max_regression=max_regression)
    if problems:
        print(f"\nperf gate vs {baseline_path}: FAIL")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"\nperf gate vs {baseline_path}: ok "
          f"({len(baseline.get('cases', []))} case(s), "
          f"max regression {max_regression:.0%})")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "compare":
        return _gate(load_report(args.current), args.baseline,
                     args.max_regression)

    report = run_bench(preset=args.preset, repeats=args.repeats,
                       jobs=args.jobs)
    print(render_report(report))
    out = args.out or f"BENCH_{current_rev()}.json"
    save_report(report, out)
    print(f"report: {len(DEFAULT_CASES)} case(s) -> {out}")
    if args.no_gate:
        return 0
    import os

    if not os.path.exists(args.baseline):
        print(f"perf gate: no baseline at {args.baseline}; skipping "
              "(commit one with --out BENCH_baseline.json --no-gate)")
        return 0
    return _gate(report, args.baseline, args.max_regression)


if __name__ == "__main__":
    sys.exit(main())
