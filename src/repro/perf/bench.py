"""Wall-clock benchmark harness for the simulator itself.

Every other module in this repository measures the *simulated* machine;
this one measures the *simulator*, so the run-until-miss fast path
(:mod:`repro.sim.fastpath`) and the event-kernel micro-optimizations
stay fast as the codebase grows.  ``python -m repro perf bench`` times a
fixed set of workload/model/core-count cases twice per case — once with
every acceleration hatch enabled (``REPRO_FASTPATH``, ``REPRO_BLOCKS``,
``REPRO_PHASES``, ``REPRO_STREAMS`` all ``1``) and once with all of them
disabled — and writes a ``BENCH_<rev>.json`` report with, per case:

* best-of-N wall time in both modes and the fast/slow **speedup**
  (median of the per-repeat slow/fast ratios, each pairing two
  back-to-back runs so host load drift divides out),
* **events/sec** and **simulated-ops/sec** (dispatch and retirement
  throughput of the event kernel),
* the deterministic fast-mode **event count** (the quantum-extension
  elision at work),
* the phase-engine counters — **phase_iters_retired** (iterations the
  closed-form phase arm retired) and **phase_coverage** (the fraction of
  dispatched phase iterations it retired) — so silent de-vectorization
  of a workload shows up in the committed baseline diff, and
* the stream-engine counters — **stream_iters_retired** and
  **stream_coverage** — the same guard for the streaming model's
  double-buffered DMA loops (:class:`~repro.core.ops.OpStream`).

Regression gating compares a fresh report against the committed
``BENCH_baseline.json``.  Absolute wall times are not comparable across
machines, so the gate checks two machine-independent quantities:

* the fast/slow speedup *ratio* (both sides measured in the same
  process, so host speed divides out), and
* the simulated event count, which is exactly reproducible.

Wall-clock reads are deliberate here — this module benchmarks the
simulator and never runs inside it — hence the targeted REPRO001
suppressions.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from dataclasses import asdict, dataclass

#: Report schema version (bump when the JSON layout changes).
SCHEMA = 3

#: Every acceleration hatch the simulator reads at construction time.
#: The bench pins ALL of them — fast leg all-on, slow leg all-off — so
#: an ambient ``REPRO_BLOCKS=0`` or ``REPRO_PHASES=0`` in the caller's
#: environment cannot silently cripple the fast leg and corrupt the
#: speedup gate.
_HATCH_VARS = ("REPRO_FASTPATH", "REPRO_BLOCKS", "REPRO_PHASES",
               "REPRO_STREAMS")

#: Baseline speedups below this are inside host timing noise (the case is
#: miss-path bound, so the fast path barely moves its wall time); gating
#: on their ratio would flake.  Such cases are still protected by the
#: deterministic event-count check — a disabled or broken fast path
#: inflates events by orders of magnitude, noise-free.
SPEEDUP_GATE_MIN = 1.25

#: No case may come in below this fast/slow ratio: a hatch whose
#: bookkeeping costs more than it saves on some case is a net loss and
#: must gain a cheaper ineligibility exit, not ride along.  Set under
#: 1.0 only to absorb host timing noise on ratio-~1.0 cases.
SPEEDUP_NET_LOSS_FLOOR = 0.95


@dataclass(frozen=True)
class BenchCase:
    """One benchmarked workload/configuration."""

    name: str
    workload: str
    model: str
    cores: int


#: The default case set: the two kernels the paper's Figure 2 leans on
#: hardest (FIR is miss-path bound, bitonic sort is dispatch/hit bound),
#: under both memory models, single- and multi-core — so a regression in
#: any layer (inline hit path, quantum extension, resource calendars,
#: DMA engine) moves at least one case.  The multi-core streaming cases
#: exercise the block interpreter's local-store closed form together
#: with the DMA engine's contiguous-command fast branch.  art-cc-c4 and
#: fem-cc-c4 cover the phase-descriptor dispatch path under barrier
#: pressure, and bitonic-str-c1 the sort's local-store mapping.
DEFAULT_CASES: tuple[BenchCase, ...] = (
    BenchCase("fir-cc-c1", "fir", "cc", 1),
    BenchCase("fir-str-c1", "fir", "str", 1),
    BenchCase("fir-cc-c4", "fir", "cc", 4),
    BenchCase("fir-str-c4", "fir", "str", 4),
    BenchCase("bitonic-cc-c1", "bitonic", "cc", 1),
    BenchCase("bitonic-cc-c4", "bitonic", "cc", 4),
    BenchCase("bitonic-str-c1", "bitonic", "str", 1),
    BenchCase("merge-str-c4", "merge", "str", 4),
    BenchCase("art-cc-c4", "art", "cc", 4),
    BenchCase("art-str-c1", "art", "str", 1),
    BenchCase("fem-cc-c4", "fem", "cc", 4),
    BenchCase("fem-str-c4", "fem", "str", 4),
)


def current_rev(default: str = "local") -> str:
    """The short git revision of the working tree, or ``default``."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except OSError:
        return default
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else default


def _run_case(case: BenchCase, preset: str, fastpath: bool):
    """One simulation of ``case`` with every hatch forced on or off."""
    from repro import run_workload

    saved = {var: os.environ.get(var) for var in _HATCH_VARS}
    for var in _HATCH_VARS:
        os.environ[var] = "1" if fastpath else "0"
    try:
        return run_workload(case.workload, model=case.model,
                            cores=case.cores, preset=preset)
    finally:
        for var, value in saved.items():
            if value is None:
                del os.environ[var]
            else:
                os.environ[var] = value


def _timed(case: BenchCase, preset: str, fastpath: bool):
    """One timed simulation; returns ``(seconds, result)``."""
    t0 = time.perf_counter()  # repro-lint: disable=REPRO001
    result = _run_case(case, preset, fastpath)
    elapsed = time.perf_counter() - t0  # repro-lint: disable=REPRO001
    return elapsed, result


def _median(sorted_values: list[float]) -> float:
    """Median of an already-sorted, non-empty list."""
    n = len(sorted_values)
    mid = n // 2
    if n % 2:
        return sorted_values[mid]
    return (sorted_values[mid - 1] + sorted_values[mid]) / 2.0


def bench_case(case: BenchCase, preset: str = "tiny",
               repeats: int = 3) -> dict:
    """Benchmark one case in both modes; returns the report record.

    The fast and slow legs alternate repeat by repeat (rather than all
    fast runs then all slow runs) so host load drifting over the
    measurement window lands on both legs roughly equally and mostly
    divides out of the gated speedup ratio.  The reported ``speedup``
    is the *median of the per-repeat ratios* — each ratio pairs a fast
    and a slow sample taken back to back, so a load spike that lands on
    one repeat skews one ratio, not the whole estimate; the ratio of
    best-of-N wall times, by contrast, is corrupted whenever the two
    minima come from differently-loaded moments of the window.
    """
    fast_s = slow_s = None
    fast = slow = None
    ratios = []
    for _ in range(repeats):
        fast_elapsed, fast = _timed(case, preset, fastpath=True)
        if fast_s is None or fast_elapsed < fast_s:
            fast_s = fast_elapsed
        slow_elapsed, slow = _timed(case, preset, fastpath=False)
        if slow_s is None or slow_elapsed < slow_s:
            slow_s = slow_elapsed
        if fast_elapsed > 0:
            ratios.append(slow_elapsed / fast_elapsed)
    ratios.sort()
    if fast.exec_time_fs != slow.exec_time_fs:
        raise RuntimeError(
            f"{case.name}: fast/slow modes disagree on simulated time "
            f"({fast.exec_time_fs} != {slow.exec_time_fs} fs); the fast "
            "path is broken — fix that before benchmarking it"
        )
    sim_ops = fast.instructions + fast.word_accesses
    retired = fast.stats.get("sim.phase_iters", 0)
    dispatched = fast.stats.get("sim.phase_iters_total", 0)
    st_retired = fast.stats.get("sim.stream_iters", 0)
    st_dispatched = fast.stats.get("sim.stream_iters_total", 0)
    return {
        **asdict(case),
        "preset": preset,
        "wall_s": fast_s,
        "slow_wall_s": slow_s,
        "speedup": (_median(ratios) if ratios
                    else (slow_s / fast_s if fast_s > 0 else 0.0)),
        "events": fast.stats["sim.events"],
        "slow_events": slow.stats["sim.events"],
        "events_per_s": slow.stats["sim.events"] / slow_s if slow_s else 0.0,
        "sim_ops": sim_ops,
        "sim_ops_per_s": sim_ops / fast_s if fast_s else 0.0,
        "exec_time_fs": fast.exec_time_fs,
        "phase_iters_retired": retired,
        "phase_coverage": retired / dispatched if dispatched else 0.0,
        "stream_iters_retired": st_retired,
        "stream_coverage": (st_retired / st_dispatched
                            if st_dispatched else 0.0),
    }


def _bench_case_args(args) -> dict:
    """Module-level worker for process pools (must be picklable)."""
    case, preset, repeats = args
    return bench_case(case, preset=preset, repeats=repeats)


def run_bench(cases=DEFAULT_CASES, preset: str = "tiny", repeats: int = 3,
              jobs: int = 1) -> dict:
    """Benchmark every case and return the full report dict.

    ``jobs > 1`` fans cases out over worker processes.  Parallel workers
    contend for the host CPU, which inflates *absolute* wall times a
    little; the gated quantities (speedup ratio, event counts) are
    measured within one worker each and stay meaningful.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    work = [(case, preset, repeats) for case in cases]
    if jobs > 1 and len(work) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
            records = list(pool.map(_bench_case_args, work))
    else:
        records = [_bench_case_args(item) for item in work]
    return {
        "schema": SCHEMA,
        "rev": current_rev(),
        "preset": preset,
        "repeats": repeats,
        "cases": records,
    }


def compare_reports(current: dict, baseline: dict,
                    max_regression: float = 0.25) -> list[str]:
    """Gate ``current`` against ``baseline``; returns the problems found.

    Two checks per baseline case, both machine-independent:

    * **speedup** — the fast/slow ratio may not drop more than
      ``max_regression`` (fractional) below the baseline's.  Skipped for
      cases whose baseline speedup is under :data:`SPEEDUP_GATE_MIN`:
      there the ratio is dominated by host noise, not the fast path;
    * **events** — the deterministic fast-mode event count may not grow
      more than ``max_regression`` above the baseline's (the
      quantum-extension elision regressing shows up here first, even on
      a noisy host).

    Additionally every *current* case (baseline or new) must clear the
    absolute :data:`SPEEDUP_NET_LOSS_FLOOR`: the hatches together may
    never make a case slower than the plain interpreter.  The floor
    only applies when the current report was taken with at least three
    repeats — per-case speedup is the median of per-repeat ratios, and
    with fewer samples a single noisy window (or first-run warm-up)
    dominates, making the absolute check meaningless.
    """
    problems: list[str] = []
    current_by_name = {c["name"]: c for c in current.get("cases", [])}
    if current.get("repeats", 0) >= 3:
        for cur in current.get("cases", []):
            if cur["speedup"] < SPEEDUP_NET_LOSS_FLOOR:
                problems.append(
                    f"{cur['name']}: fast leg is a net loss at "
                    f"{cur['speedup']:.3f}x (floor "
                    f"{SPEEDUP_NET_LOSS_FLOOR:.2f}x)"
                )
    for base in baseline.get("cases", []):
        name = base["name"]
        cur = current_by_name.get(name)
        if cur is None:
            problems.append(f"{name}: case missing from current report")
            continue
        floor = base["speedup"] * (1.0 - max_regression)
        if base["speedup"] >= SPEEDUP_GATE_MIN and cur["speedup"] < floor:
            problems.append(
                f"{name}: speedup regressed to {cur['speedup']:.2f}x "
                f"(baseline {base['speedup']:.2f}x, floor {floor:.2f}x)"
            )
        ceiling = base["events"] * (1.0 + max_regression)
        if cur["events"] > ceiling:
            problems.append(
                f"{name}: fast-mode events grew to {cur['events']} "
                f"(baseline {base['events']}, ceiling {ceiling:.0f})"
            )
    return problems


def render_report(report: dict) -> str:
    """Aligned ASCII-table rendering of a report."""
    from repro.harness.reports import format_table

    headers = ["case", "wall_ms", "slow_ms", "speedup", "events",
               "events/s", "sim_ops/s", "ph_iters", "ph_cov",
               "st_iters", "st_cov"]
    rows = [
        [c["name"], f"{c['wall_s'] * 1e3:.1f}", f"{c['slow_wall_s'] * 1e3:.1f}",
         f"{c['speedup']:.2f}x", str(c["events"]),
         f"{c['events_per_s']:,.0f}", f"{c['sim_ops_per_s']:,.0f}",
         str(c.get("phase_iters_retired", 0)),
         f"{c.get('phase_coverage', 0.0):.0%}",
         str(c.get("stream_iters_retired", 0)),
         f"{c.get('stream_coverage', 0.0):.0%}"]
        for c in report["cases"]
    ]
    return (f"simulator bench (rev {report['rev']}, preset "
            f"{report['preset']}, best of {report['repeats']})\n"
            + format_table(headers, rows))


def render_delta_table(current: dict, baseline: dict) -> str:
    """Per-case sim-ops/s delta of ``current`` against ``baseline``.

    Informational companion to :func:`compare_reports`: absolute
    throughput is machine-dependent, so the delta column is advisory on
    cross-host comparisons, but within one host it is the number the
    phase engine (and any other simulator optimization) exists to move.
    """
    from repro.harness.reports import format_table

    current_by_name = {c["name"]: c for c in current.get("cases", [])}
    headers = ["case", "base sim_ops/s", "cur sim_ops/s", "delta"]
    rows = []
    for base in baseline.get("cases", []):
        cur = current_by_name.pop(base["name"], None)
        if cur is None:
            rows.append([base["name"], f"{base['sim_ops_per_s']:,.0f}",
                         "-", "missing"])
            continue
        b, c = base["sim_ops_per_s"], cur["sim_ops_per_s"]
        delta = f"{(c / b - 1.0):+.1%}" if b else "n/a"
        rows.append([base["name"], f"{b:,.0f}", f"{c:,.0f}", delta])
    for name, cur in current_by_name.items():
        rows.append([name, "-", f"{cur['sim_ops_per_s']:,.0f}", "new"])
    return "sim-ops/s vs baseline\n" + format_table(headers, rows)


def save_report(report: dict, path) -> None:
    """Write a report as stable, diff-friendly JSON."""
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_report(path) -> dict:
    """Read a report written by :func:`save_report`."""
    with open(path) as fh:
        report = json.load(fh)
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: unsupported bench schema {report.get('schema')!r} "
            f"(expected {SCHEMA})"
        )
    return report
