"""Memory-access trace recording and offline analysis.

A :class:`TraceRecorder` attaches to a system before ``run()`` and
captures every demand access the cores make (time, core, load/store,
line number, observed latency).  Traces can be saved as JSON lines and
reloaded for offline analysis without re-simulating.

The analysis helpers answer the questions the paper's Section 2.3
reasons about qualitatively:

* :func:`reuse_distances` — per-access LRU stack distances, the
  capacity-independent locality profile ("would this working set fit in
  an X-line cache?"),
* :func:`hit_rate_for_capacity` — the miss ratio an LRU cache of a given
  size would achieve on the trace,
* :func:`latency_histogram` — where demand loads spent their time
  (L1 / L2 / DRAM bands),
* :func:`footprint` — distinct lines touched.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.units import ns_to_fs

if TYPE_CHECKING:
    from repro.core.system import CmpSystem


@dataclass(frozen=True)
class TraceRecord:
    """One demand access."""

    time_fs: int
    core: int
    kind: str          # "ld" or "st"
    line: int
    latency_fs: int


class TraceRecorder:
    """Captures every demand access of a system run.

    Attaching a recorder installs the hierarchy's per-access
    ``trace_hook``, which disables the run-until-miss fast path for as
    long as it is attached (``hierarchy.fastpath_safe``).  Use the
    recorder as a context manager so the hook is removed even when the
    run raises — a leaked hook would silently pin every later run on
    the same system to the slow path::

        with TraceRecorder(system) as recorder:
            result = system.run()
        recorder.save("trace.jsonl")
    """

    def __init__(self, system: "CmpSystem") -> None:
        self.system = system
        self.records: list[TraceRecord] = []
        if system.hierarchy.trace_hook is not None:
            raise RuntimeError("system already has a trace recorder")
        system.hierarchy.trace_hook = self._record

    def _record(self, time_fs: int, core: int, kind: str, line: int,
                latency_fs: int) -> None:
        self.records.append(TraceRecord(time_fs, core, kind, line, latency_fs))

    def detach(self) -> None:
        """Stop recording (removes the hierarchy hook).

        Idempotent, and careful not to evict a *different* recorder: the
        hook is cleared only while it is still this recorder's own, so
        ``detach()`` after a re-attach elsewhere is a no-op.
        """
        if self.system.hierarchy.trace_hook == self._record:
            self.system.hierarchy.trace_hook = None

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.detach()

    def __len__(self) -> int:
        return len(self.records)

    def save(self, path) -> None:
        """Write the trace as JSON lines."""
        with open(path, "w") as handle:
            for r in self.records:
                handle.write(json.dumps(
                    [r.time_fs, r.core, r.kind, r.line, r.latency_fs]))
                handle.write("\n")

    @staticmethod
    def load(path) -> list[TraceRecord]:
        """Read a trace written by :meth:`save`."""
        records = []
        with open(path) as handle:
            for line in handle:
                time_fs, core, kind, line_no, latency = json.loads(line)
                records.append(TraceRecord(time_fs, core, kind, line_no,
                                           latency))
        return records


# ----------------------------------------------------------------------
# Offline analysis
# ----------------------------------------------------------------------

def reuse_distances(records: Iterable[TraceRecord],
                    core: int | None = None) -> list[int]:
    """LRU stack distance of every access (-1 for cold accesses).

    Distance *d* means the line was the (d+1)-th most recently used at
    the time of the access: an LRU cache with more than *d* lines would
    have hit.
    """
    stack: list[int] = []         # MRU at the end
    position: dict[int, int] = {}
    distances: list[int] = []
    for record in records:
        if core is not None and record.core != core:
            continue
        line = record.line
        if line in position:
            # Distance = number of distinct lines used since last touch.
            index = stack.index(line)
            distances.append(len(stack) - 1 - index)
            stack.pop(index)
        else:
            distances.append(-1)
        stack.append(line)
        position[line] = True
    return distances


def hit_rate_for_capacity(records: list[TraceRecord], capacity_lines: int,
                          core: int | None = None) -> float:
    """Hit rate of an ideal fully-associative LRU cache of the given size."""
    if capacity_lines <= 0:
        raise ValueError(f"capacity must be positive, got {capacity_lines}")
    distances = reuse_distances(records, core)
    if not distances:
        return 0.0
    hits = sum(1 for d in distances if 0 <= d < capacity_lines)
    return hits / len(distances)


#: Latency bands for classifying where a demand load was served.
_BANDS = (
    ("l1", ns_to_fs(1)),
    ("near", ns_to_fs(35)),      # cluster / L2 hits
    ("dram", ns_to_fs(10_000)),
)


def latency_histogram(records: Iterable[TraceRecord]) -> dict[str, int]:
    """Count demand loads by service band (l1 / near [L2, c2c] / dram)."""
    histogram = Counter(l1=0, near=0, dram=0)
    for record in records:
        if record.kind != "ld":
            continue
        for band, limit in _BANDS:
            if record.latency_fs < limit:
                histogram[band] += 1
                break
        else:
            histogram["dram"] += 1
    return dict(histogram)


def footprint(records: Iterable[TraceRecord]) -> int:
    """Number of distinct cache lines touched."""
    return len({r.line for r in records})
