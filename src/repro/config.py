"""Machine configuration mirroring Table 2 of the paper.

The defaults reproduce the bolded values of Table 2:

* 8 Tensilica-LX-class 3-way VLIW cores at 800 MHz (the paper sweeps
  1/2/4/8/16 cores; experiments pass ``num_cores`` explicitly),
* per-core 16 KB 2-way I-cache,
* first-level data storage: 32 KB 2-way D-cache (cache-coherent model) or
  a 24 KB local store + 8 KB 2-way cache (streaming model),
* clusters of four cores on a 32-byte bidirectional bus (2-cycle latency),
* a global crossbar with 16-byte ports and 2.5 ns pipelined latency,
* a shared 512 KB 16-way L2 with 2.2 ns access latency, non-inclusive,
* one memory channel at 6.4 GB/s with 70 ns random-access latency.

All latencies for the uncore are fixed in nanoseconds: Section 5.3 scales
the core clock while "keeping constant the bandwidth and latency in the
on-chip networks, L2 cache, and off-chip memory".
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field, replace

from repro.units import KIB, MIB, ghz_to_period_fs, gbps_to_fs_per_byte, ns_to_fs


class MemoryModel(enum.Enum):
    """The on-chip memory models of the paper's design space (Table 1).

    The paper's comparison covers the two highlighted options — coherent
    caches and streaming memory.  The third practical point, *incoherent*
    caches (hardware locality, software communication), is "briefly
    discussed in Section 7" and implemented here as an extension: caches
    without any coherence actions, with software flush/invalidate
    operations for the rare communication points.  It is only valid for
    applications whose threads write disjoint cache lines between
    synchronization points.
    """

    CACHE_COHERENT = "cc"
    STREAMING = "str"
    INCOHERENT = "icc"

    @classmethod
    def parse(cls, value: "MemoryModel | str") -> "MemoryModel":
        """Accept a MemoryModel or one of the strings 'cc' / 'str' / 'icc'."""
        if isinstance(value, cls):
            return value
        for member in cls:
            if value == member.value:
                return member
        raise ValueError(
            f"unknown memory model {value!r}; expected 'cc', 'str', or 'icc'"
        )


class CoherenceKind(enum.Enum):
    """How remote lookups are located (Section 2.1).

    The paper's system broadcasts snoops cluster-first; a directory that
    tracks sharers avoids the broadcast tag lookups at the cost of a
    directory access per miss — the classic filter for scaling coherence
    (the default reproduces the paper).
    """

    BROADCAST = "broadcast"
    DIRECTORY = "directory"


class WritePolicy(enum.Enum):
    """Write-miss allocation policy for a cache."""

    WRITE_ALLOCATE = "write-allocate"
    NO_WRITE_ALLOCATE = "no-write-allocate"


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one set-associative cache."""

    capacity_bytes: int
    associativity: int
    line_bytes: int = 32
    write_policy: WritePolicy = WritePolicy.WRITE_ALLOCATE

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity_bytes}")
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError(f"line size must be a positive power of two, got {self.line_bytes}")
        if self.associativity <= 0:
            raise ValueError(f"associativity must be positive, got {self.associativity}")
        num_lines = self.capacity_bytes // self.line_bytes
        if num_lines * self.line_bytes != self.capacity_bytes:
            raise ValueError("capacity must be a multiple of the line size")
        if num_lines % self.associativity:
            raise ValueError(
                f"{num_lines} lines not divisible by associativity {self.associativity}"
            )
        num_sets = num_lines // self.associativity
        if num_sets & (num_sets - 1):
            raise ValueError(f"number of sets must be a power of two, got {num_sets}")

    @property
    def num_lines(self) -> int:
        """Total cache lines."""
        return self.capacity_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        """Number of sets (lines / associativity)."""
        return self.num_lines // self.associativity


@dataclass(frozen=True)
class PrefetcherConfig:
    """Tagged stream prefetcher (Section 3.2, modelled after VanderWiel/Lilja).

    Keeps a history of the last ``history_size`` cache misses to identify
    sequential streams, tracks up to ``num_streams`` concurrent streams, and
    runs ``depth`` cache lines ahead of the latest miss.
    """

    enabled: bool = False
    depth: int = 4
    num_streams: int = 4
    history_size: int = 8

    def __post_init__(self) -> None:
        if self.depth <= 0:
            raise ValueError(f"prefetch depth must be positive, got {self.depth}")
        if self.num_streams <= 0:
            raise ValueError(f"num_streams must be positive, got {self.num_streams}")
        if self.history_size <= 0:
            raise ValueError(f"history_size must be positive, got {self.history_size}")


@dataclass(frozen=True)
class DramConfig:
    """One off-chip memory channel.

    The default is the paper's flat 70 ns random-access latency.  Setting
    ``banks > 1`` together with ``row_hit_latency_ns`` enables the
    optional DRAMsim-flavoured open-row model: accesses hitting a bank's
    open row pay the short latency instead (extension; not used by any
    paper figure).
    """

    bandwidth_gbps: float = 6.4
    latency_ns: float = 70.0
    channels: int = 1
    interleave_bytes: int = 256
    banks: int = 1
    row_bytes: int = 2048
    row_hit_latency_ns: float | None = None

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_gbps}")
        if self.latency_ns < 0:
            raise ValueError(f"latency must be non-negative, got {self.latency_ns}")
        if self.channels <= 0:
            raise ValueError(f"channel count must be positive, got {self.channels}")
        if self.interleave_bytes <= 0 or self.interleave_bytes & (self.interleave_bytes - 1):
            raise ValueError(
                f"channel interleave must be a power of two, got {self.interleave_bytes}")
        if self.banks <= 0:
            raise ValueError(f"bank count must be positive, got {self.banks}")
        if self.row_bytes <= 0 or self.row_bytes & (self.row_bytes - 1):
            raise ValueError(f"row size must be a power of two, got {self.row_bytes}")
        if self.row_hit_latency_ns is not None:
            if not 0 <= self.row_hit_latency_ns <= self.latency_ns:
                raise ValueError(
                    "row-hit latency must be between 0 and the random-access "
                    f"latency, got {self.row_hit_latency_ns}"
                )

    @property
    def fs_per_byte(self) -> int:
        """Cost per byte of ONE channel (each channel has the full rate)."""
        return gbps_to_fs_per_byte(self.bandwidth_gbps)

    @property
    def latency_fs(self) -> int:
        """Random-access latency in femtoseconds."""
        return ns_to_fs(self.latency_ns)


@dataclass(frozen=True)
class InterconnectConfig:
    """The hierarchical interconnect of Figure 1 / Table 2.

    Latencies are fixed in nanoseconds (Table 2 expresses the local bus as
    "2 cycle latency" at the 800 MHz baseline clock, i.e. 2.5 ns).
    """

    cluster_size: int = 4
    bus_width_bytes: int = 32
    bus_latency_ns: float = 2.5
    bus_cycle_ns: float = 1.25
    crossbar_width_bytes: int = 16
    crossbar_latency_ns: float = 2.5
    crossbar_cycle_ns: float = 1.25

    def __post_init__(self) -> None:
        if self.cluster_size <= 0:
            raise ValueError(f"cluster size must be positive, got {self.cluster_size}")
        if self.bus_width_bytes <= 0 or self.crossbar_width_bytes <= 0:
            raise ValueError("interconnect widths must be positive")
        if min(self.bus_latency_ns, self.bus_cycle_ns,
               self.crossbar_latency_ns, self.crossbar_cycle_ns) <= 0:
            raise ValueError("interconnect latencies must be positive")


@dataclass(frozen=True)
class StreamConfig:
    """Streaming-model resources: local store and DMA engine (Section 3.3)."""

    local_store_bytes: int = 24 * KIB
    dma_granule_bytes: int = 32
    dma_max_outstanding: int = 16
    dma_setup_instructions: int = 12

    def __post_init__(self) -> None:
        if self.local_store_bytes <= 0:
            raise ValueError("local store size must be positive")
        if self.dma_granule_bytes <= 0 or self.dma_granule_bytes & (self.dma_granule_bytes - 1):
            raise ValueError("DMA granule must be a positive power of two")
        if self.dma_max_outstanding <= 0:
            raise ValueError("DMA outstanding limit must be positive")
        if self.dma_setup_instructions < 0:
            raise ValueError("DMA setup cost must be non-negative")


@dataclass(frozen=True)
class CoreConfig:
    """In-order 3-way VLIW core (Tensilica LX class)."""

    clock_ghz: float = 0.8
    issue_width: int = 3
    load_store_slots: int = 1
    store_buffer_entries: int = 8
    mshr_entries: int = 8

    def __post_init__(self) -> None:
        if self.clock_ghz <= 0:
            raise ValueError(f"clock must be positive, got {self.clock_ghz}")
        if self.issue_width <= 0 or self.load_store_slots <= 0:
            raise ValueError("issue width and load/store slots must be positive")
        if self.store_buffer_entries <= 0:
            raise ValueError("store buffer must have at least one entry")
        if self.mshr_entries <= 0:
            raise ValueError("MSHR count must be positive")

    @property
    def cycle_fs(self) -> int:
        """Core clock period in femtoseconds."""
        return ghz_to_period_fs(self.clock_ghz)


@dataclass(frozen=True)
class MachineConfig:
    """The full CMP configuration (Table 2).

    ``num_cores`` is the number of processors (1-16 in the paper).  The
    remaining blocks default to the bolded Table 2 values.
    """

    num_cores: int = 8
    model: MemoryModel = MemoryModel.CACHE_COHERENT
    core: CoreConfig = field(default_factory=CoreConfig)
    icache: CacheConfig = field(
        default_factory=lambda: CacheConfig(capacity_bytes=16 * KIB, associativity=2)
    )
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(capacity_bytes=32 * KIB, associativity=2)
    )
    stream_l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(capacity_bytes=8 * KIB, associativity=2)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(capacity_bytes=512 * KIB, associativity=16)
    )
    l2_latency_ns: float = 2.2
    prefetch: PrefetcherConfig = field(default_factory=PrefetcherConfig)
    coherence: CoherenceKind = CoherenceKind.BROADCAST
    dram: DramConfig = field(default_factory=DramConfig)
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)
    stream: StreamConfig = field(default_factory=StreamConfig)
    quantum_cycles: int = 200
    #: Attach the runtime invariant monitors of repro.analysis.monitors:
    #: every memory-system state change is checked for coherence, DMA
    #: overlap, local-store, and event-queue invariants, and violations
    #: raise InvariantViolation with cycle-stamped context.  Costs
    #: simulation speed; off by default.
    debug_invariants: bool = False

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ValueError(f"num_cores must be positive, got {self.num_cores}")
        if self.l2_latency_ns <= 0:
            raise ValueError("L2 latency must be positive")
        if self.quantum_cycles <= 0:
            raise ValueError("quantum must be positive")

    @property
    def num_clusters(self) -> int:
        """Clusters needed for num_cores (rounded up)."""
        size = self.interconnect.cluster_size
        return (self.num_cores + size - 1) // size

    @property
    def line_bytes(self) -> int:
        """The system-wide cache-line size."""
        return self.l1.line_bytes

    def with_(self, **changes: object) -> "MachineConfig":
        """Return a copy with the given top-level fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def with_cores(self, num_cores: int) -> "MachineConfig":
        """Copy with a different core count."""
        return self.with_(num_cores=num_cores)

    def with_clock(self, ghz: float) -> "MachineConfig":
        """Copy with a different core clock."""
        return self.with_(core=replace(self.core, clock_ghz=ghz))

    def with_bandwidth(self, gbps: float) -> "MachineConfig":
        """Copy with a different memory-channel bandwidth."""
        return self.with_(dram=replace(self.dram, bandwidth_gbps=gbps))

    def with_prefetch(self, depth: int = 4) -> "MachineConfig":
        """Copy with the hardware prefetcher enabled."""
        return self.with_(prefetch=replace(self.prefetch, enabled=True, depth=depth))

    def with_model(self, model: MemoryModel | str) -> "MachineConfig":
        """Copy under a different memory model."""
        return self.with_(model=MemoryModel.parse(model))

    def with_debug_invariants(self, enabled: bool = True) -> "MachineConfig":
        """Copy with the runtime invariant monitors on (or off)."""
        return self.with_(debug_invariants=enabled)

    def with_overrides(self, overrides: dict) -> "MachineConfig":
        """Copy with dotted-path field overrides applied.

        Keys are either top-level field names (``"quantum_cycles"``) or
        ``"block.field"`` paths into the nested config blocks
        (``"l1.capacity_bytes"``, ``"dram.channels"``,
        ``"prefetch.depth"``, ...).  This is the generic knob surface the
        design-space tuner (:mod:`repro.tune`) sweeps through
        :class:`~repro.grid.spec.RunSpec.config_overrides`; each nested
        block is rebuilt with ``dataclasses.replace`` so its own
        validation runs.  Unknown blocks or fields raise
        :class:`ValueError` rather than silently changing nothing.
        """
        grouped: dict[str, dict] = {}
        top: dict[str, object] = {}
        for path, value in overrides.items():
            if "." in path:
                block, field_name = path.split(".", 1)
                grouped.setdefault(block, {})[field_name] = value
            else:
                top[path] = value
        field_names = {f.name for f in dataclasses.fields(self)}
        changes: dict[str, object] = {}
        for block, block_fields in grouped.items():
            if block not in field_names:
                raise ValueError(
                    f"unknown configuration block {block!r} in override "
                    f"{block}.{next(iter(block_fields))!r}")
            current = getattr(self, block)
            if not dataclasses.is_dataclass(current):
                raise ValueError(
                    f"configuration field {block!r} is not a block; "
                    f"override it directly")
            try:
                changes[block] = replace(current, **block_fields)
            except TypeError as exc:
                raise ValueError(
                    f"bad override field(s) for block {block!r}: {exc}"
                ) from None
        for name, value in top.items():
            if name not in field_names:
                raise ValueError(f"unknown configuration field {name!r}")
            changes[name] = value
        return self.with_(**changes) if changes else self


    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-serializable description of the full configuration."""
        raw = dataclasses.asdict(self)
        raw["model"] = self.model.value
        raw["coherence"] = self.coherence.value
        for cache_key in ("icache", "l1", "stream_l1", "l2"):
            raw[cache_key]["write_policy"] = getattr(self, cache_key).write_policy.value
        return raw

    @classmethod
    def from_dict(cls, data: dict) -> "MachineConfig":
        """Rebuild a configuration written by :meth:`to_dict`.

        Unknown keys are rejected so stale config files fail loudly.
        """
        data = dict(data)

        def cache(block: dict) -> CacheConfig:
            block = dict(block)
            if "write_policy" in block:
                block["write_policy"] = WritePolicy(block["write_policy"])
            return CacheConfig(**block)

        builders = {
            "core": lambda b: CoreConfig(**b),
            "icache": cache,
            "l1": cache,
            "stream_l1": cache,
            "l2": cache,
            "prefetch": lambda b: PrefetcherConfig(**b),
            "dram": lambda b: DramConfig(**b),
            "interconnect": lambda b: InterconnectConfig(**b),
            "stream": lambda b: StreamConfig(**b),
        }
        kwargs: dict = {}
        for key, value in data.items():
            if key == "model":
                kwargs["model"] = MemoryModel.parse(value)
            elif key == "coherence":
                kwargs["coherence"] = CoherenceKind(value)
            elif key in builders:
                kwargs[key] = builders[key](value)
            elif key in ("num_cores", "l2_latency_ns", "quantum_cycles",
                         "debug_invariants"):
                kwargs[key] = value
            else:
                raise ValueError(f"unknown configuration key {key!r}")
        return cls(**kwargs)

    def save(self, path) -> None:
        """Write the configuration as JSON."""
        import json
        import pathlib

        pathlib.Path(path).write_text(json.dumps(self.to_dict(), indent=2,
                                                 sort_keys=True) + "\n")

    @classmethod
    def load(cls, path) -> "MachineConfig":
        """Read a configuration written by :meth:`save`."""
        import json
        import pathlib

        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))


DEFAULT_CONFIG = MachineConfig()

__all__ = [
    "MemoryModel",
    "WritePolicy",
    "CoherenceKind",
    "CacheConfig",
    "PrefetcherConfig",
    "DramConfig",
    "InterconnectConfig",
    "StreamConfig",
    "CoreConfig",
    "MachineConfig",
    "DEFAULT_CONFIG",
    "KIB",
    "MIB",
]
