"""Bus and crossbar models.

Transfers occupy a link for ``ceil(bytes / width)`` link cycles and
complete after an additional fixed pipeline latency.  There is buffering
at all interfaces (Table 2), which the occupancy model captures by letting
requests queue at each link independently.
"""

from __future__ import annotations

from repro.config import InterconnectConfig
from repro.sim.resources import _MAX_INTERVALS, _TRIM_AT, OccupancyResource
from repro.units import ns_to_fs


class _Link(OccupancyResource):
    """A link with width-quantized service time.

    ``transfer`` and ``control`` inline :meth:`OccupancyResource.acquire`'s
    calendar-tail fast path (an exact copy of its logic): every miss walk
    and every DMA granule crosses two or three links, making these the
    busiest ``acquire`` callers in the system.
    """

    __slots__ = ("width_bytes", "cycle_fs", "bytes_moved")

    def __init__(self, name: str, width_bytes: int, cycle_ns: float,
                 latency_ns: float) -> None:
        super().__init__(name, latency_fs=ns_to_fs(latency_ns))
        self.width_bytes = width_bytes
        self.cycle_fs = ns_to_fs(cycle_ns)
        self.bytes_moved = 0

    def transfer(self, now_fs: int, num_bytes: int) -> int:
        """Move ``num_bytes`` over the link; returns the completion time."""
        if num_bytes < 0:
            raise ValueError(f"{self.name}: negative transfer {num_bytes}")
        self.bytes_moved += num_bytes
        cycles = -(-num_bytes // self.width_bytes) or 1
        service = cycles * self.cycle_fs
        ends = self._ends
        if not ends or now_fs >= ends[-1]:
            self.busy_fs += service
            self.requests += 1
            end = now_fs + service
            if ends and ends[-1] == now_fs:
                ends[-1] = end
            else:
                starts = self._starts
                starts.append(now_fs)
                ends.append(end)
                if len(starts) >= _TRIM_AT:
                    del starts[:_MAX_INTERVALS]
                    del ends[:_MAX_INTERVALS]
            return end + self.latency_fs
        _, done = self.acquire(now_fs, service)
        return done

    def control(self, now_fs: int) -> int:
        """A control-only message (request, invalidate): one link cycle."""
        service = self.cycle_fs
        ends = self._ends
        if not ends or now_fs >= ends[-1]:
            self.busy_fs += service
            self.requests += 1
            end = now_fs + service
            if ends and ends[-1] == now_fs:
                ends[-1] = end
            else:
                starts = self._starts
                starts.append(now_fs)
                ends.append(end)
                if len(starts) >= _TRIM_AT:
                    del starts[:_MAX_INTERVALS]
                    del ends[:_MAX_INTERVALS]
            return end + self.latency_fs
        _, done = self.acquire(now_fs, service)
        return done


class ClusterBus:
    """The wide bidirectional intra-cluster bus (32 bytes, 2-cycle latency).

    The bus is bidirectional (Table 2), so requests flowing out of the
    cluster and responses flowing back are carried on separate directions
    (``req`` / ``resp``) that contend independently.  Modelling them as a
    single resource would falsely serialize a core's next *request* behind
    the in-flight *response* of its previous buffered store.
    """

    def __init__(self, cluster_id: int, config: InterconnectConfig) -> None:
        self.cluster_id = cluster_id
        self.req = _Link(
            f"bus.{cluster_id}.req",
            width_bytes=config.bus_width_bytes,
            cycle_ns=config.bus_cycle_ns,
            latency_ns=config.bus_latency_ns,
        )
        self.resp = _Link(
            f"bus.{cluster_id}.resp",
            width_bytes=config.bus_width_bytes,
            cycle_ns=config.bus_cycle_ns,
            latency_ns=config.bus_latency_ns,
        )

    @property
    def bytes_moved(self) -> int:
        """Bytes carried on both directions (for energy accounting)."""
        return self.req.bytes_moved + self.resp.bytes_moved

    def links(self) -> tuple[_Link, _Link]:
        """Both directions, for metric enumeration (req first)."""
        return (self.req, self.resp)


class CrossbarPort(_Link):
    """One direction of a cluster's (or L2 bank's) crossbar port (16 bytes)."""

    __slots__ = ()

    def __init__(self, name: str, config: InterconnectConfig) -> None:
        super().__init__(
            name,
            width_bytes=config.crossbar_width_bytes,
            cycle_ns=config.crossbar_cycle_ns,
            latency_ns=config.crossbar_latency_ns,
        )


class Crossbar:
    """The global crossbar: an up and a down port per cluster.

    ``up`` carries requests and write data toward the L2 / memory side;
    ``down`` carries responses back to the cluster.
    """

    def __init__(self, num_clusters: int, config: InterconnectConfig) -> None:
        if num_clusters <= 0:
            raise ValueError(f"need at least one cluster, got {num_clusters}")
        self.up = [CrossbarPort(f"xbar.up.{c}", config) for c in range(num_clusters)]
        self.down = [CrossbarPort(f"xbar.down.{c}", config) for c in range(num_clusters)]

    @property
    def bytes_moved(self) -> int:
        """Bytes carried on every port (for energy accounting)."""
        return sum(p.bytes_moved for p in self.up) + sum(p.bytes_moved for p in self.down)

    def links(self) -> tuple[CrossbarPort, ...]:
        """Every port (all up, then all down), for metric enumeration."""
        return tuple(self.up) + tuple(self.down)
