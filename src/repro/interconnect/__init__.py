"""Hierarchical on-chip interconnect (Figure 1).

Cores are grouped in clusters of four around a wide bidirectional bus
(the *local network*); a global crossbar connects the clusters to the
second-level cache banks.  Both are modelled as occupancy resources with
width-quantized service times and fixed pipeline latencies (Table 2).
"""

from repro.interconnect.fabric import ClusterBus, Crossbar, CrossbarPort

__all__ = ["ClusterBus", "Crossbar", "CrossbarPort"]
