"""Human-readable metrics report for one finished run."""

from __future__ import annotations

from repro.obs.metrics import GAUGE, MetricsRegistry


def render_report(system, result,
                  registry: MetricsRegistry | None = None) -> str:
    """A grouped text report of every non-zero metric after a run.

    ``system`` must have finished running (``result`` is its
    :class:`~repro.results.RunResult`).  Counters that stayed zero are
    suppressed; gauges always print.  ``busy_fs`` counters additionally
    show utilization over the settled duration.
    """
    if registry is None:
        registry = MetricsRegistry.from_system(system)
    values = registry.collect()
    duration = max(result.exec_time_fs, result.settled_fs) or 1

    lines = [f"observability report: {result.workload}/{result.model}, "
             f"{result.num_cores} cores, {result.exec_time_ms:.3f} ms "
             f"({len(registry)} metrics)"]
    for component, metrics in registry.components().items():
        body = []
        for metric in metrics:
            value = values[metric.name]
            if value == 0 and metric.kind != GAUGE:
                continue
            extra = ""
            if metric.name.endswith(".busy_fs"):
                util = min(1.0, value / duration)
                extra = f"  ({util * 100:.1f}% util)"
            body.append(f"    {metric.name:<28} {value:>16,} "
                        f"{metric.unit}{extra}")
        if body:
            lines.append(f"  {component}")
            lines.extend(body)
    return "\n".join(lines)


__all__ = ["render_report"]
