"""Fastpath-compatible metrics: a pull-model registry over live counters.

The simulator's components already keep cheap cumulative counters —
cache statistics on the hierarchy, ``busy_fs`` / ``wait_fs`` /
``bytes_moved`` on every occupancy resource, command counts on the DMA
engines.  A :class:`MetricsRegistry` is nothing but a *named catalog of
readers* over that existing state: registering metrics attaches **no
hooks** and adds **no per-access work**, so ``hierarchy.fastpath_safe``
stays true and a run with metrics enabled is bit-identical to an
uninstrumented run.

Values are pulled at scheduling boundaries (end of run, or between
sampling windows via :class:`repro.obs.sampler.MetricsSampler`) — the
same points where the processor fast path folds its batched statistics
into the shared counters, so a pull always observes a consistent state.

Two metric kinds:

* ``counter`` — monotonically non-decreasing cumulative totals
  (operation counts, bytes moved, busy time).  Time series report their
  per-interval *deltas*.
* ``gauge`` — instantaneous levels (cache occupancy, local-store
  allocation).  Time series report the sampled value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

#: Metric kinds.
COUNTER = "counter"
GAUGE = "gauge"


@dataclass(frozen=True)
class Metric:
    """One named, typed reader over a component's live state."""

    name: str                  # dotted, unique: "dram.ch.0.bytes_moved"
    component: str             # grouping key: "dram.ch.0"
    kind: str                  # COUNTER or GAUGE
    unit: str                  # "ops", "bytes", "fs", "lines", ...
    read: Callable[[], int | float] = field(compare=False)

    def __post_init__(self) -> None:
        if self.kind not in (COUNTER, GAUGE):
            raise ValueError(f"{self.name}: unknown metric kind {self.kind!r}")

    def value(self) -> int | float:
        """The current value (a plain attribute read underneath)."""
        return self.read()


class MetricsRegistry:
    """An ordered catalog of metrics, with pull-model collection."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def register(self, metric: Metric) -> Metric:
        """Add one metric; duplicate names are rejected loudly."""
        if metric.name in self._metrics:
            raise ValueError(f"duplicate metric name {metric.name!r}")
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, component: str, unit: str,
                read: Callable[[], int | float]) -> Metric:
        """Register a cumulative counter."""
        return self.register(Metric(name, component, COUNTER, unit, read))

    def gauge(self, name: str, component: str, unit: str,
              read: Callable[[], int | float]) -> Metric:
        """Register an instantaneous gauge."""
        return self.register(Metric(name, component, GAUGE, unit, read))

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    def get(self, name: str) -> Metric:
        """The metric registered under ``name`` (KeyError when absent)."""
        return self._metrics[name]

    def names(self) -> list[str]:
        """Every metric name, in registration order."""
        return list(self._metrics)

    def components(self) -> dict[str, list[Metric]]:
        """Metrics grouped by component, in registration order."""
        groups: dict[str, list[Metric]] = {}
        for metric in self._metrics.values():
            groups.setdefault(metric.component, []).append(metric)
        return groups

    def collect(self) -> dict[str, int | float]:
        """Pull every metric once: name -> current value."""
        return {name: metric.read() for name, metric in self._metrics.items()}

    def deltas(self, before: dict | None,
               after: dict) -> dict[str, int | float]:
        """Per-interval view between two :meth:`collect` snapshots.

        Counters become ``after - before`` (``before=None`` means the
        start of time, i.e. all zeros); gauges pass through as the
        ``after`` sample.
        """
        out: dict[str, int | float] = {}
        for name, metric in self._metrics.items():
            value = after[name]
            if metric.kind == COUNTER:
                value -= before[name] if before is not None else 0
            out[name] = value
        return out

    # ------------------------------------------------------------------
    # System enumeration
    # ------------------------------------------------------------------

    @classmethod
    def from_system(cls, system) -> "MetricsRegistry":
        """Enumerate every instrumentable component of a ``CmpSystem``.

        Covers the cores, the per-core L1s (and local stores / DMA
        engines on the streaming model), the hierarchy's aggregate cache
        statistics, the shared L2 and its banks, every interconnect link
        (cluster buses and crossbar ports), the DRAM channels, and the
        simulator itself.  Pure enumeration: nothing is attached to the
        system and ``hierarchy.fastpath_safe`` is left untouched.
        """
        registry = cls()
        hierarchy = system.hierarchy
        uncore = hierarchy.uncore
        sim = system.sim

        registry.counter("sim.events", "sim", "events",
                         lambda: sim.events_processed)
        registry.gauge("sim.now_fs", "sim", "fs", lambda: sim.now)

        for p in system.processors:
            comp = f"core.{p.core_id}"
            registry.counter(f"{comp}.instructions", comp, "ops",
                             lambda p=p: p.instructions)
            registry.counter(f"{comp}.word_accesses", comp, "ops",
                             lambda p=p: p.word_accesses)
            registry.counter(f"{comp}.useful_fs", comp, "fs",
                             lambda p=p: p.useful_fs)

        for i, l1 in enumerate(hierarchy.l1s):
            registry.gauge(f"l1.{i}.occupancy", f"l1.{i}", "lines",
                           l1.occupancy)

        for stat in ("load_ops", "store_ops", "load_misses", "store_misses",
                     "upgrades", "l1_writebacks", "invalidations_sent",
                     "cache_to_cache", "prefetches_issued", "prefetch_useful"):
            registry.counter(f"l1.{stat}", "l1", "ops",
                             lambda stat=stat: getattr(hierarchy, stat))

        for stat in ("l2_reads", "l2_read_hits", "l2_writes", "l2_write_hits",
                     "l2_writebacks", "l2_refills_avoided"):
            registry.counter(f"l2.{stat.removeprefix('l2_')}", "l2", "ops",
                             lambda stat=stat: getattr(uncore, stat))
        registry.gauge("l2.occupancy", "l2", "lines", uncore.l2.occupancy)
        for b, bank in enumerate(uncore.l2_banks):
            comp = f"l2.bank.{b}"
            registry.counter(f"{comp}.requests", comp, "ops",
                             lambda bank=bank: bank.requests)
            registry.counter(f"{comp}.busy_fs", comp, "fs",
                             lambda bank=bank: bank.busy_fs)
            registry.counter(f"{comp}.wait_fs", comp, "fs",
                             lambda bank=bank: bank.wait_fs)

        dram = uncore.dram
        for stat in ("read_bytes", "write_bytes"):
            registry.counter(f"dram.{stat}", "dram", "bytes",
                             lambda stat=stat: getattr(dram, stat))
        for stat in ("read_accesses", "write_accesses"):
            registry.counter(f"dram.{stat}", "dram", "ops",
                             lambda stat=stat: getattr(dram, stat))
        for c, channel in enumerate(dram.channels()):
            comp = f"dram.ch.{c}"
            registry.counter(f"{comp}.bytes_moved", comp, "bytes",
                             lambda channel=channel: channel.bytes_moved)
            registry.counter(f"{comp}.busy_fs", comp, "fs",
                             lambda channel=channel: channel.busy_fs)
            registry.counter(f"{comp}.wait_fs", comp, "fs",
                             lambda channel=channel: channel.wait_fs)

        links = [link for bus in uncore.buses for link in bus.links()]
        links.extend(uncore.xbar.links())
        for link in links:
            comp = link.name       # e.g. "bus.0.req", "xbar.up.1"
            registry.counter(f"{comp}.bytes_moved", comp, "bytes",
                             lambda link=link: link.bytes_moved)
            registry.counter(f"{comp}.requests", comp, "ops",
                             lambda link=link: link.requests)
            registry.counter(f"{comp}.busy_fs", comp, "fs",
                             lambda link=link: link.busy_fs)
            registry.counter(f"{comp}.wait_fs", comp, "fs",
                             lambda link=link: link.wait_fs)

        for i, engine in enumerate(getattr(hierarchy, "dma_engines", ())):
            comp = f"dma.{i}"
            registry.counter(f"{comp}.commands", comp, "ops",
                             lambda engine=engine: engine.commands)
            registry.counter(f"{comp}.bytes_read", comp, "bytes",
                             lambda engine=engine: engine.bytes_read)
            registry.counter(f"{comp}.bytes_written", comp, "bytes",
                             lambda engine=engine: engine.bytes_written)

        for i, store in enumerate(getattr(hierarchy, "local_stores", ())):
            comp = f"ls.{i}"
            registry.counter(f"{comp}.read_bytes", comp, "bytes",
                             lambda store=store: store.reads)
            registry.counter(f"{comp}.write_bytes", comp, "bytes",
                             lambda store=store: store.writes)
            registry.gauge(f"{comp}.allocated_bytes", comp, "bytes",
                           lambda store=store: store.allocated_bytes)
            registry.gauge(f"{comp}.high_water_bytes", comp, "bytes",
                           lambda store=store: store.high_water_bytes)

        return registry


__all__ = ["COUNTER", "GAUGE", "Metric", "MetricsRegistry"]
