"""Metric time series over :class:`~repro.sim.sampling.IntervalSampler`.

:class:`MetricsSampler` runs a system to completion in the sampler's
**pull mode** (``drive()``), snapshotting a
:class:`~repro.obs.metrics.MetricsRegistry` at every window boundary.
Pull mode steps the simulator with ``drain_until`` and schedules no
events of its own, and the registry attaches no hooks, so the returned
:class:`~repro.results.RunResult` — including ``stats["sim.events"]`` —
is bit-identical to an unsampled, uninstrumented run.

Usage::

    system = CmpSystem(config, program)
    sampler = MetricsSampler(system, interval_fs=ns_to_fs(50_000))
    result = sampler.drive()
    sampler.save("series.json")
"""

from __future__ import annotations

import json

from repro.obs.metrics import MetricsRegistry
from repro.sim.sampling import IntervalSampler


class MetricsSampler:
    """Per-interval series of every registry metric during one run."""

    def __init__(self, system, interval_fs: int,
                 registry: MetricsRegistry | None = None) -> None:
        self.system = system
        self.interval_fs = interval_fs
        self.registry = (registry if registry is not None
                         else MetricsRegistry.from_system(system))
        self._sampler = IntervalSampler(
            system, interval_fs, probes={"metrics": self.registry.collect})

    def drive(self):
        """Run the system to completion; returns the RunResult."""
        return self._sampler.drive()

    def render(self, width: int = 80) -> str:
        """The base sampler's activity/bandwidth sparklines."""
        return self._sampler.render(width)

    @property
    def samples(self) -> list[dict]:
        """Flattened per-interval rows.

        Each row carries the built-in ``time_fs`` / ``dram_utilization``
        / ``core_activity`` columns plus one column per metric: counters
        as per-interval deltas, gauges as the value at the boundary.
        """
        rows = []
        previous = None
        for sample in self._sampler.samples:
            row = {k: v for k, v in sample.items() if k != "metrics"}
            snapshot = sample["metrics"]
            row.update(self.registry.deltas(previous, snapshot))
            rows.append(row)
            previous = snapshot
        return rows

    def series(self, name: str) -> list:
        """One column of :attr:`samples` (metric name or built-in)."""
        return [row[name] for row in self.samples]

    def to_dict(self) -> dict:
        """JSON-safe document: interval, column catalog, and the rows."""
        kinds = {m.name: m.kind for m in self.registry}
        units = {m.name: m.unit for m in self.registry}
        return {
            "interval_fs": self.interval_fs,
            "kinds": kinds,
            "units": units,
            "samples": self.samples,
        }

    def save(self, path) -> None:
        """Write :meth:`to_dict` as a JSON document."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, sort_keys=True)
            handle.write("\n")


__all__ = ["MetricsSampler"]
