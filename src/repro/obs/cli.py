"""Command-line surface of the observability layer.

Usage::

    python -m repro obs report fir --model cc --cores 4 --preset tiny
    python -m repro obs series fir --preset tiny --json series.json
    python -m repro obs export fir --preset tiny -o trace.json
    python -m repro obs validate trace.json

``report`` runs one workload and prints the grouped metrics report;
``series`` samples metric time series during the run (pull mode — the
result stays bit-identical); ``export`` records the access trace, DMA
commands, kernel dispatch spans, and counter series, and writes one
Chrome ``trace_event`` JSON; ``validate`` schema-checks such a file.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import ExitStack

from repro.obs.chrometrace import (DmaCommandRecorder, KernelEventRecorder,
                                   export_chrome_trace, save_chrome_trace,
                                   validate_chrome_trace)
from repro.obs.report import render_report
from repro.obs.sampler import MetricsSampler
from repro.units import ns_to_fs


def _workload_flags(parser: argparse.ArgumentParser) -> None:
    from repro import workload_names

    parser.add_argument("workload", choices=workload_names())
    parser.add_argument("--model", choices=["cc", "str", "icc"], default="cc")
    parser.add_argument("--cores", type=int, default=8)
    parser.add_argument("--clock", type=float, default=0.8,
                        help="core clock in GHz")
    parser.add_argument("--preset", default="default",
                        choices=["default", "small", "tiny"])


def _build_system(args):
    from repro import MachineConfig, get_workload
    from repro.core.system import CmpSystem

    config = MachineConfig(num_cores=args.cores) \
        .with_model(args.model).with_clock(args.clock)
    program = get_workload(args.workload).build(
        config.model, config, preset=args.preset)
    return CmpSystem(config, program)


def _interval_fs(args, system) -> int:
    if args.interval_ns:
        return ns_to_fs(args.interval_ns)
    return max(1, system.config.core.cycle_fs * 20_000)


def _cmd_report(args) -> int:
    system = _build_system(args)
    result = system.run()
    print(render_report(system, result))
    return 0


def _cmd_series(args) -> int:
    system = _build_system(args)
    sampler = MetricsSampler(system, _interval_fs(args, system))
    result = sampler.drive()
    print(result.summary())
    print(sampler.render())
    print(f"{len(sampler.samples)} window(s) x {len(sampler.registry)} "
          f"metric(s)")
    if args.json == "-":
        json.dump(sampler.to_dict(), sys.stdout, sort_keys=True)
        sys.stdout.write("\n")
    elif args.json:
        sampler.save(args.json)
        print(f"series -> {args.json}")
    return 0


def _cmd_export(args) -> int:
    from repro.trace import TraceRecorder

    system = _build_system(args)
    sampler = MetricsSampler(system, _interval_fs(args, system))
    with ExitStack() as stack:
        recorder = stack.enter_context(TraceRecorder(system))
        dma = stack.enter_context(DmaCommandRecorder(system.hierarchy))
        kernel = stack.enter_context(KernelEventRecorder(system.sim))
        result = sampler.drive()
    doc = export_chrome_trace(trace=recorder.records, dma_events=dma.events,
                              kernel_spans=kernel.spans(),
                              samples=sampler.samples)
    problems = validate_chrome_trace(doc)
    if problems:
        for problem in problems:
            print(f"export bug: {problem}", file=sys.stderr)
        return 1
    save_chrome_trace(doc, args.out)
    print(result.summary())
    print(f"chrome trace: {len(doc['traceEvents'])} event(s) "
          f"({len(recorder)} accesses, {len(dma)} DMA commands, "
          f"{len(kernel.spans())} kernel spans) -> {args.out}")
    return 0


def _cmd_validate(args) -> int:
    try:
        with open(args.path) as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"{args.path}: unreadable: {error}", file=sys.stderr)
        return 1
    problems = validate_chrome_trace(doc)
    if problems:
        print(f"{args.path}: {len(problems)} problem(s)", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(f"{args.path}: valid trace_event JSON "
          f"({len(doc['traceEvents'])} events)")
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro obs",
        description="metrics, time series, and Chrome trace export")
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="run once and print all metrics")
    _workload_flags(report)

    series = sub.add_parser("series",
                            help="sample metric time series during a run")
    _workload_flags(series)
    series.add_argument("--interval-ns", type=int, default=0,
                        help="sampling window in simulated ns "
                             "(default: 20k core cycles)")
    series.add_argument("--json", metavar="PATH",
                        help="write the series as JSON ('-' for stdout)")

    export = sub.add_parser("export",
                            help="record a run and export a Chrome trace")
    _workload_flags(export)
    export.add_argument("--interval-ns", type=int, default=0,
                        help="counter sampling window in simulated ns")
    export.add_argument("-o", "--out", required=True, metavar="PATH",
                        help="output trace_event JSON path")

    validate = sub.add_parser("validate",
                              help="schema-check a trace_event JSON file")
    validate.add_argument("path")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro obs`` / ``python -m repro.obs``."""
    args = _build_parser().parse_args(argv)
    handler = {"report": _cmd_report, "series": _cmd_series,
               "export": _cmd_export, "validate": _cmd_validate}
    return handler[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
