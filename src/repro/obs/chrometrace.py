"""Chrome ``trace_event`` export (Perfetto / ``chrome://tracing`` loadable).

Converts the simulator's observational outputs — the demand-access
trace of :class:`repro.trace.TraceRecorder`, DMA command timings, kernel
event-dispatch spans, and sampled counter series — into one JSON
document in the Trace Event Format:

* **per-core tracks** (pid 1): loads as ``"X"`` complete events whose
  duration is the observed latency, stores as ``"i"`` instants;
* **per-core DMA tracks** (pid 2): each ``get`` / ``put`` command as an
  ``"X"`` span from engine start to completion, with an ``"s"``/``"f"``
  flow arrow from the issuing core's track (issue time) to the engine
  span (start time) so queueing behind the engine is visible;
* **kernel track** (pid 3): coalesced event-dispatch spans from
  :class:`KernelEventRecorder`, showing where simulated time was dense;
* **counter tracks** (pid 4): ``"C"`` events from interval samples
  (DRAM utilization, core activity).

Timestamps: the trace format uses microseconds; simulated femtoseconds
divide by 1e9.  Everything here is deterministic, so an exported trace
for a fixed workload/config is stable down to the byte (the golden-file
test holds that line).
"""

from __future__ import annotations

import json

from repro.units import ns_to_fs

#: pid assignments for the exported process groups.
_PID_CORES = 1
_PID_DMA = 2
_PID_KERNEL = 3
_PID_COUNTERS = 4

#: Trace-event phases this exporter emits.
_KNOWN_PHASES = {"X", "i", "C", "M", "s", "f"}


def _us(time_fs: int) -> float:
    """Femtoseconds -> the trace format's microseconds."""
    return time_fs / 1e9


class KernelEventRecorder:
    """Coalesces every dispatched event into spans of dense activity.

    Rides on :meth:`repro.sim.kernel.Simulator.attach_event_hook` (the
    instance-level ``queue.pop`` wrap), so it observes every event with
    zero cost when not attached and never perturbs event order or
    timestamps.  Consecutive events closer than ``coalesce_fs`` merge
    into one span; each span records its event count.

    Use as a context manager so the hook is removed even when the run
    raises::

        with KernelEventRecorder(system.sim) as kernel:
            result = system.run()
        spans = kernel.spans()
    """

    def __init__(self, sim, coalesce_fs: int | None = None) -> None:
        self.sim = sim
        self.coalesce_fs = (coalesce_fs if coalesce_fs is not None
                            else ns_to_fs(100))
        self._spans: list[tuple[int, int, int]] = []
        self._open: list[int] | None = None    # [start_fs, end_fs, count]
        sim.attach_event_hook(self._on_event)

    def _on_event(self, time_fs: int) -> None:
        span = self._open
        if span is not None and time_fs - span[1] <= self.coalesce_fs:
            span[1] = time_fs
            span[2] += 1
        else:
            if span is not None:
                self._spans.append(tuple(span))
            self._open = [time_fs, time_fs, 1]

    def detach(self) -> None:
        """Stop observing (idempotent) and close the open span."""
        self.sim.detach_event_hook()
        if self._open is not None:
            self._spans.append(tuple(self._open))
            self._open = None

    def __enter__(self) -> "KernelEventRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.detach()

    def spans(self) -> list[tuple[int, int, int]]:
        """Closed ``(start_fs, end_fs, events)`` spans, in time order."""
        if self._open is not None:
            return [*self._spans, tuple(self._open)]
        return list(self._spans)


class DmaCommandRecorder:
    """Collects every DMA command via ``DmaEngine.trace_hook``.

    Fastpath-compatible (DMA commands never take the processor's
    inline-hit path), so recording them leaves results bit-identical.
    On a non-streaming hierarchy this attaches to nothing and records
    nothing.  Context-manager use detaches the hooks even on a raise.
    """

    def __init__(self, hierarchy) -> None:
        self.events: list[tuple] = []
        self._engines = tuple(getattr(hierarchy, "dma_engines", ()))
        for engine in self._engines:
            if engine.trace_hook is not None:
                raise RuntimeError(
                    f"DMA engine {engine.core_id} already has a trace hook")
            engine.trace_hook = self._record

    def _record(self, kind: str, core: int, issue_fs: int, start_fs: int,
                done_fs: int, addr: int, nbytes: int) -> None:
        self.events.append((kind, core, issue_fs, start_fs, done_fs,
                            addr, nbytes))

    def detach(self) -> None:
        """Remove the hooks (idempotent; never evicts another recorder)."""
        for engine in self._engines:
            if engine.trace_hook == self._record:
                engine.trace_hook = None

    def __enter__(self) -> "DmaCommandRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.detach()

    def __len__(self) -> int:
        return len(self.events)


def export_chrome_trace(trace=None, dma_events=None, kernel_spans=None,
                        samples=None) -> dict:
    """Build the trace document from whichever inputs are available.

    ``trace`` is a list of :class:`repro.trace.TraceRecord`;
    ``dma_events`` the tuples a :class:`DmaCommandRecorder` collected;
    ``kernel_spans`` the ``(start_fs, end_fs, events)`` spans of a
    :class:`KernelEventRecorder`; ``samples`` the per-interval rows of
    an :class:`~repro.sim.sampling.IntervalSampler` (or the flattened
    rows of a :class:`~repro.obs.sampler.MetricsSampler`).  Any subset
    may be None.  Returns a JSON-safe dict.
    """
    events: list[dict] = []

    def thread(pid: int, tid: int, process: str, name: str) -> None:
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": 0, "args": {"name": process}})
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": tid, "args": {"name": name}})

    named_threads: set[tuple[int, int]] = set()

    def ensure_thread(pid: int, tid: int, process: str, name: str) -> None:
        if (pid, tid) not in named_threads:
            named_threads.add((pid, tid))
            thread(pid, tid, process, name)

    for record in trace or ():
        ensure_thread(_PID_CORES, record.core, "cores",
                      f"core {record.core}")
        if record.kind == "ld":
            events.append({
                "ph": "X", "name": "ld", "cat": "mem",
                "pid": _PID_CORES, "tid": record.core,
                "ts": _us(record.time_fs), "dur": _us(record.latency_fs),
                "args": {"line": record.line},
            })
        else:
            events.append({
                "ph": "i", "name": "st", "cat": "mem", "s": "t",
                "pid": _PID_CORES, "tid": record.core,
                "ts": _us(record.time_fs),
                "args": {"line": record.line},
            })

    for flow_id, event in enumerate(dma_events or ()):
        kind, core, issue_fs, start_fs, done_fs, addr, nbytes = event
        ensure_thread(_PID_CORES, core, "cores", f"core {core}")
        ensure_thread(_PID_DMA, core, "dma", f"dma {core}")
        events.append({
            "ph": "X", "name": kind, "cat": "dma",
            "pid": _PID_DMA, "tid": core,
            "ts": _us(start_fs), "dur": _us(done_fs - start_fs),
            "args": {"addr": addr, "nbytes": nbytes,
                     "queued_ns": (start_fs - issue_fs) / 1e6},
        })
        events.append({
            "ph": "s", "name": "dma", "cat": "dma", "id": flow_id,
            "pid": _PID_CORES, "tid": core, "ts": _us(issue_fs),
        })
        events.append({
            "ph": "f", "name": "dma", "cat": "dma", "id": flow_id,
            "bp": "e", "pid": _PID_DMA, "tid": core, "ts": _us(start_fs),
        })

    if kernel_spans:
        ensure_thread(_PID_KERNEL, 0, "kernel", "event dispatch")
        for start_fs, end_fs, count in kernel_spans:
            events.append({
                "ph": "X", "name": "events", "cat": "kernel",
                "pid": _PID_KERNEL, "tid": 0,
                "ts": _us(start_fs), "dur": _us(end_fs - start_fs),
                "args": {"count": count},
            })

    if samples:
        ensure_thread(_PID_COUNTERS, 0, "metrics", "sampled")
        for sample in samples:
            ts = _us(sample["time_fs"])
            for column in ("dram_utilization", "core_activity"):
                if column in sample:
                    events.append({
                        "ph": "C", "name": column, "cat": "metrics",
                        "pid": _PID_COUNTERS, "tid": 0, "ts": ts,
                        "args": {"value": sample[column]},
                    })

    return {"traceEvents": events, "displayTimeUnit": "ns"}


def save_chrome_trace(doc: dict, path) -> None:
    """Write a trace document with deterministic key order."""
    with open(path, "w") as handle:
        json.dump(doc, handle, sort_keys=True)
        handle.write("\n")


def validate_chrome_trace(doc) -> list[str]:
    """Schema-check a trace document; returns a list of problems.

    Verifies the subset of the Trace Event Format this exporter emits —
    enough for Perfetto / ``chrome://tracing`` to load the file: a
    ``traceEvents`` list of dicts, each with a known ``ph``, integer
    ``pid`` / ``tid``, non-negative numeric ``ts`` (except metadata),
    ``dur`` on complete events, ``args`` on counters and metadata, and
    ``id`` on flow events.  An empty list means the document is valid.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be a JSON object, got {type(doc).__name__}"]
    trace_events = doc.get("traceEvents")
    if not isinstance(trace_events, list):
        return ["document must carry a 'traceEvents' list"]

    def check(index: int, event) -> None:
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            return
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            return
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing string 'name'")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: missing integer {key!r}")
        if phase != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: missing non-negative 'ts'")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: 'X' needs non-negative 'dur'")
        if phase in ("C", "M"):
            if not isinstance(event.get("args"), dict):
                problems.append(f"{where}: {phase!r} needs an 'args' object")
        if phase == "C":
            for key, value in (event.get("args") or {}).items():
                if not isinstance(value, (int, float)):
                    problems.append(
                        f"{where}: counter arg {key!r} must be numeric")
        if phase in ("s", "f") and "id" not in event:
            problems.append(f"{where}: flow event needs an 'id'")

    for index, event in enumerate(trace_events):
        check(index, event)
    return problems


__all__ = ["KernelEventRecorder", "DmaCommandRecorder",
           "export_chrome_trace", "save_chrome_trace",
           "validate_chrome_trace"]
