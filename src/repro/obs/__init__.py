"""repro.obs — fastpath-compatible observability.

Three layers over one principle (*pull at scheduling boundaries, never
hook the hot path unless the user asked for a trace*):

* :mod:`repro.obs.metrics` — a registry of counters/gauges that reads
  existing component state; attaching it keeps
  ``hierarchy.fastpath_safe`` true and results bit-identical.
* :mod:`repro.obs.sampler` — per-interval metric series via the
  interval sampler's pull mode (no events added, ``sim.events``
  unchanged).
* :mod:`repro.obs.chrometrace` — Chrome ``trace_event`` export of
  access traces, DMA commands, kernel dispatch spans, and counter
  series, loadable in Perfetto.

CLI: ``python -m repro obs report|series|export|validate``.
"""

from repro.obs.chrometrace import (DmaCommandRecorder, KernelEventRecorder,
                                   export_chrome_trace, save_chrome_trace,
                                   validate_chrome_trace)
from repro.obs.metrics import COUNTER, GAUGE, Metric, MetricsRegistry
from repro.obs.report import render_report
from repro.obs.sampler import MetricsSampler

__all__ = [
    "COUNTER", "GAUGE", "Metric", "MetricsRegistry", "MetricsSampler",
    "KernelEventRecorder", "DmaCommandRecorder", "export_chrome_trace",
    "save_chrome_trace", "validate_chrome_trace", "render_report",
]
