"""Synchronization primitives: barriers, locks, and task queues.

The paper's applications are parallelized with POSIX threads, locks for
efficient task queues, and barriers for SPMD code (Section 3.2).  All
waiting time charged by these objects lands in the "Sync" component of
the execution-time breakdown of Figure 2.

The objects are passive: the processor drives them.  A blocking call
returns None to signal "suspended"; the primitive later wakes the
processor through ``processor.wake(release_fs)``.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.core.processor import Processor

#: Fixed software cost, in core cycles, of entering/leaving a primitive
#: (atomic op, flag check).  Charged by the processor as useful work.
BARRIER_OVERHEAD_CYCLES = 24
LOCK_OVERHEAD_CYCLES = 12
TASK_POP_OVERHEAD_CYCLES = 20


class Barrier:
    """A reusable barrier for ``parties`` threads."""

    def __init__(self, parties: int, name: str = "barrier") -> None:
        if parties <= 0:
            raise ValueError(f"{name}: parties must be positive, got {parties}")
        self.parties = parties
        self.name = name
        self._waiting: list[tuple[Processor, int]] = []
        self.episodes = 0

    def arrive(self, processor: "Processor", now_fs: int) -> int | None:
        """Register arrival.  Returns the release time if this arrival
        completes the barrier (the caller continues immediately), else
        None (the caller suspends; it will be woken at the release time).
        """
        if len(self._waiting) + 1 < self.parties:
            self._waiting.append((processor, now_fs))
            return None
        release_fs = now_fs
        for _, arrival_fs in self._waiting:
            release_fs = max(release_fs, arrival_fs)
        waiters = self._waiting
        self._waiting = []
        self.episodes += 1
        for waiter, _ in waiters:
            waiter.wake(release_fs)
        return release_fs


class Lock:
    """A FIFO mutex."""

    def __init__(self, name: str = "lock") -> None:
        self.name = name
        self.holder: Processor | None = None
        self._waiters: deque[Processor] = deque()
        self.acquisitions = 0
        self.contended_acquisitions = 0

    def acquire(self, processor: "Processor", now_fs: int) -> int | None:
        """Try to take the lock.  Returns ``now_fs`` on success, None if
        the caller must suspend (it is woken when granted the lock)."""
        self.acquisitions += 1
        if self.holder is None:
            self.holder = processor
            return now_fs
        self.contended_acquisitions += 1
        self._waiters.append(processor)
        return None

    def release(self, processor: "Processor", now_fs: int) -> None:
        """Release the lock, handing it to the next waiter if any."""
        if self.holder is not processor:
            raise RuntimeError(
                f"{self.name}: released by core {processor.core_id} "
                f"but held by {getattr(self.holder, 'core_id', None)}"
            )
        if self._waiters:
            next_holder = self._waiters.popleft()
            self.holder = next_holder
            next_holder.wake(now_fs)
        else:
            self.holder = None


class TaskQueue:
    """A lock-protected work queue for dynamic task assignment.

    Pops are modelled with a short critical section: concurrent pops
    serialize, and the wait shows up as sync time.  An empty queue returns
    None immediately (the caller's loop decides what to do next).
    """

    def __init__(self, items: list[Any] | None = None, name: str = "taskq") -> None:
        self.name = name
        self._items: deque[Any] = deque(items or [])
        self._next_free_fs = 0
        self.pops = 0
        self.contended_fs = 0

    def push(self, item: Any) -> None:
        """Append one task."""
        self._items.append(item)

    def extend(self, items: list[Any]) -> None:
        """Append many tasks."""
        self._items.extend(items)

    def pop(self, now_fs: int, critical_fs: int) -> tuple[Any, int]:
        """Pop the next task.  Returns ``(item_or_None, done_fs)``.

        ``critical_fs`` is the duration of the critical section in
        femtoseconds (the caller converts from cycles at its own clock).
        """
        start = max(now_fs, self._next_free_fs)
        self.contended_fs += start - now_fs
        done = start + critical_fs
        self._next_free_fs = done
        self.pops += 1
        item = self._items.popleft() if self._items else None
        return item, done

    def __len__(self) -> int:
        return len(self._items)
