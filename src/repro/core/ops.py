"""The operation vocabulary of workload threads.

A workload thread is a Python generator that yields operations; the
processor model interprets them and charges time.  Operations are plain
tuples headed by a one-of-a-kind opcode string — the hot loop of the
simulator dispatches on ``op[0]``, and tuples keep that dispatch cheap.
Workloads construct them through the factory functions below, which
document and validate the fields.

Memory operations are *aggregated*: one ``load`` may cover several cache
lines and represent many word accesses.  The processor walks the covered
lines one by one through the hierarchy, so timing is still per-line; the
``accesses`` field only feeds access counting (miss-rate denominators and
energy).  The default of one access per 4-byte word models word-granular
code.

The ``task_pop`` operation returns a value *into* the generator — use
``item = yield task_pop(queue)``.

Hot loops should not rebuild the same op tuples every iteration: build an
:class:`OpBlock` template once with :func:`block` and yield
``template.at(offset)`` per iteration instead.  The processor replays the
block without generator round trips, and — when every line it touches is
a guaranteed L1 hit — retires it in closed form (see
:mod:`repro.core.processor` and docs/PERF.md).

A level above blocks, a loop that replays templates at a *constant
stride* can be described once as an :class:`OpPhase` (:func:`phase`) and
yielded as a single op: the phase engine then retires the whole resident
run — many block iterations — in one vectorized step.
"""

from __future__ import annotations

from typing import Any

OP_COMPUTE = "c"
OP_LOAD = "ld"
OP_STORE = "st"
OP_PFS = "pfs"
OP_LOCAL_LOAD = "lsld"
OP_LOCAL_STORE = "lsst"
OP_DMA_GET = "dget"
OP_DMA_PUT = "dput"
OP_DMA_WAIT = "dwait"
OP_BARRIER = "bar"
OP_LOCK = "lock"
OP_UNLOCK = "unlock"
OP_TASK_POP = "pop"
OP_ICACHE_MISS = "im"
OP_BULK_PREFETCH = "bpf"
OP_CACHE_FLUSH = "cfl"
OP_CACHE_INVALIDATE = "cinv"
OP_BLOCK = "blk"
OP_PHASE = "ph"
OP_STREAM = "strm"

WORD_BYTES = 4


def compute(cycles: int, instructions: int | None = None,
            l1_accesses: int = 0) -> tuple:
    """Execute for ``cycles`` core cycles.

    ``instructions`` defaults to two per cycle (a 3-slot VLIW sustaining
    an IPC of ~2 on compute kernels).  ``l1_accesses`` counts additional
    L1 hits for stack/temporary traffic that the workload does not model
    address-by-address; they feed access counters and cache energy only.
    """
    if cycles < 0:
        raise ValueError(f"negative compute cycles {cycles}")
    if instructions is None:
        instructions = 2 * cycles
    if instructions < 0 or l1_accesses < 0:
        raise ValueError("instruction and access counts must be non-negative")
    return (OP_COMPUTE, cycles, instructions, l1_accesses)


def _mem(opcode: str, addr: int, nbytes: int, accesses: int | None) -> tuple:
    if addr < 0:
        raise ValueError(f"negative address {addr:#x}")
    if nbytes <= 0:
        raise ValueError(f"memory operation must cover at least one byte, got {nbytes}")
    if accesses is None:
        # nbytes // WORD_BYTES, floored at one (WORD_BYTES is 4).
        accesses = (nbytes >> 2) or 1
    elif accesses <= 0:
        raise ValueError(f"access count must be positive, got {accesses}")
    return (opcode, addr, nbytes, accesses)


def load(addr: int, nbytes: int = 32, accesses: int | None = None) -> tuple:
    """Load ``nbytes`` starting at ``addr`` (may span multiple lines)."""
    # Workloads emit millions of these; the body is _mem inlined.
    if addr < 0:
        raise ValueError(f"negative address {addr:#x}")
    if nbytes <= 0:
        raise ValueError(f"memory operation must cover at least one byte, got {nbytes}")
    if accesses is None:
        accesses = (nbytes >> 2) or 1
    elif accesses <= 0:
        raise ValueError(f"access count must be positive, got {accesses}")
    return (OP_LOAD, addr, nbytes, accesses)


def store(addr: int, nbytes: int = 32, accesses: int | None = None) -> tuple:
    """Store ``nbytes`` starting at ``addr``."""
    if addr < 0:
        raise ValueError(f"negative address {addr:#x}")
    if nbytes <= 0:
        raise ValueError(f"memory operation must cover at least one byte, got {nbytes}")
    if accesses is None:
        accesses = (nbytes >> 2) or 1
    elif accesses <= 0:
        raise ValueError(f"access count must be positive, got {accesses}")
    return (OP_STORE, addr, nbytes, accesses)


def pfs_store(addr: int, nbytes: int = 32, accesses: int | None = None) -> tuple:
    """Store preceded by "Prepare For Store" (Section 5.5).

    Allocates and validates the cache lines without refilling them from
    memory — the software mechanism for non-allocating stores on
    output-only data streams.
    """
    return _mem(OP_PFS, addr, nbytes, accesses)


def local_load(offset: int, nbytes: int, accesses: int | None = None) -> tuple:
    """Read the core's local store (streaming model; single-cycle, no tags)."""
    return _mem(OP_LOCAL_LOAD, offset, nbytes, accesses)


def local_store(offset: int, nbytes: int, accesses: int | None = None) -> tuple:
    """Write the core's local store."""
    return _mem(OP_LOCAL_STORE, offset, nbytes, accesses)


def _dma(opcode: str, tag: int, addr: int, nbytes: int,
         stride: int, block: int | None) -> tuple:
    if tag < 0:
        raise ValueError(f"negative DMA tag {tag}")
    if addr < 0 or nbytes <= 0:
        raise ValueError(f"bad DMA range addr={addr:#x} nbytes={nbytes}")
    return (opcode, tag, addr, nbytes, stride, block)


def dma_get(tag: int, addr: int, nbytes: int,
            stride: int = 0, block: int | None = None) -> tuple:
    """Queue a DMA transfer from memory into the local store.

    ``stride``/``block`` select a strided gather; the default is one
    contiguous block.  Completion is observed with :func:`dma_wait` on the
    same ``tag``.
    """
    return _dma(OP_DMA_GET, tag, addr, nbytes, stride, block)


def dma_put(tag: int, addr: int, nbytes: int,
            stride: int = 0, block: int | None = None) -> tuple:
    """Queue a DMA transfer from the local store to memory."""
    return _dma(OP_DMA_PUT, tag, addr, nbytes, stride, block)


def dma_wait(tag: int) -> tuple:
    """Stall until every DMA command issued under ``tag`` has completed."""
    if tag < 0:
        raise ValueError(f"negative DMA tag {tag}")
    return (OP_DMA_WAIT, tag)


def barrier_wait(barrier: Any) -> tuple:
    """Block until every participating thread reaches ``barrier``."""
    return (OP_BARRIER, barrier)


def lock_acquire(lock: Any) -> tuple:
    """Acquire ``lock``, blocking while another thread holds it."""
    return (OP_LOCK, lock)


def lock_release(lock: Any) -> tuple:
    """Release ``lock`` (must be held by this thread)."""
    return (OP_UNLOCK, lock)


def task_pop(queue: Any) -> tuple:
    """Pop a task; the popped item (or None) is sent back into the generator."""
    return (OP_TASK_POP, queue)


def bulk_prefetch(addr: int, nbytes: int) -> tuple:
    """Software bulk prefetch into the cache (a hybrid-model primitive).

    Section 7 of the paper suggests that "bulk transfer primitives for
    cache-based systems could enable more efficient macroscopic
    prefetching": this operation asks the cache hierarchy to start
    fetching ``[addr, addr+nbytes)`` asynchronously, like a DMA get whose
    destination is the L1 cache.  Later demand loads to those lines wait
    only for the in-flight fill, not a full miss.
    """
    if addr < 0 or nbytes <= 0:
        raise ValueError(f"bad prefetch range addr={addr:#x} nbytes={nbytes}")
    return (OP_BULK_PREFETCH, addr, nbytes)


def cache_flush(addr: int, nbytes: int) -> tuple:
    """Write back (and clean) any dirty cached lines in the range.

    The software communication primitive of the incoherent cache model
    (Table 1 / Section 7): a producer flushes its output before the
    synchronization point that publishes it.
    """
    if addr < 0 or nbytes <= 0:
        raise ValueError(f"bad flush range addr={addr:#x} nbytes={nbytes}")
    return (OP_CACHE_FLUSH, addr, nbytes)


def cache_invalidate(addr: int, nbytes: int) -> tuple:
    """Drop any cached lines in the range (they must be clean).

    The consumer-side primitive of the incoherent cache model: invalidate
    a shared region after the synchronization point so subsequent loads
    observe the producer's flushed data.
    """
    if addr < 0 or nbytes <= 0:
        raise ValueError(f"bad invalidate range addr={addr:#x} nbytes={nbytes}")
    return (OP_CACHE_INVALIDATE, addr, nbytes)


def icache_miss(count: int = 1) -> tuple:
    """Charge ``count`` instruction-cache misses (fetch stalls).

    The paper's execution-time breakdown folds fetch stalls into "useful
    execution", so the processor attributes them there while counting
    them for energy and for the Figure 9 discussion (stream-optimized
    MPEG-2 notably increases I-cache misses).
    """
    if count <= 0:
        raise ValueError(f"icache miss count must be positive, got {count}")
    return (OP_ICACHE_MISS, count)


# ----------------------------------------------------------------------
# Op blocks: batched op streams with cached replay templates
# ----------------------------------------------------------------------

#: Upper bound on ops per block.  Blocks are interpreted atomically
#: between quantum-boundary checks only in the sense that no generator
#: round trip happens inside one; the bound keeps a single materialized
#: block (REPRO_BLOCKS=0) from ballooning memory.
MAX_BLOCK_OPS = 4096

#: Ops that suspend the thread or send a value back into the generator.
#: They cannot appear inside a block: the processor must be able to
#: replay a block without consulting the scheduler or the generator.
_BLOCK_REJECTED = frozenset({
    OP_BARRIER, OP_LOCK, OP_UNLOCK, OP_TASK_POP, OP_BLOCK, OP_PHASE,
    OP_STREAM,
})

#: Ops the closed-form path can retire arithmetically: their cost is a
#: fixed cycle count whenever the lines they touch are resident L1 hits
#: (or local-store accesses), and their only side effects are counters
#: and LRU order.
_ARITH_OPS = frozenset({
    OP_COMPUTE, OP_LOAD, OP_STORE, OP_PFS, OP_LOCAL_LOAD, OP_LOCAL_STORE,
})

#: Ops whose field 1 is a memory address shifted by the replay offset.
_ADDR1_OPS = frozenset({
    OP_LOAD, OP_STORE, OP_PFS, OP_BULK_PREFETCH,
    OP_CACHE_FLUSH, OP_CACHE_INVALIDATE,
})

#: Ops whose field 2 is a memory address shifted by the replay offset
#: (DMA commands: field 1 is the tag).
_ADDR2_OPS = frozenset({OP_DMA_GET, OP_DMA_PUT})

_KNOWN_OPS = _ARITH_OPS | _ADDR2_OPS | frozenset({
    OP_DMA_WAIT, OP_ICACHE_MISS, OP_BULK_PREFETCH,
    OP_CACHE_FLUSH, OP_CACHE_INVALIDATE,
})


def merge_intervals(intervals: list) -> tuple:
    """Merge half-open byte intervals ``[(start, end), ...]``.

    Returns the equivalent sorted tuple of disjoint, non-adjacent
    intervals — the canonical form used by footprints and the static
    dataflow auditor (:mod:`repro.analysis.dataflow`).
    """
    if not intervals:
        return ()
    intervals = sorted(intervals)
    out = [intervals[0]]
    for start, end in intervals[1:]:
        last_start, last_end = out[-1]
        if start <= last_end:
            if end > last_end:
                out[-1] = (last_start, end)
        else:
            out.append((start, end))
    return tuple(out)


class BlockFootprint:
    """The byte-granular address footprint of one block replay at delta 0.

    All cached-memory intervals are *relative*: a replay via
    ``template.at(delta)`` touches every interval shifted by ``delta``.
    Local-store intervals are absolute (the replay offset never shifts
    them).  Intervals are half-open ``(start, end)`` byte ranges, merged
    and sorted; DMA commands are kept un-merged because a strided
    transfer is not an interval.

    Computed once per template by :meth:`OpBlock.footprint` and cached —
    the static auditor replays hot-loop blocks by shifting these
    intervals instead of re-walking the ops.
    """

    __slots__ = ("reads", "writes", "ls_reads", "ls_writes",
                 "dma_gets", "dma_puts", "wait_tags", "arith_only")

    def __init__(self, ops: tuple, arith_only: bool) -> None:
        reads: list = []
        writes: list = []
        ls_reads: list = []
        ls_writes: list = []
        dma_gets: list = []
        dma_puts: list = []
        wait_tags: list = []
        for op in ops:
            kind = op[0]
            if kind == OP_LOAD or kind == OP_BULK_PREFETCH:
                reads.append((op[1], op[1] + op[2]))
            elif kind == OP_STORE or kind == OP_PFS:
                writes.append((op[1], op[1] + op[2]))
            elif kind == OP_LOCAL_LOAD:
                ls_reads.append((op[1], op[1] + op[2]))
            elif kind == OP_LOCAL_STORE:
                ls_writes.append((op[1], op[1] + op[2]))
            elif kind == OP_DMA_GET:
                dma_gets.append(op[1:])
            elif kind == OP_DMA_PUT:
                dma_puts.append(op[1:])
            elif kind == OP_DMA_WAIT:
                wait_tags.append(op[1])
        #: Merged relative ``(start, end)`` cached-read intervals
        #: (loads and bulk prefetches).
        self.reads = merge_intervals(reads)
        #: Merged relative cached-write intervals (stores and PFS stores).
        self.writes = merge_intervals(writes)
        #: Absolute local-store read/write intervals, sorted but NOT
        #: merged: adjacent accesses may target adjacent allocations,
        #: and merging across an allocation boundary would turn two
        #: valid accesses into one apparent straddle.
        self.ls_reads = tuple(sorted(ls_reads))
        self.ls_writes = tuple(sorted(ls_writes))
        #: DMA commands as raw ``(tag, addr, nbytes, stride, block)``.
        self.dma_gets = tuple(dma_gets)
        self.dma_puts = tuple(dma_puts)
        #: Tags waited on inside the block.
        self.wait_tags = tuple(wait_tags)
        #: True when the block is pure compute + cached/local accesses —
        #: exactly the blocks the closed-form interpreter can retire.
        self.arith_only = arith_only

    def line_bytes_touched(self, line_bytes: int) -> int:
        """Cache bytes one replay occupies: touched lines × line size."""
        lines = 0
        for start, end in self.reads + self.writes:
            lines += (end - 1) // line_bytes - start // line_bytes + 1
        return lines * line_bytes

    def self_conflict(self, stride: int, iterations: int = 2) -> bool:
        """True if replays at consecutive multiples of ``stride`` conflict.

        A conflict is a write of one iteration overlapping a read or
        write of another — the cross-iteration dependence that disquali-
        fies a loop from independent per-iteration treatment.  ``stride``
        0 (revisiting the same footprint, e.g. a timestep sweep) is the
        *resident* replay case and never a conflict.
        """
        if stride == 0:
            return False
        for k in range(1, iterations + 1):
            shift = k * stride
            shifted = [(s + shift, e + shift) for s, e in self.writes]
            if (_intervals_overlap(shifted, self.reads)
                    or _intervals_overlap(shifted, self.writes)
                    or _intervals_overlap(
                        [(s + shift, e + shift) for s, e in self.reads],
                        self.writes)):
                return True
        return False


def _intervals_overlap(a, b) -> bool:
    """True if any interval of sorted-disjoint lists ``a``/``b`` overlap."""
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i][1] <= b[j][0]:
            i += 1
        elif b[j][1] <= a[i][0]:
            j += 1
        else:
            return True
    return False


class _BlockGeometry:
    """Per-``line_shift`` cache-line view of a block (closed-form data).

    ``checks`` holds one entry per distinct relative line, in first-touch
    order: ``(rel_line, loaded, load_before_store, stored)``.  ``loaded``
    lines must be ready (``ready_fs <= now``) for the closed form to
    apply; ``load_before_store`` lines must additionally carry no
    prefetch tag (a store would have cleared it first otherwise); and
    ``stored`` lines must not be SHARED.  ``lru`` lists relative lines in
    last-touch order — replaying ``move_to_end`` over it reproduces the
    exact LRU order per-op execution would leave.
    """

    __slots__ = ("checks", "stored", "lru", "loads_hit", "stores_hit")

    def __init__(self, ops: tuple, line_shift: int) -> None:
        touched: dict[int, list] = {}   # rel_line -> [loaded, fresh, stored]
        order: dict[int, None] = {}     # last-touch order (dict = ordered)
        loads_hit = 0
        stores_hit = 0
        for op in ops:
            kind = op[0]
            if kind == OP_LOAD:
                is_load = True
            elif kind == OP_STORE or kind == OP_PFS:
                is_load = False
            else:
                continue
            _, addr, nbytes, _accesses = op
            first = addr >> line_shift
            last = (addr + nbytes - 1) >> line_shift
            for line in range(first, last + 1):
                flags = touched.get(line)
                if flags is None:
                    flags = touched[line] = [False, False, False]
                if is_load:
                    loads_hit += 1
                    flags[0] = True
                    if not flags[2]:
                        flags[1] = True      # load before any store
                else:
                    stores_hit += 1
                    flags[2] = True
                if line in order:
                    del order[line]
                order[line] = None
        self.checks = tuple(
            (line, flags[0], flags[1], flags[2])
            for line, flags in touched.items())
        self.stored = tuple(
            line for line, flags in touched.items() if flags[2])
        self.lru = tuple(order)
        self.loads_hit = loads_hit
        self.stores_hit = stores_hit


class OpBlock:
    """An immutable, validated op sequence replayed with an address offset.

    Built once via :func:`block`, yielded per iteration as
    ``template.at(offset)``.  The offset shifts every *memory* address in
    the block (loads, stores, prefetches, flushes, DMA source/target);
    local-store offsets are a separate, fixed address space and do not
    shift.  Sync ops (barrier/lock/unlock/task_pop) are rejected — a
    block must be replayable without suspending the thread.

    Attributes precomputed for the interpreter:

    * ``arith_cycles`` — total cost in core cycles when every memory line
      hits (``None`` if the block contains DMA/prefetch/flush ops, which
      never retire in closed form);
    * ``prefix_cycles`` — cumulative cycles after each op, used to replay
      the exact quantum-renewal schedule arithmetically;
    * counter aggregates (instructions, word/local accesses, local-store
      read/write bytes and accesses).
    """

    __slots__ = (
        "ops", "name", "min_addr", "arith_cycles", "prefix_cycles",
        "instructions", "word_accesses", "local_accesses",
        "ls_reads", "ls_read_accesses", "ls_writes", "ls_write_accesses",
        "ls_max_end", "has_local", "_geometries", "_footprint",
    )

    def __init__(self, ops: tuple, name: str | None) -> None:
        self.ops = ops
        self.name = name
        self._geometries: dict[int, _BlockGeometry] = {}
        self._footprint: BlockFootprint | None = None

        min_addr = None
        arith = True
        cycles = 0
        prefix = []
        instructions = 0
        word_accesses = 0
        local_accesses = 0
        ls_reads = ls_read_accesses = 0
        ls_writes = ls_write_accesses = 0
        ls_max_end = 0
        has_local = False
        for op in ops:
            kind = op[0]
            if kind == OP_COMPUTE:
                cycles += op[1]
                instructions += op[2]
                word_accesses += op[3]
            elif kind in (OP_LOAD, OP_STORE, OP_PFS):
                _, addr, nbytes, accesses = op
                if min_addr is None or addr < min_addr:
                    min_addr = addr
                cycles += accesses
                instructions += accesses
                word_accesses += accesses
            elif kind in (OP_LOCAL_LOAD, OP_LOCAL_STORE):
                _, offset, nbytes, accesses = op
                has_local = True
                cycles += accesses
                instructions += accesses
                local_accesses += accesses
                if offset + nbytes > ls_max_end:
                    ls_max_end = offset + nbytes
                if kind == OP_LOCAL_LOAD:
                    ls_reads += nbytes
                    ls_read_accesses += accesses
                else:
                    ls_writes += nbytes
                    ls_write_accesses += accesses
            else:
                arith = False
                addr_index = 2 if kind in _ADDR2_OPS else (
                    1 if kind in _ADDR1_OPS else None)
                if addr_index is not None:
                    addr = op[addr_index]
                    if min_addr is None or addr < min_addr:
                        min_addr = addr
            prefix.append(cycles)

        self.min_addr = 0 if min_addr is None else min_addr
        self.arith_cycles = cycles if arith else None
        self.prefix_cycles = tuple(prefix) if arith else None
        self.instructions = instructions
        self.word_accesses = word_accesses
        self.local_accesses = local_accesses
        self.ls_reads = ls_reads
        self.ls_read_accesses = ls_read_accesses
        self.ls_writes = ls_writes
        self.ls_write_accesses = ls_write_accesses
        self.ls_max_end = ls_max_end
        self.has_local = has_local

    def __repr__(self) -> str:
        label = self.name or "anonymous"
        return f"<OpBlock {label!r}: {len(self.ops)} ops>"

    def __len__(self) -> int:
        return len(self.ops)

    def at(self, delta: int = 0) -> tuple:
        """The replay op: this block with every memory address + ``delta``."""
        # Hot: called once per loop iteration.  Full address validation
        # happened in block(); here only the cheap sign check remains.
        if delta < 0 and self.min_addr + delta < 0:
            raise ValueError(
                f"{self!r}: offset {delta} shifts address "
                f"{self.min_addr:#x} negative")
        return (OP_BLOCK, self, delta)

    def geometry(self, line_shift: int) -> _BlockGeometry:
        """The (cached) per-line closed-form view for one line geometry."""
        geom = self._geometries.get(line_shift)
        if geom is None:
            geom = self._geometries[line_shift] = _BlockGeometry(
                self.ops, line_shift)
        return geom

    def footprint(self) -> BlockFootprint:
        """The (cached) byte-interval footprint of one replay at delta 0.

        See :class:`BlockFootprint` — the static dataflow auditor
        (:mod:`repro.analysis.dataflow`) shifts these intervals per
        replay instead of re-walking the block's ops.
        """
        fp = self._footprint
        if fp is None:
            fp = self._footprint = BlockFootprint(
                self.ops, self.arith_cycles is not None)
        return fp

    def materialize(self, delta: int, start: int = 0) -> list:
        """The plain per-op stream this block stands for, from ``start``.

        This *is* the block's semantics: every execution mode other than
        the tight/closed-form interpreter (``REPRO_BLOCKS=0``, or a block
        carrying DMA ops, or a mid-block yield spilling its remainder)
        runs exactly these tuples through the ordinary dispatch arms.
        """
        ops = self.ops[start:] if start else self.ops
        if delta == 0:
            return list(ops)
        out = []
        for op in ops:
            kind = op[0]
            if kind in _ADDR1_OPS:
                out.append((kind, op[1] + delta) + op[2:])
            elif kind in _ADDR2_OPS:
                out.append((kind, op[1], op[2] + delta) + op[3:])
            else:
                out.append(op)
        return out


def block(*ops: tuple, name: str | None = None) -> OpBlock:
    """Build an immutable, validated :class:`OpBlock` from op tuples.

    Validation is front-loaded here (once per template) so replay does
    none: the block must be non-empty, at most :data:`MAX_BLOCK_OPS`
    ops, and free of suspending ops (barrier, lock/unlock, task_pop) and
    nested blocks.
    """
    if not ops:
        raise ValueError("a block must contain at least one op")
    if len(ops) > MAX_BLOCK_OPS:
        raise ValueError(
            f"block of {len(ops)} ops exceeds MAX_BLOCK_OPS={MAX_BLOCK_OPS}")
    for op in ops:
        if not isinstance(op, tuple) or not op:
            raise ValueError(f"not an op tuple: {op!r}")
        kind = op[0]
        if kind in _BLOCK_REJECTED:
            raise ValueError(
                f"op {kind!r} cannot appear inside a block "
                "(blocks must replay without suspending the thread)")
        if kind not in _KNOWN_OPS:
            raise ValueError(f"unknown opcode {kind!r} in block")
    return OpBlock(tuple(ops), name)


# ----------------------------------------------------------------------
# Op phases: whole resident loops as one descriptor
# ----------------------------------------------------------------------

#: Upper bound on iterations per phase.  Phases materialize lazily (the
#: processor spills them in bounded chunks), so the cap only guards
#: against a nonsensical descriptor, not memory.
MAX_PHASE_ITERS = 1 << 24


class _PhaseGeometry:
    """Per-``line_shift`` closed-form view of one phase iteration.

    ``lanes`` holds each lane's :class:`_BlockGeometry` in replay order
    (byte bases and strides stay on the phase's own ``lanes``, so one
    geometry serves every rebased descriptor sharing the templates);
    ``loads_hit``/``stores_hit`` are the per-iteration L1 hit aggregates
    summed across lanes.
    """

    __slots__ = ("lanes", "loads_hit", "stores_hit")

    def __init__(self, phase_lanes: tuple, line_shift: int) -> None:
        self.lanes = tuple(
            blk.geometry(line_shift) for blk, _base, _stride in phase_lanes)
        self.loads_hit = sum(g.loads_hit for g in self.lanes)
        self.stores_hit = sum(g.stores_hit for g in self.lanes)


class OpPhase:
    """A run of ``count`` iterations of constant-stride block replays.

    One iteration replays every *lane* in order: lane ``(blk, base,
    stride)`` contributes ``blk.at(base + k * stride)`` to iteration
    ``k``.  That is the phase's entire meaning — yielding the phase op is
    exactly yielding those ``count x len(lanes)`` block replays one by
    one, and every execution mode other than the phase closed form
    (``REPRO_PHASES=0``, a non-arith lane, a non-resident line, a
    foreign event inside the phase) runs precisely that spilled stream
    through the block interpreter.

    Attributes precomputed for the phase engine:

    * ``iter_cycles`` / ``iter_prefix`` — one iteration's total cost and
      per-op cumulative cycle schedule (lanes concatenated), used to
      retire K iterations arithmetically and replay the exact
      quantum-renewal schedule (``None`` when any lane carries
      DMA/prefetch/flush ops, which never retire in closed form);
    * per-iteration counter aggregates summed across lanes;
    * ``align_or`` — OR of every lane base and stride, so one mask test
      checks that all replay deltas stay line-aligned;
    * ``all_static`` — every stride is zero (a revisit phase): residency
      and LRU state are iteration-invariant, so the closed form checks
      and applies them once instead of K times.
    """

    __slots__ = (
        "lanes", "count", "name", "iter_cycles", "iter_prefix",
        "instructions", "word_accesses", "local_accesses",
        "ls_reads", "ls_read_accesses", "ls_writes", "ls_write_accesses",
        "ls_max_end", "has_local", "align_or", "all_static", "_geometries",
    )

    def __init__(self, lanes: tuple, count: int, name: str | None) -> None:
        self.lanes = lanes
        self.count = count
        self.name = name
        self._geometries: dict[int, _PhaseGeometry] = {}

        arith = True
        cycles = 0
        prefix: list[int] = []
        align_or = 0
        all_static = True
        instructions = word_accesses = local_accesses = 0
        ls_reads = ls_read_accesses = ls_writes = ls_write_accesses = 0
        ls_max_end = 0
        has_local = False
        for blk, base, stride in lanes:
            align_or |= base | stride
            if stride:
                all_static = False
            if blk.arith_cycles is None:
                arith = False
            elif arith:
                for p in blk.prefix_cycles:
                    prefix.append(cycles + p)
                cycles += blk.arith_cycles
            instructions += blk.instructions
            word_accesses += blk.word_accesses
            local_accesses += blk.local_accesses
            ls_reads += blk.ls_reads
            ls_read_accesses += blk.ls_read_accesses
            ls_writes += blk.ls_writes
            ls_write_accesses += blk.ls_write_accesses
            if blk.ls_max_end > ls_max_end:
                ls_max_end = blk.ls_max_end
            has_local = has_local or blk.has_local

        # A zero-cost iteration can never renew a quantum, so the
        # schedule arithmetic would not terminate; such degenerate
        # phases simply spill (cycles > 0 whenever any lane does work).
        self.iter_cycles = cycles if arith and cycles > 0 else None
        self.iter_prefix = tuple(prefix) if self.iter_cycles else None
        self.instructions = instructions
        self.word_accesses = word_accesses
        self.local_accesses = local_accesses
        self.ls_reads = ls_reads
        self.ls_read_accesses = ls_read_accesses
        self.ls_writes = ls_writes
        self.ls_write_accesses = ls_write_accesses
        self.ls_max_end = ls_max_end
        self.has_local = has_local
        self.align_or = align_or
        self.all_static = all_static

    def __repr__(self) -> str:
        label = self.name or "anonymous"
        return (f"<OpPhase {label!r}: {len(self.lanes)} lane(s) "
                f"x {self.count} iterations>")

    def op(self) -> tuple:
        """The phase op this descriptor is yielded as."""
        return (OP_PHASE, self)

    def rebase(self, base: int, count: int) -> "OpPhase":
        """A single-lane descriptor sharing this one's closed forms.

        Everything :meth:`__init__` precomputes per iteration — cycle
        schedule, counter aggregates, local-store footprint — is
        independent of the lane base, so a run coalescer can build one
        prototype per (template, stride) and stamp out per-run
        descriptors that share the prefix tuple *and* the geometry
        cache instead of re-deriving both.  Only valid on single-lane
        phases (the only kind :func:`phase_runs` mints).
        """
        proto_lanes = self.lanes
        if len(proto_lanes) != 1:
            raise ValueError("rebase() requires a single-lane phase")
        blk, _old_base, stride = proto_lanes[0]
        ph = object.__new__(OpPhase)
        ph.lanes = ((blk, base, stride),)
        ph.count = count
        ph.name = self.name
        ph.iter_cycles = self.iter_cycles
        ph.iter_prefix = self.iter_prefix
        ph.instructions = self.instructions
        ph.word_accesses = self.word_accesses
        ph.local_accesses = self.local_accesses
        ph.ls_reads = self.ls_reads
        ph.ls_read_accesses = self.ls_read_accesses
        ph.ls_writes = self.ls_writes
        ph.ls_write_accesses = self.ls_write_accesses
        ph.ls_max_end = self.ls_max_end
        ph.has_local = self.has_local
        ph.align_or = base | stride
        ph.all_static = stride == 0
        ph._geometries = self._geometries
        return ph

    def geometry(self, line_shift: int) -> _PhaseGeometry:
        """The (cached) per-iteration closed-form view for one geometry."""
        geom = self._geometries.get(line_shift)
        if geom is None:
            geom = self._geometries[line_shift] = _PhaseGeometry(
                self.lanes, line_shift)
        return geom

    def replays(self, start: int = 0, stop: int | None = None) -> list:
        """The block-replay stream for iterations ``[start, stop)``.

        This *is* the phase's semantics: each entry is the plain
        ``("blk", template, delta)`` op the unconverted loop would have
        yielded, in iteration-major, lane-minor order.
        """
        if stop is None:
            stop = self.count
        lanes = self.lanes
        return [
            (OP_BLOCK, blk, base + k * stride)
            for k in range(start, stop)
            for blk, base, stride in lanes
        ]


def phase(*lanes: tuple, count: int, name: str | None = None) -> OpPhase:
    """Build an immutable, validated :class:`OpPhase` from lane tuples.

    Each lane is ``(template, base, stride)``: iteration ``k`` of the
    phase replays ``template.at(base + k * stride)``.  Validation is
    front-loaded here so the processor's phase arm does none: every
    template must be an :class:`OpBlock`, and every replay delta the
    phase can produce must keep the template's lowest address
    non-negative (strides may be negative for descending sweeps).
    """
    if not lanes:
        raise ValueError("a phase must contain at least one lane")
    if not isinstance(count, int) or count < 1:
        raise ValueError(f"phase iteration count must be >= 1, got {count!r}")
    if count > MAX_PHASE_ITERS:
        raise ValueError(
            f"phase of {count} iterations exceeds "
            f"MAX_PHASE_ITERS={MAX_PHASE_ITERS}")
    checked = []
    for lane in lanes:
        if (not isinstance(lane, tuple) or len(lane) != 3
                or not isinstance(lane[0], OpBlock)):
            raise ValueError(
                f"phase lane must be (OpBlock, base, stride), got {lane!r}")
        blk, base, stride = lane
        if not isinstance(base, int) or not isinstance(stride, int):
            raise ValueError(
                f"phase lane base/stride must be ints, got {lane!r}")
        # The extreme deltas bound every iteration's delta, so checking
        # both ends validates the whole run.
        for delta in (base, base + (count - 1) * stride):
            if delta < 0 and blk.min_addr + delta < 0:
                raise ValueError(
                    f"{blk!r}: phase delta {delta} shifts address "
                    f"{blk.min_addr:#x} negative")
        checked.append((blk, base, stride))
    return OpPhase(tuple(checked), count, name)


# ----------------------------------------------------------------------
# Op streams: whole double-buffered DMA loops as one descriptor
# ----------------------------------------------------------------------

#: Upper bound on iterations per stream (guards a nonsensical
#: descriptor; streams materialize lazily in bounded chunks).
MAX_STREAM_ITERS = 1 << 24


class OpStream:
    """A run of ``count`` double-buffered DMA loop iterations.

    The canonical streaming-model hot loop — *fetch the next tile /
    wait for this one / run the local-store kernel / put the previous
    tile back* — is described once as a step list evaluated per
    iteration ``k``:

    * ``("dget", tag0, alt, ahead, table)`` — issue one DMA get per
      ``(addr, nbytes)`` pair in ``table[k + ahead]`` under tag
      ``tag0 + ((k + ahead) & alt)``; skipped when ``k + ahead >=
      count`` (the look-ahead fetch has nothing left to prefetch).
    * ``("dput", tag0, alt, 0, table)`` — the put mirror, indexed at
      ``k`` itself.
    * ``("dwait", tag0, alt, kmin)`` — wait on tag ``tag0 + (k & alt)``;
      skipped while ``k < kmin`` (the tag has not been issued yet).
    * ``("blk", table)`` — replay the :class:`OpBlock` ``table[k]`` at
      delta 0 (streaming kernels address the local store, which never
      shifts).
    * ``("lsst", table, nbytes, accesses)`` — a bare local-store write
      at offset ``table[k]`` (e.g. bitonic's hi-half writeback between
      the two puts of an iteration).

    Tables are plain per-thread sequences (addresses need not follow
    any stride — filtered block lists and mesh-indexed gathers index
    straight in), so one descriptor covers a whole pass.  Yielding the
    stream op means exactly yielding :meth:`materialize`'s op tuples
    one by one; the processor's stream arm interprets the steps with
    bit-identical per-op semantics but no generator round trips, and
    ``REPRO_STREAMS=0`` (or a mid-iteration suspension point) falls
    back to the materialized chunks.
    """

    __slots__ = ("steps", "count", "name")

    def __init__(self, steps: tuple, count: int, name: str | None) -> None:
        self.steps = steps
        self.count = count
        self.name = name

    def __repr__(self) -> str:
        label = self.name or "anonymous"
        return (f"<OpStream {label!r}: {len(self.steps)} step(s) "
                f"x {self.count} iterations>")

    def op(self) -> tuple:
        """The stream op this descriptor is yielded as."""
        return (OP_STREAM, self)

    def materialize(self, start: int = 0, stop: int | None = None,
                    step0: int = 0) -> list:
        """The plain per-op DMA stream for iterations ``[start, stop)``.

        This *is* the stream's semantics: every execution mode other
        than the stream arm (``REPRO_STREAMS=0``, or a resume after a
        mid-iteration quantum yield) runs exactly these tuples through
        the ordinary dispatch arms.  ``step0`` skips the first
        iteration's leading steps (a quantum yield spills the rest of
        the interrupted iteration, not all of it).
        """
        if stop is None:
            stop = self.count
        count = self.count
        all_steps = self.steps
        first_steps = all_steps[step0:] if step0 else all_steps
        out = []
        emit = out.append
        for k in range(start, stop):
            for step in first_steps if k == start else all_steps:
                kind = step[0]
                if kind == OP_DMA_GET or kind == OP_DMA_PUT:
                    _, tag0, alt, ahead, table = step
                    j = k + ahead
                    if j >= count:
                        continue
                    tag = tag0 + (j & alt)
                    for addr, nbytes in table[j]:
                        emit((kind, tag, addr, nbytes, 0, None))
                elif kind == OP_DMA_WAIT:
                    _, tag0, alt, kmin = step
                    if k >= kmin:
                        emit((OP_DMA_WAIT, tag0 + (k & alt)))
                elif kind == OP_BLOCK:
                    emit((OP_BLOCK, step[1][k], 0))
                else:  # lsst
                    _, table, nbytes, accesses = step
                    emit((OP_LOCAL_STORE, table[k], nbytes, accesses))
        return out

    def footprint(self):
        """All DMA commands the stream issues, as raw command tuples.

        Returns ``(gets, puts)`` where each entry is ``(tag, addr,
        nbytes, 0, None)`` in issue order — the shape the static
        dataflow auditor feeds its range checks.
        """
        gets: list = []
        puts: list = []
        count = self.count
        for k in range(count):
            for step in self.steps:
                kind = step[0]
                if kind == OP_DMA_GET or kind == OP_DMA_PUT:
                    _, tag0, alt, ahead, table = step
                    j = k + ahead
                    if j >= count:
                        continue
                    tag = tag0 + (j & alt)
                    sink = gets if kind == OP_DMA_GET else puts
                    for addr, nbytes in table[j]:
                        sink.append((tag, addr, nbytes, 0, None))
        return gets, puts


def _check_table(table, need: int, what: str) -> None:
    if len(table) < need:
        raise ValueError(
            f"stream {what} table holds {len(table)} entries; "
            f"the stream needs {need}")


def stream_get(tag0: int, table, alternate: bool = True,
               ahead: int = 0) -> tuple:
    """A per-iteration DMA-get step for :func:`stream`.

    ``table[j]`` is the tuple of ``(addr, nbytes)`` commands iteration
    ``k = j - ahead`` issues; ``ahead=1`` is the double-buffer
    look-ahead fetch (skipped on the last iteration, and ``table[0]``
    is left to the loop prologue).  ``alternate`` selects the
    ping-pong tag ``tag0 + (j & 1)``.
    """
    if tag0 < 0 or ahead < 0:
        raise ValueError(f"bad stream get tag={tag0} ahead={ahead}")
    return (OP_DMA_GET, tag0, 1 if alternate else 0, ahead, table)


def stream_put(tag0: int, table, alternate: bool = True) -> tuple:
    """The DMA-put mirror of :func:`stream_get`, indexed at ``k``."""
    if tag0 < 0:
        raise ValueError(f"negative stream put tag {tag0}")
    return (OP_DMA_PUT, tag0, 1 if alternate else 0, 0, table)


def stream_wait(tag0: int, alternate: bool = True, first: int = 0) -> tuple:
    """A per-iteration DMA-wait step: skipped while ``k < first``."""
    if tag0 < 0 or first < 0:
        raise ValueError(f"bad stream wait tag={tag0} first={first}")
    return (OP_DMA_WAIT, tag0, 1 if alternate else 0, first)


def stream_kernel(table) -> tuple:
    """The per-iteration local-store kernel step: replay ``table[k]``."""
    return (OP_BLOCK, table)


def stream_store(table, nbytes: int, accesses: int | None = None) -> tuple:
    """A bare per-iteration local-store write at offset ``table[k]``."""
    if nbytes <= 0:
        raise ValueError(f"stream store must cover at least one byte, "
                         f"got {nbytes}")
    if accesses is None:
        accesses = (nbytes >> 2) or 1
    elif accesses <= 0:
        raise ValueError(f"access count must be positive, got {accesses}")
    return (OP_LOCAL_STORE, table, nbytes, accesses)


def stream(*steps: tuple, count: int, name: str | None = None) -> OpStream:
    """Build an immutable, validated :class:`OpStream` from step tuples.

    Validation is front-loaded here so the stream arm does none: every
    step must come from one of the ``stream_*`` factories above, every
    table must cover the iterations that index it, kernel tables must
    hold :class:`OpBlock` templates, and DMA tables must hold positive
    line ranges.
    """
    if not steps:
        raise ValueError("a stream must contain at least one step")
    if not isinstance(count, int) or count < 1:
        raise ValueError(f"stream iteration count must be >= 1, got {count!r}")
    if count > MAX_STREAM_ITERS:
        raise ValueError(
            f"stream of {count} iterations exceeds "
            f"MAX_STREAM_ITERS={MAX_STREAM_ITERS}")
    for step in steps:
        kind = step[0]
        if kind == OP_DMA_GET or kind == OP_DMA_PUT:
            _, _tag0, _alt, ahead, table = step
            # The look-ahead step's last used index is count - 1 (the
            # guard skips k + ahead >= count), so every step needs
            # exactly count table entries.
            _check_table(table, count, "DMA")
            for j in range(ahead, count):
                for addr, nbytes in table[j]:
                    if addr < 0 or nbytes <= 0:
                        raise ValueError(
                            f"bad stream DMA range addr={addr:#x} "
                            f"nbytes={nbytes}")
        elif kind == OP_DMA_WAIT:
            pass
        elif kind == OP_BLOCK:
            table = step[1]
            _check_table(table, count, "kernel")
            for tmpl in table:
                if not isinstance(tmpl, OpBlock):
                    raise ValueError(
                        f"stream kernel table must hold OpBlock "
                        f"templates, got {tmpl!r}")
        elif kind == OP_LOCAL_STORE:
            _check_table(step[1], count, "local-store")
        else:
            raise ValueError(f"unknown stream step {step!r}")
    return OpStream(tuple(steps), count, name)


def phase_runs(replays, name: str | None = None):
    """Coalesce ``(template, delta)`` replays into phases, greedily.

    A generator over run-length encoding: consecutive replays of the
    *same* template whose deltas advance by a constant stride collapse
    into one single-lane :class:`OpPhase`; isolated replays stay plain
    block ops.  The emitted op stream is semantically identical to
    yielding ``template.at(delta)`` for every input pair, so workloads
    with data-dependent template choices (e.g. bitonic's dirty/clean
    compare-exchange lines) convert by streaming their natural replay
    sequence through this helper.

    Descriptor minting is amortized: the first run over a (template,
    stride) pair builds a full prototype, and every later run over the
    same pair is a :meth:`OpPhase.rebase` stamp sharing the prototype's
    precomputed schedule and geometry cache — run-heavy streams (one
    descriptor per few iterations) pay near-nothing per run.
    """
    protos: dict[tuple, OpPhase] = {}

    def emit(tmpl, base, stride, count):
        proto = protos.get((tmpl, stride))
        if proto is None:
            proto = protos[(tmpl, stride)] = OpPhase(
                ((tmpl, base, stride),), count, name)
            return (OP_PHASE, proto)
        return (OP_PHASE, proto.rebase(base, count))

    tmpl = None
    base = stride = count = last = 0
    for nxt_tmpl, nxt_delta in replays:
        if tmpl is not None and nxt_tmpl is tmpl and count < MAX_PHASE_ITERS:
            if count == 1:
                stride = nxt_delta - base
                count = 2
                last = nxt_delta
                continue
            if nxt_delta - last == stride:
                count += 1
                last = nxt_delta
                continue
        if tmpl is not None:
            if count == 1:
                yield tmpl.at(base)
            else:
                yield emit(tmpl, base, stride, count)
        tmpl = nxt_tmpl
        base = last = nxt_delta
        stride = 0
        count = 1
    if tmpl is not None:
        if count == 1:
            yield tmpl.at(base)
        else:
            yield emit(tmpl, base, stride, count)
