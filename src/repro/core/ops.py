"""The operation vocabulary of workload threads.

A workload thread is a Python generator that yields operations; the
processor model interprets them and charges time.  Operations are plain
tuples headed by a one-of-a-kind opcode string — the hot loop of the
simulator dispatches on ``op[0]``, and tuples keep that dispatch cheap.
Workloads construct them through the factory functions below, which
document and validate the fields.

Memory operations are *aggregated*: one ``load`` may cover several cache
lines and represent many word accesses.  The processor walks the covered
lines one by one through the hierarchy, so timing is still per-line; the
``accesses`` field only feeds access counting (miss-rate denominators and
energy).  The default of one access per 4-byte word models word-granular
code.

The ``task_pop`` operation returns a value *into* the generator — use
``item = yield task_pop(queue)``.
"""

from __future__ import annotations

from typing import Any

OP_COMPUTE = "c"
OP_LOAD = "ld"
OP_STORE = "st"
OP_PFS = "pfs"
OP_LOCAL_LOAD = "lsld"
OP_LOCAL_STORE = "lsst"
OP_DMA_GET = "dget"
OP_DMA_PUT = "dput"
OP_DMA_WAIT = "dwait"
OP_BARRIER = "bar"
OP_LOCK = "lock"
OP_UNLOCK = "unlock"
OP_TASK_POP = "pop"
OP_ICACHE_MISS = "im"
OP_BULK_PREFETCH = "bpf"
OP_CACHE_FLUSH = "cfl"
OP_CACHE_INVALIDATE = "cinv"

WORD_BYTES = 4


def compute(cycles: int, instructions: int | None = None,
            l1_accesses: int = 0) -> tuple:
    """Execute for ``cycles`` core cycles.

    ``instructions`` defaults to two per cycle (a 3-slot VLIW sustaining
    an IPC of ~2 on compute kernels).  ``l1_accesses`` counts additional
    L1 hits for stack/temporary traffic that the workload does not model
    address-by-address; they feed access counters and cache energy only.
    """
    if cycles < 0:
        raise ValueError(f"negative compute cycles {cycles}")
    if instructions is None:
        instructions = 2 * cycles
    if instructions < 0 or l1_accesses < 0:
        raise ValueError("instruction and access counts must be non-negative")
    return (OP_COMPUTE, cycles, instructions, l1_accesses)


def _mem(opcode: str, addr: int, nbytes: int, accesses: int | None) -> tuple:
    if addr < 0:
        raise ValueError(f"negative address {addr:#x}")
    if nbytes <= 0:
        raise ValueError(f"memory operation must cover at least one byte, got {nbytes}")
    if accesses is None:
        # nbytes // WORD_BYTES, floored at one (WORD_BYTES is 4).
        accesses = (nbytes >> 2) or 1
    elif accesses <= 0:
        raise ValueError(f"access count must be positive, got {accesses}")
    return (opcode, addr, nbytes, accesses)


def load(addr: int, nbytes: int = 32, accesses: int | None = None) -> tuple:
    """Load ``nbytes`` starting at ``addr`` (may span multiple lines)."""
    # Workloads emit millions of these; the body is _mem inlined.
    if addr < 0:
        raise ValueError(f"negative address {addr:#x}")
    if nbytes <= 0:
        raise ValueError(f"memory operation must cover at least one byte, got {nbytes}")
    if accesses is None:
        accesses = (nbytes >> 2) or 1
    elif accesses <= 0:
        raise ValueError(f"access count must be positive, got {accesses}")
    return (OP_LOAD, addr, nbytes, accesses)


def store(addr: int, nbytes: int = 32, accesses: int | None = None) -> tuple:
    """Store ``nbytes`` starting at ``addr``."""
    if addr < 0:
        raise ValueError(f"negative address {addr:#x}")
    if nbytes <= 0:
        raise ValueError(f"memory operation must cover at least one byte, got {nbytes}")
    if accesses is None:
        accesses = (nbytes >> 2) or 1
    elif accesses <= 0:
        raise ValueError(f"access count must be positive, got {accesses}")
    return (OP_STORE, addr, nbytes, accesses)


def pfs_store(addr: int, nbytes: int = 32, accesses: int | None = None) -> tuple:
    """Store preceded by "Prepare For Store" (Section 5.5).

    Allocates and validates the cache lines without refilling them from
    memory — the software mechanism for non-allocating stores on
    output-only data streams.
    """
    return _mem(OP_PFS, addr, nbytes, accesses)


def local_load(offset: int, nbytes: int, accesses: int | None = None) -> tuple:
    """Read the core's local store (streaming model; single-cycle, no tags)."""
    return _mem(OP_LOCAL_LOAD, offset, nbytes, accesses)


def local_store(offset: int, nbytes: int, accesses: int | None = None) -> tuple:
    """Write the core's local store."""
    return _mem(OP_LOCAL_STORE, offset, nbytes, accesses)


def _dma(opcode: str, tag: int, addr: int, nbytes: int,
         stride: int, block: int | None) -> tuple:
    if tag < 0:
        raise ValueError(f"negative DMA tag {tag}")
    if addr < 0 or nbytes <= 0:
        raise ValueError(f"bad DMA range addr={addr:#x} nbytes={nbytes}")
    return (opcode, tag, addr, nbytes, stride, block)


def dma_get(tag: int, addr: int, nbytes: int,
            stride: int = 0, block: int | None = None) -> tuple:
    """Queue a DMA transfer from memory into the local store.

    ``stride``/``block`` select a strided gather; the default is one
    contiguous block.  Completion is observed with :func:`dma_wait` on the
    same ``tag``.
    """
    return _dma(OP_DMA_GET, tag, addr, nbytes, stride, block)


def dma_put(tag: int, addr: int, nbytes: int,
            stride: int = 0, block: int | None = None) -> tuple:
    """Queue a DMA transfer from the local store to memory."""
    return _dma(OP_DMA_PUT, tag, addr, nbytes, stride, block)


def dma_wait(tag: int) -> tuple:
    """Stall until every DMA command issued under ``tag`` has completed."""
    if tag < 0:
        raise ValueError(f"negative DMA tag {tag}")
    return (OP_DMA_WAIT, tag)


def barrier_wait(barrier: Any) -> tuple:
    """Block until every participating thread reaches ``barrier``."""
    return (OP_BARRIER, barrier)


def lock_acquire(lock: Any) -> tuple:
    """Acquire ``lock``, blocking while another thread holds it."""
    return (OP_LOCK, lock)


def lock_release(lock: Any) -> tuple:
    """Release ``lock`` (must be held by this thread)."""
    return (OP_UNLOCK, lock)


def task_pop(queue: Any) -> tuple:
    """Pop a task; the popped item (or None) is sent back into the generator."""
    return (OP_TASK_POP, queue)


def bulk_prefetch(addr: int, nbytes: int) -> tuple:
    """Software bulk prefetch into the cache (a hybrid-model primitive).

    Section 7 of the paper suggests that "bulk transfer primitives for
    cache-based systems could enable more efficient macroscopic
    prefetching": this operation asks the cache hierarchy to start
    fetching ``[addr, addr+nbytes)`` asynchronously, like a DMA get whose
    destination is the L1 cache.  Later demand loads to those lines wait
    only for the in-flight fill, not a full miss.
    """
    if addr < 0 or nbytes <= 0:
        raise ValueError(f"bad prefetch range addr={addr:#x} nbytes={nbytes}")
    return (OP_BULK_PREFETCH, addr, nbytes)


def cache_flush(addr: int, nbytes: int) -> tuple:
    """Write back (and clean) any dirty cached lines in the range.

    The software communication primitive of the incoherent cache model
    (Table 1 / Section 7): a producer flushes its output before the
    synchronization point that publishes it.
    """
    if addr < 0 or nbytes <= 0:
        raise ValueError(f"bad flush range addr={addr:#x} nbytes={nbytes}")
    return (OP_CACHE_FLUSH, addr, nbytes)


def cache_invalidate(addr: int, nbytes: int) -> tuple:
    """Drop any cached lines in the range (they must be clean).

    The consumer-side primitive of the incoherent cache model: invalidate
    a shared region after the synchronization point so subsequent loads
    observe the producer's flushed data.
    """
    if addr < 0 or nbytes <= 0:
        raise ValueError(f"bad invalidate range addr={addr:#x} nbytes={nbytes}")
    return (OP_CACHE_INVALIDATE, addr, nbytes)


def icache_miss(count: int = 1) -> tuple:
    """Charge ``count`` instruction-cache misses (fetch stalls).

    The paper's execution-time breakdown folds fetch stalls into "useful
    execution", so the processor attributes them there while counting
    them for energy and for the Figure 9 discussion (stream-optimized
    MPEG-2 notably increases I-cache misses).
    """
    if count <= 0:
        raise ValueError(f"icache miss count must be positive, got {count}")
    return (OP_ICACHE_MISS, count)
