"""Cores, synchronization, and system assembly.

* :mod:`repro.core.ops` — the operation vocabulary workload threads yield,
* :mod:`repro.core.sync` — barriers, locks, and task queues,
* :mod:`repro.core.processor` — the in-order core timing model,
* :mod:`repro.core.system` — assembles a :class:`~repro.config.MachineConfig`
  and a workload program into a runnable CMP and produces a
  :class:`~repro.results.RunResult`.
"""

from repro.core.ops import (
    barrier_wait,
    bulk_prefetch,
    cache_flush,
    cache_invalidate,
    compute,
    dma_get,
    dma_put,
    dma_wait,
    icache_miss,
    load,
    local_load,
    local_store,
    lock_acquire,
    lock_release,
    pfs_store,
    store,
    task_pop,
)
from repro.core.processor import Processor
from repro.core.sync import Barrier, Lock, TaskQueue
from repro.core.system import CmpSystem, run_program

__all__ = [
    "barrier_wait",
    "bulk_prefetch",
    "cache_flush",
    "cache_invalidate",
    "compute",
    "dma_get",
    "dma_put",
    "dma_wait",
    "icache_miss",
    "load",
    "local_load",
    "local_store",
    "lock_acquire",
    "lock_release",
    "pfs_store",
    "store",
    "task_pop",
    "Processor",
    "Barrier",
    "Lock",
    "TaskQueue",
    "CmpSystem",
    "run_program",
]
