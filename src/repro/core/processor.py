"""In-order core timing model.

Each processor interprets one workload thread (a generator of operations,
see :mod:`repro.core.ops`) against the memory hierarchy, charging every
femtosecond of its execution to one of the four components of the paper's
execution-time breakdown (Figure 2):

* **useful** — computation, instruction issue for loads/stores, fetch and
  other non-memory pipeline stalls (including I-cache misses),
* **sync** — locks, barriers, task-queue contention, waiting for DMA,
* **load** — stalls for demand load misses (in-order cores block on loads),
* **store** — stalls when the store buffer is full.

Cores run ahead of the global clock in quanta of ``quantum_cycles`` and
then yield to the event queue, which keeps the occupancy-based contention
model honest without per-cycle lockstep.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Any, Iterator

from repro.core.sync import (
    BARRIER_OVERHEAD_CYCLES,
    LOCK_OVERHEAD_CYCLES,
    TASK_POP_OVERHEAD_CYCLES,
)
from repro.mem.coherence import MesiState
from repro.sim.fastpath import blocks_enabled, fastpath_enabled
from repro.sim.kernel import SimulationError
from repro.units import ns_to_fs

if TYPE_CHECKING:
    from repro.core.system import CmpSystem

#: Fetch stall per instruction-cache miss: an L2 round trip.
ICACHE_MISS_PENALTY_NS = 12.0


def _limit_after_block(start_fs: int, limit_fs: int, cycle_fs: int,
                       quantum_fs: int, prefix_cycles: tuple) -> int:
    """Quantum limit after replaying a block's per-op renewal schedule.

    Per-op execution checks ``now >= limit`` after *every* op and, with
    the queue head beyond the core's clock, renews ``limit = now +
    quantum``.  The closed form must leave the same limit so quantum
    boundaries stay aligned with per-op execution for the rest of the
    thread.  ``prefix_cycles[i]`` is the block's cumulative cost after op
    ``i``, so the op times are ``start + P_i * cycle`` and each renewal
    picks the first boundary at or past the current limit.  Renewal is
    guaranteed to succeed: the caller established that the queue head
    lies beyond the block's end, hence beyond every interior boundary.
    """
    total = prefix_cycles[-1]
    while True:
        need = -(-(limit_fs - start_fs) // cycle_fs)
        if need > total:
            return limit_fs
        index = bisect_left(prefix_cycles, need)
        limit_fs = start_fs + prefix_cycles[index] * cycle_fs + quantum_fs


class Processor:
    """One in-order core executing one workload thread."""

    def __init__(self, core_id: int, system: "CmpSystem",
                 thread: Iterator[tuple]) -> None:
        self.core_id = core_id
        self.system = system
        self.sim = system.sim
        self.hierarchy = system.hierarchy
        config = system.config
        self.cycle_fs = config.core.cycle_fs
        self._quantum_fs = config.quantum_cycles * self.cycle_fs
        self._line_shift = config.line_bytes.bit_length() - 1
        self._line_bytes = config.line_bytes
        self._imiss_fs = ns_to_fs(ICACHE_MISS_PENALTY_NS)
        self._dma_setup_cycles = config.stream.dma_setup_instructions
        self._gen = thread
        self._send_value: Any = None
        self._dma_tags: dict[int, int] = {}
        self._local_store = getattr(system.hierarchy, "local_stores", None)
        self._dma_engine = None
        engines = getattr(system.hierarchy, "dma_engines", None)
        if engines is not None:
            self._dma_engine = engines[core_id]
        #: Run-until-miss fast path (see :mod:`repro.sim.fastpath`).
        #: Read at construction so one system runs one mode throughout.
        self._fastpath = fastpath_enabled()
        #: Block interpreter switch (REPRO_BLOCKS); when off, every
        #: OpBlock is materialized back into the plain per-op stream.
        self._blocks = blocks_enabled()
        #: Ops spilled from a block (materialized remainder after a
        #: mid-block yield, or a whole block under REPRO_BLOCKS=0),
        #: consumed LIFO before the generator is consulted again.
        self._pending: list[tuple] = []
        # Clock and accounting (all femtoseconds)
        self.now = 0
        self.useful_fs = 0
        self.sync_fs = 0
        self.load_stall_fs = 0
        self.store_stall_fs = 0
        self.instructions = 0
        self.word_accesses = 0
        self.local_accesses = 0
        self.icache_misses = 0
        self.done = False
        self.finish_fs = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Schedule the core's first execution event at time zero."""
        self.sim.at(0, self._step)

    def wake(self, release_fs: int) -> None:
        """Called by a sync primitive to resume a suspended core."""
        if release_fs < self.now:
            release_fs = self.now
        self.sync_fs += release_fs - self.now
        self.now = release_fs
        self.sim.at(release_fs, self._step)

    def _step(self) -> None:
        self._run()

    # ------------------------------------------------------------------
    # Interpreter
    # ------------------------------------------------------------------

    def _run(self) -> None:
        """Interpret operations until suspension, quantum expiry, or the end.

        This is the simulator's single hottest loop, and it is written
        accordingly: the local clock and every per-op counter live in
        local variables (flushed back to the object in one place),
        bound methods are hoisted out of the loop, and — with the fast
        path enabled — two classes of event-queue round trips disappear:

        * **Guaranteed L1 hits** are retired inline (LRU touch + counter)
          without calling into the hierarchy walker.  A line that is
          absent, still in flight (``ready_fs``), or carrying a prefetch
          tag takes the ordinary walker path, so every stat and timestamp
          is bit-identical.
        * **Quantum expiry** only re-enters the event queue when another
          event is pending at or before the core's local clock.  When the
          queue is empty or its head lies in this core's future, the
          kernel would pop this core's own resume event next with nothing
          in between, so eliding the yield cannot change the interleaving
          of shared-resource acquisitions — the core just keeps running
          (run-until-miss/sync/boundary) with a renewed quantum.

        ``REPRO_FASTPATH=0`` disables both, restoring the seed's
        one-event-per-quantum execution; per-access side channels (trace
        hooks, invariant observers) disable the inline-hit path alone.

        * **Op blocks** (``"blk"``) are immutable templates the workload
          yields once per loop iteration (see :func:`repro.core.ops.block`).
          A block of compute / L1 / local-store ops whose lines are all
          guaranteed inline hits and whose end precedes the queue head
          retires in *closed form* — cost, counters, and LRU touches
          applied arithmetically, with the quantum-renewal schedule
          replayed via :func:`_limit_after_block`.  Otherwise the block
          runs through a tight per-op loop (no generator round trips),
          spilling its unexecuted remainder into ``self._pending`` if the
          quantum expires mid-block.  ``REPRO_BLOCKS=0``, or any block
          carrying DMA / prefetch / flush ops, materializes the block
          back into plain tuples handled by the arms above.
        """
        gen_send = self._gen.send
        cycle_fs = self.cycle_fs
        hierarchy = self.hierarchy
        load_line = hierarchy.load_line
        store_line = hierarchy.store_line
        core_id = self.core_id
        line_shift = self._line_shift
        line_mask = self._line_bytes - 1
        quantum_fs = self._quantum_fs
        fastpath = self._fastpath
        fast_mem = fastpath and hierarchy.fastpath_safe
        blocks_on = self._blocks
        pending = self._pending
        # Per-op invariants hoisted to loop-locals: resolved once per
        # scheduling slice instead of once per op.
        local_store = (self._local_store[core_id]
                       if self._local_store is not None else None)
        dma_engine = self._dma_engine
        dma_tags = self._dma_tags
        dma_setup_cycles = self._dma_setup_cycles
        dma_setup_fs = dma_setup_cycles * cycle_fs
        imiss_fs = self._imiss_fs
        # The inline hit path goes straight at the L1's per-set dicts; the
        # slow path (and every miss) re-enters through the cache's public
        # methods, so LRU order ends up identical either way.
        l1 = hierarchy.l1s[core_id]
        l1_sets = l1._sets
        l1_mask = l1._set_mask
        peek_time = self.sim.queue.peek_time
        shared = MesiState.SHARED
        modified = MesiState.MODIFIED

        send_value = self._send_value
        now = self.now
        limit = now + quantum_fs
        # Batched deltas, flushed by _flush_locals at every exit.
        useful = 0
        sync = 0
        load_stall = 0
        store_stall = 0
        instructions = 0
        word_accesses = 0
        local_accesses = 0
        icache_misses = 0
        loads_hit = 0
        stores_hit = 0

        # Exit actions: how the loop below was left.
        FINISH, SUSPEND, YIELD = 0, 1, 2
        action = SUSPEND
        try:
            while True:
                if pending:
                    # Spilled block remainder; blocks never contain ops
                    # that suspend or send values, so send_value is
                    # untouched on this path.
                    op = pending.pop()
                else:
                    try:
                        op = gen_send(send_value)
                    except StopIteration:
                        action = FINISH
                        break
                    send_value = None
                kind = op[0]

                if kind == "c":
                    _, cycles, op_instructions, l1_accesses = op
                    cost = cycles * cycle_fs
                    now += cost
                    useful += cost
                    instructions += op_instructions
                    word_accesses += l1_accesses

                elif kind == "ld":
                    _, addr, nbytes, accesses = op
                    issue = accesses * cycle_fs
                    now += issue
                    useful += issue
                    instructions += accesses
                    word_accesses += accesses
                    line = addr >> line_shift
                    last = (addr + nbytes - 1) >> line_shift
                    while True:
                        if fast_mem:
                            cache_set = l1_sets[line & l1_mask]
                            entry = cache_set.get(line)
                            if (entry is not None and entry.ready_fs <= now
                                    and not entry.prefetched):
                                cache_set.move_to_end(line)
                                loads_hit += 1
                                if line == last:
                                    break
                                line += 1
                                continue
                        done = load_line(core_id, line, now)
                        if done > now:
                            load_stall += done - now
                            now = done
                        if line == last:
                            break
                        line += 1

                elif kind == "st" or kind == "pfs":
                    _, addr, nbytes, accesses = op
                    issue = accesses * cycle_fs
                    now += issue
                    useful += issue
                    instructions += accesses
                    word_accesses += accesses
                    no_allocate = kind == "pfs"
                    line = addr >> line_shift
                    last = (addr + nbytes - 1) >> line_shift
                    while True:
                        if fast_mem:
                            cache_set = l1_sets[line & l1_mask]
                            entry = cache_set.get(line)
                            if entry is not None and entry.state is not shared:
                                cache_set.move_to_end(line)
                                entry.state = modified
                                entry.prefetched = False
                                stores_hit += 1
                                if line == last:
                                    break
                                line += 1
                                continue
                        stall = store_line(core_id, line, now,
                                           no_allocate=no_allocate)
                        if stall:
                            store_stall += stall
                            now += stall
                        if line == last:
                            break
                        line += 1

                elif kind == "blk":
                    blk = op[1]
                    delta = op[2]
                    # A 4-tuple is a resume cursor spilled by the tight
                    # loop below at a quantum boundary; re-enter at the
                    # recorded op index (skipping the closed form, whose
                    # geometry covers only whole blocks).
                    start = op[3] if len(op) == 4 else 0
                    if not blocks_on or blk.arith_cycles is None:
                        # Escape hatch, or a block carrying DMA / prefetch
                        # / flush ops: run the plain per-op stream through
                        # the ordinary dispatch arms above.
                        pending.extend(reversed(blk.materialize(delta)))
                        continue
                    if start == 0 and fast_mem and not (delta & line_mask):
                        # Closed form: if every line the block touches is
                        # a guaranteed inline hit and no foreign event
                        # intervenes before the block's end, the whole
                        # block retires arithmetically.  Every condition
                        # checked here is exactly the condition under
                        # which the per-op loop below would have taken
                        # the inline path for every single access.  The
                        # per-line residency checks run first: they are
                        # plain dict probes that fail fast on miss-heavy
                        # streams, gating the costlier queue peek.
                        geom = blk._geometries.get(line_shift)
                        if geom is None:
                            geom = blk.geometry(line_shift)
                        dl = delta >> line_shift
                        ok = True
                        for rel, loaded, fresh, written in geom.checks:
                            line = rel + dl
                            entry = l1_sets[line & l1_mask].get(line)
                            if (entry is None
                                    or (loaded
                                        and (entry.ready_fs > now
                                             or (fresh
                                                 and entry.prefetched)))
                                    or (written
                                        and entry.state is shared)):
                                ok = False
                                break
                        if ok and blk.has_local:
                            ok = (local_store is not None
                                  and local_store.observer is None
                                  and blk.ls_max_end
                                  <= local_store.capacity_bytes)
                        if ok:
                            end = now + blk.arith_cycles * cycle_fs
                            if end >= limit:
                                next_fs = peek_time()
                                ok = next_fs is None or next_fs > end
                        if ok:
                            for rel in geom.stored:
                                line = rel + dl
                                entry = l1_sets[line & l1_mask][line]
                                entry.state = modified
                                entry.prefetched = False
                            for rel in geom.lru:
                                line = rel + dl
                                l1_sets[line & l1_mask].move_to_end(line)
                            loads_hit += geom.loads_hit
                            stores_hit += geom.stores_hit
                            if blk.has_local:
                                local_store.reads += blk.ls_reads
                                local_store.read_accesses += (
                                    blk.ls_read_accesses)
                                local_store.writes += blk.ls_writes
                                local_store.write_accesses += (
                                    blk.ls_write_accesses)
                            useful += end - now
                            instructions += blk.instructions
                            word_accesses += blk.word_accesses
                            local_accesses += blk.local_accesses
                            if end >= limit:
                                limit = _limit_after_block(
                                    now, limit, cycle_fs, quantum_fs,
                                    blk.prefix_cycles)
                            now = end
                            continue
                    # Tight per-op loop: same arms as above, no generator
                    # round trips.  Only arithmetic opcodes occur here
                    # (compute / ld / st / pfs / lsld / lsst) — blocks
                    # with anything else were materialized above.
                    ops_seq = blk.ops
                    n_ops = len(ops_seq)
                    index = start
                    yielded = False
                    while index < n_ops:
                        bop = ops_seq[index]
                        index += 1
                        bkind = bop[0]
                        if bkind == "ld":
                            _, addr, nbytes, accesses = bop
                            addr += delta
                            issue = accesses * cycle_fs
                            now += issue
                            useful += issue
                            instructions += accesses
                            word_accesses += accesses
                            line = addr >> line_shift
                            last = (addr + nbytes - 1) >> line_shift
                            while True:
                                if fast_mem:
                                    cache_set = l1_sets[line & l1_mask]
                                    entry = cache_set.get(line)
                                    if (entry is not None
                                            and entry.ready_fs <= now
                                            and not entry.prefetched):
                                        cache_set.move_to_end(line)
                                        loads_hit += 1
                                        if line == last:
                                            break
                                        line += 1
                                        continue
                                done = load_line(core_id, line, now)
                                if done > now:
                                    load_stall += done - now
                                    now = done
                                if line == last:
                                    break
                                line += 1
                        elif bkind == "c":
                            _, cycles, op_instructions, l1_accesses = bop
                            cost = cycles * cycle_fs
                            now += cost
                            useful += cost
                            instructions += op_instructions
                            word_accesses += l1_accesses
                        elif bkind == "st" or bkind == "pfs":
                            _, addr, nbytes, accesses = bop
                            addr += delta
                            issue = accesses * cycle_fs
                            now += issue
                            useful += issue
                            instructions += accesses
                            word_accesses += accesses
                            no_allocate = bkind == "pfs"
                            line = addr >> line_shift
                            last = (addr + nbytes - 1) >> line_shift
                            while True:
                                if fast_mem:
                                    cache_set = l1_sets[line & l1_mask]
                                    entry = cache_set.get(line)
                                    if (entry is not None
                                            and entry.state is not shared):
                                        cache_set.move_to_end(line)
                                        entry.state = modified
                                        entry.prefetched = False
                                        stores_hit += 1
                                        if line == last:
                                            break
                                        line += 1
                                        continue
                                stall = store_line(core_id, line, now,
                                                   no_allocate=no_allocate)
                                if stall:
                                    store_stall += stall
                                    now += stall
                                if line == last:
                                    break
                                line += 1
                        else:  # lsld / lsst
                            _, offset, nbytes, accesses = bop
                            if local_store is None:
                                raise SimulationError(
                                    f"core {core_id}: local-store access "
                                    "on the cache-coherent model")
                            local_store.check_range(offset, nbytes)
                            if bkind == "lsld":
                                local_store.record_read(nbytes, accesses)
                            else:
                                local_store.record_write(nbytes, accesses)
                            issue = accesses * cycle_fs
                            now += issue
                            useful += issue
                            instructions += accesses
                            local_accesses += accesses
                        if now >= limit:
                            if fastpath:
                                next_fs = peek_time()
                                if next_fs is None or next_fs > now:
                                    limit = now + quantum_fs
                                    continue
                            if index < n_ops:
                                pending.append(("blk", blk, delta, index))
                            yielded = True
                            break
                    if yielded:
                        action = YIELD
                        break
                    continue

                elif kind == "lsld" or kind == "lsst":
                    _, offset, nbytes, accesses = op
                    store = local_store
                    if store is None:
                        raise SimulationError(
                            f"core {core_id}: local-store access on the "
                            "cache-coherent model")
                    store.check_range(offset, nbytes)
                    if kind == "lsld":
                        store.record_read(nbytes, accesses)
                    else:
                        store.record_write(nbytes, accesses)
                    issue = accesses * cycle_fs
                    now += issue
                    useful += issue
                    instructions += accesses
                    local_accesses += accesses

                elif kind == "dget" or kind == "dput":
                    _, tag, addr, nbytes, stride, block = op
                    if dma_engine is None:
                        raise SimulationError(
                            f"core {core_id}: DMA issued on the "
                            "cache-coherent model"
                        )
                    now += dma_setup_fs
                    useful += dma_setup_fs
                    instructions += dma_setup_cycles
                    if kind == "dget":
                        done = dma_engine.get(now, addr, nbytes, stride, block)
                    else:
                        done = dma_engine.put(now, addr, nbytes, stride, block)
                    previous = dma_tags.get(tag, 0)
                    if done > previous:
                        dma_tags[tag] = done

                elif kind == "dwait":
                    done = dma_tags.get(op[1])
                    if done is None:
                        # Waiting on a tag that never issued a command is
                        # always a workload bug (the wait would silently
                        # cost zero time), so fail loudly.
                        raise SimulationError(
                            f"core {core_id}: dwait on tag {op[1]} which "
                            "never issued a DMA command")
                    if done > now:
                        sync += done - now
                        now = done

                elif kind == "bar":
                    overhead = BARRIER_OVERHEAD_CYCLES * cycle_fs
                    now += overhead
                    useful += overhead
                    instructions += BARRIER_OVERHEAD_CYCLES
                    release = op[1].arrive(self, now)
                    if release is None:
                        break  # suspended; the barrier will wake us
                    sync += release - now
                    now = release

                elif kind == "lock":
                    overhead = LOCK_OVERHEAD_CYCLES * cycle_fs
                    now += overhead
                    useful += overhead
                    instructions += LOCK_OVERHEAD_CYCLES
                    granted = op[1].acquire(self, now)
                    if granted is None:
                        break  # suspended; the lock will wake us

                elif kind == "unlock":
                    op[1].release(self, now)

                elif kind == "pop":
                    overhead_fs = TASK_POP_OVERHEAD_CYCLES * cycle_fs
                    instructions += TASK_POP_OVERHEAD_CYCLES
                    item, done = op[1].pop(now, overhead_fs)
                    wait = done - now
                    useful += overhead_fs
                    sync += wait - overhead_fs
                    now = done
                    send_value = item

                elif kind == "bpf":
                    _, addr, nbytes = op
                    now += dma_setup_fs
                    useful += dma_setup_fs
                    instructions += dma_setup_cycles
                    first = addr >> line_shift
                    last = (addr + nbytes - 1) >> line_shift
                    hierarchy.bulk_prefetch(core_id, first, last, now)

                elif kind == "cfl" or kind == "cinv":
                    _, addr, nbytes = op
                    first = addr >> line_shift
                    last = (addr + nbytes - 1) >> line_shift
                    n_lines = last - first + 1
                    # Software loop: one instruction per line walked.
                    cost = n_lines * cycle_fs
                    now += cost
                    useful += cost
                    instructions += n_lines
                    if kind == "cfl":
                        hierarchy.flush_range(core_id, first, last, now)
                    else:
                        hierarchy.invalidate_range(core_id, first, last, now)

                elif kind == "im":
                    count = op[1]
                    icache_misses += count
                    penalty = count * imiss_fs
                    now += penalty
                    useful += penalty

                else:
                    raise SimulationError(f"core {core_id}: unknown op {op!r}")

                if now >= limit:
                    if fastpath:
                        next_fs = peek_time()
                        if next_fs is None or next_fs > now:
                            # Sole runnable actor: our resume event would
                            # pop next with nothing in between.  Renew the
                            # quantum in place instead of going through
                            # the heap.
                            limit = now + quantum_fs
                            continue
                    action = YIELD
                    break
        finally:
            # Single flush point: every exit (finish, suspend, yield, or
            # an op raising mid-quantum) folds the batch back exactly once.
            self._flush_locals(
                now, send_value, useful, sync, load_stall, store_stall,
                instructions, word_accesses, local_accesses, icache_misses,
                loads_hit, stores_hit)
        if action == FINISH:
            self._finish()
        elif action == YIELD:
            self.sim.at(self.now, self._step)

    def _flush_locals(self, now, send_value, useful, sync, load_stall,
                      store_stall, instructions, word_accesses,
                      local_accesses, icache_misses, loads_hit,
                      stores_hit) -> None:
        """Fold the hot loop's batched deltas back into the object state."""
        self.now = now
        self._send_value = send_value
        self.useful_fs += useful
        self.sync_fs += sync
        self.load_stall_fs += load_stall
        self.store_stall_fs += store_stall
        self.instructions += instructions
        self.word_accesses += word_accesses
        self.local_accesses += local_accesses
        self.icache_misses += icache_misses
        if loads_hit or stores_hit:
            hierarchy = self.hierarchy
            hierarchy.load_ops += loads_hit
            hierarchy.store_ops += stores_hit

    def _finish(self) -> None:
        self.done = True
        self.finish_fs = self.now
        self.system.core_finished(self)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def total_fs(self) -> int:
        """Sum of all four execution-time components."""
        return self.useful_fs + self.sync_fs + self.load_stall_fs + self.store_stall_fs
