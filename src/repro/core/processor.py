"""In-order core timing model.

Each processor interprets one workload thread (a generator of operations,
see :mod:`repro.core.ops`) against the memory hierarchy, charging every
femtosecond of its execution to one of the four components of the paper's
execution-time breakdown (Figure 2):

* **useful** — computation, instruction issue for loads/stores, fetch and
  other non-memory pipeline stalls (including I-cache misses),
* **sync** — locks, barriers, task-queue contention, waiting for DMA,
* **load** — stalls for demand load misses (in-order cores block on loads),
* **store** — stalls when the store buffer is full.

Cores run ahead of the global clock in quanta of ``quantum_cycles`` and
then yield to the event queue, which keeps the occupancy-based contention
model honest without per-cycle lockstep.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.core import ops as op_mod
from repro.core.sync import (
    BARRIER_OVERHEAD_CYCLES,
    LOCK_OVERHEAD_CYCLES,
    TASK_POP_OVERHEAD_CYCLES,
)
from repro.sim.kernel import SimulationError
from repro.units import ns_to_fs

if TYPE_CHECKING:
    from repro.core.system import CmpSystem

#: Fetch stall per instruction-cache miss: an L2 round trip.
ICACHE_MISS_PENALTY_NS = 12.0


class Processor:
    """One in-order core executing one workload thread."""

    def __init__(self, core_id: int, system: "CmpSystem",
                 thread: Iterator[tuple]) -> None:
        self.core_id = core_id
        self.system = system
        self.sim = system.sim
        self.hierarchy = system.hierarchy
        config = system.config
        self.cycle_fs = config.core.cycle_fs
        self._quantum_fs = config.quantum_cycles * self.cycle_fs
        self._line_shift = config.line_bytes.bit_length() - 1
        self._line_bytes = config.line_bytes
        self._imiss_fs = ns_to_fs(ICACHE_MISS_PENALTY_NS)
        self._dma_setup_cycles = config.stream.dma_setup_instructions
        self._gen = thread
        self._send_value: Any = None
        self._dma_tags: dict[int, int] = {}
        self._local_store = getattr(system.hierarchy, "local_stores", None)
        self._dma_engine = None
        engines = getattr(system.hierarchy, "dma_engines", None)
        if engines is not None:
            self._dma_engine = engines[core_id]
        # Clock and accounting (all femtoseconds)
        self.now = 0
        self.useful_fs = 0
        self.sync_fs = 0
        self.load_stall_fs = 0
        self.store_stall_fs = 0
        self.instructions = 0
        self.word_accesses = 0
        self.local_accesses = 0
        self.icache_misses = 0
        self.done = False
        self.finish_fs = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Schedule the core's first execution event at time zero."""
        self.sim.at(0, self._step)

    def wake(self, release_fs: int) -> None:
        """Called by a sync primitive to resume a suspended core."""
        if release_fs < self.now:
            release_fs = self.now
        self.sync_fs += release_fs - self.now
        self.now = release_fs
        self.sim.at(release_fs, self._step)

    def _step(self) -> None:
        self._run()

    # ------------------------------------------------------------------
    # Interpreter
    # ------------------------------------------------------------------

    def _run(self) -> None:
        """Interpret operations until suspension, quantum expiry, or the end."""
        gen = self._gen
        cycle_fs = self.cycle_fs
        hierarchy = self.hierarchy
        core_id = self.core_id
        limit = self.now + self._quantum_fs
        while True:
            try:
                op = gen.send(self._send_value)
            except StopIteration:
                self._finish()
                return
            self._send_value = None
            kind = op[0]

            if kind == "c":
                _, cycles, instructions, l1_accesses = op
                self.now += cycles * cycle_fs
                self.useful_fs += cycles * cycle_fs
                self.instructions += instructions
                self.word_accesses += l1_accesses

            elif kind == "ld":
                _, addr, nbytes, accesses = op
                issue = accesses * cycle_fs
                self.now += issue
                self.useful_fs += issue
                self.instructions += accesses
                self.word_accesses += accesses
                first = addr >> self._line_shift
                last = (addr + nbytes - 1) >> self._line_shift
                now = self.now
                for line in range(first, last + 1):
                    done = hierarchy.load_line(core_id, line, now)
                    if done > now:
                        self.load_stall_fs += done - now
                        now = done
                self.now = now

            elif kind == "st" or kind == "pfs":
                _, addr, nbytes, accesses = op
                issue = accesses * cycle_fs
                self.now += issue
                self.useful_fs += issue
                self.instructions += accesses
                self.word_accesses += accesses
                no_allocate = kind == "pfs"
                first = addr >> self._line_shift
                last = (addr + nbytes - 1) >> self._line_shift
                now = self.now
                for line in range(first, last + 1):
                    stall = hierarchy.store_line(core_id, line, now,
                                                 no_allocate=no_allocate)
                    if stall:
                        self.store_stall_fs += stall
                        now += stall
                self.now = now

            elif kind == "lsld" or kind == "lsst":
                _, offset, nbytes, accesses = op
                store = self._local_store[core_id]
                store.check_range(offset, nbytes)
                if kind == "lsld":
                    store.record_read(nbytes, accesses)
                else:
                    store.record_write(nbytes, accesses)
                issue = accesses * cycle_fs
                self.now += issue
                self.useful_fs += issue
                self.instructions += accesses
                self.local_accesses += accesses

            elif kind == "dget" or kind == "dput":
                _, tag, addr, nbytes, stride, block = op
                engine = self._dma_engine
                if engine is None:
                    raise SimulationError(
                        f"core {core_id}: DMA issued on the cache-coherent model"
                    )
                setup = self._dma_setup_cycles * cycle_fs
                self.now += setup
                self.useful_fs += setup
                self.instructions += self._dma_setup_cycles
                if kind == "dget":
                    done = engine.get(self.now, addr, nbytes, stride, block)
                else:
                    done = engine.put(self.now, addr, nbytes, stride, block)
                previous = self._dma_tags.get(tag, 0)
                if done > previous:
                    self._dma_tags[tag] = done

            elif kind == "dwait":
                done = self._dma_tags.get(op[1], self.now)
                if done > self.now:
                    self.sync_fs += done - self.now
                    self.now = done

            elif kind == "bar":
                overhead = BARRIER_OVERHEAD_CYCLES * cycle_fs
                self.now += overhead
                self.useful_fs += overhead
                self.instructions += BARRIER_OVERHEAD_CYCLES
                release = op[1].arrive(self, self.now)
                if release is None:
                    return  # suspended; the barrier will wake us
                self.sync_fs += release - self.now
                self.now = release

            elif kind == "lock":
                overhead = LOCK_OVERHEAD_CYCLES * cycle_fs
                self.now += overhead
                self.useful_fs += overhead
                self.instructions += LOCK_OVERHEAD_CYCLES
                granted = op[1].acquire(self, self.now)
                if granted is None:
                    return  # suspended; the lock will wake us

            elif kind == "unlock":
                op[1].release(self, self.now)

            elif kind == "pop":
                overhead_fs = TASK_POP_OVERHEAD_CYCLES * cycle_fs
                self.instructions += TASK_POP_OVERHEAD_CYCLES
                item, done = op[1].pop(self.now, overhead_fs)
                wait = done - self.now
                self.useful_fs += overhead_fs
                self.sync_fs += wait - overhead_fs
                self.now = done
                self._send_value = item

            elif kind == "bpf":
                _, addr, nbytes = op
                setup = self._dma_setup_cycles * cycle_fs
                self.now += setup
                self.useful_fs += setup
                self.instructions += self._dma_setup_cycles
                first = addr >> self._line_shift
                last = (addr + nbytes - 1) >> self._line_shift
                hierarchy.bulk_prefetch(core_id, first, last, self.now)

            elif kind == "cfl" or kind == "cinv":
                _, addr, nbytes = op
                first = addr >> self._line_shift
                last = (addr + nbytes - 1) >> self._line_shift
                n_lines = last - first + 1
                # Software loop: one instruction per line walked.
                cost = n_lines * cycle_fs
                self.now += cost
                self.useful_fs += cost
                self.instructions += n_lines
                if kind == "cfl":
                    hierarchy.flush_range(core_id, first, last, self.now)
                else:
                    hierarchy.invalidate_range(core_id, first, last, self.now)

            elif kind == "im":
                count = op[1]
                self.icache_misses += count
                penalty = count * self._imiss_fs
                self.now += penalty
                self.useful_fs += penalty

            else:
                raise SimulationError(f"core {core_id}: unknown op {op!r}")

            if self.now >= limit:
                self.sim.at(self.now, self._step)
                return

    def _finish(self) -> None:
        self.done = True
        self.finish_fs = self.now
        self.system.core_finished(self)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def total_fs(self) -> int:
        """Sum of all four execution-time components."""
        return self.useful_fs + self.sync_fs + self.load_stall_fs + self.store_stall_fs
