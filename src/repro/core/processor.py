"""In-order core timing model.

Each processor interprets one workload thread (a generator of operations,
see :mod:`repro.core.ops`) against the memory hierarchy, charging every
femtosecond of its execution to one of the four components of the paper's
execution-time breakdown (Figure 2):

* **useful** — computation, instruction issue for loads/stores, fetch and
  other non-memory pipeline stalls (including I-cache misses),
* **sync** — locks, barriers, task-queue contention, waiting for DMA,
* **load** — stalls for demand load misses (in-order cores block on loads),
* **store** — stalls when the store buffer is full.

Cores run ahead of the global clock in quanta of ``quantum_cycles`` and
then yield to the event queue, which keeps the occupancy-based contention
model honest without per-cycle lockstep.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.core.sync import (
    BARRIER_OVERHEAD_CYCLES,
    LOCK_OVERHEAD_CYCLES,
    TASK_POP_OVERHEAD_CYCLES,
)
from repro.mem.coherence import MesiState
from repro.sim.fastpath import fastpath_enabled
from repro.sim.kernel import SimulationError
from repro.units import ns_to_fs

if TYPE_CHECKING:
    from repro.core.system import CmpSystem

#: Fetch stall per instruction-cache miss: an L2 round trip.
ICACHE_MISS_PENALTY_NS = 12.0


class Processor:
    """One in-order core executing one workload thread."""

    def __init__(self, core_id: int, system: "CmpSystem",
                 thread: Iterator[tuple]) -> None:
        self.core_id = core_id
        self.system = system
        self.sim = system.sim
        self.hierarchy = system.hierarchy
        config = system.config
        self.cycle_fs = config.core.cycle_fs
        self._quantum_fs = config.quantum_cycles * self.cycle_fs
        self._line_shift = config.line_bytes.bit_length() - 1
        self._line_bytes = config.line_bytes
        self._imiss_fs = ns_to_fs(ICACHE_MISS_PENALTY_NS)
        self._dma_setup_cycles = config.stream.dma_setup_instructions
        self._gen = thread
        self._send_value: Any = None
        self._dma_tags: dict[int, int] = {}
        self._local_store = getattr(system.hierarchy, "local_stores", None)
        self._dma_engine = None
        engines = getattr(system.hierarchy, "dma_engines", None)
        if engines is not None:
            self._dma_engine = engines[core_id]
        #: Run-until-miss fast path (see :mod:`repro.sim.fastpath`).
        #: Read at construction so one system runs one mode throughout.
        self._fastpath = fastpath_enabled()
        # Clock and accounting (all femtoseconds)
        self.now = 0
        self.useful_fs = 0
        self.sync_fs = 0
        self.load_stall_fs = 0
        self.store_stall_fs = 0
        self.instructions = 0
        self.word_accesses = 0
        self.local_accesses = 0
        self.icache_misses = 0
        self.done = False
        self.finish_fs = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Schedule the core's first execution event at time zero."""
        self.sim.at(0, self._step)

    def wake(self, release_fs: int) -> None:
        """Called by a sync primitive to resume a suspended core."""
        if release_fs < self.now:
            release_fs = self.now
        self.sync_fs += release_fs - self.now
        self.now = release_fs
        self.sim.at(release_fs, self._step)

    def _step(self) -> None:
        self._run()

    # ------------------------------------------------------------------
    # Interpreter
    # ------------------------------------------------------------------

    def _run(self) -> None:
        """Interpret operations until suspension, quantum expiry, or the end.

        This is the simulator's single hottest loop, and it is written
        accordingly: the local clock and every per-op counter live in
        local variables (flushed back to the object in one place),
        bound methods are hoisted out of the loop, and — with the fast
        path enabled — two classes of event-queue round trips disappear:

        * **Guaranteed L1 hits** are retired inline (LRU touch + counter)
          without calling into the hierarchy walker.  A line that is
          absent, still in flight (``ready_fs``), or carrying a prefetch
          tag takes the ordinary walker path, so every stat and timestamp
          is bit-identical.
        * **Quantum expiry** only re-enters the event queue when another
          event is pending at or before the core's local clock.  When the
          queue is empty or its head lies in this core's future, the
          kernel would pop this core's own resume event next with nothing
          in between, so eliding the yield cannot change the interleaving
          of shared-resource acquisitions — the core just keeps running
          (run-until-miss/sync/boundary) with a renewed quantum.

        ``REPRO_FASTPATH=0`` disables both, restoring the seed's
        one-event-per-quantum execution; per-access side channels (trace
        hooks, invariant observers) disable the inline-hit path alone.
        """
        gen_send = self._gen.send
        cycle_fs = self.cycle_fs
        hierarchy = self.hierarchy
        load_line = hierarchy.load_line
        store_line = hierarchy.store_line
        core_id = self.core_id
        line_shift = self._line_shift
        quantum_fs = self._quantum_fs
        fastpath = self._fastpath
        fast_mem = fastpath and hierarchy.fastpath_safe
        # The inline hit path goes straight at the L1's per-set dicts; the
        # slow path (and every miss) re-enters through the cache's public
        # methods, so LRU order ends up identical either way.
        l1 = hierarchy.l1s[core_id]
        l1_sets = l1._sets
        l1_mask = l1._set_mask
        peek_time = self.sim.queue.peek_time
        shared = MesiState.SHARED
        modified = MesiState.MODIFIED

        send_value = self._send_value
        now = self.now
        limit = now + quantum_fs
        # Batched deltas, flushed by _flush_locals at every exit.
        useful = 0
        sync = 0
        load_stall = 0
        store_stall = 0
        instructions = 0
        word_accesses = 0
        local_accesses = 0
        icache_misses = 0
        loads_hit = 0
        stores_hit = 0

        # Exit actions: how the loop below was left.
        FINISH, SUSPEND, YIELD = 0, 1, 2
        action = SUSPEND
        try:
            while True:
                try:
                    op = gen_send(send_value)
                except StopIteration:
                    action = FINISH
                    break
                send_value = None
                kind = op[0]

                if kind == "c":
                    _, cycles, op_instructions, l1_accesses = op
                    cost = cycles * cycle_fs
                    now += cost
                    useful += cost
                    instructions += op_instructions
                    word_accesses += l1_accesses

                elif kind == "ld":
                    _, addr, nbytes, accesses = op
                    issue = accesses * cycle_fs
                    now += issue
                    useful += issue
                    instructions += accesses
                    word_accesses += accesses
                    line = addr >> line_shift
                    last = (addr + nbytes - 1) >> line_shift
                    while True:
                        if fast_mem:
                            cache_set = l1_sets[line & l1_mask]
                            entry = cache_set.get(line)
                            if (entry is not None and entry.ready_fs <= now
                                    and not entry.prefetched):
                                cache_set.move_to_end(line)
                                loads_hit += 1
                                if line == last:
                                    break
                                line += 1
                                continue
                        done = load_line(core_id, line, now)
                        if done > now:
                            load_stall += done - now
                            now = done
                        if line == last:
                            break
                        line += 1

                elif kind == "st" or kind == "pfs":
                    _, addr, nbytes, accesses = op
                    issue = accesses * cycle_fs
                    now += issue
                    useful += issue
                    instructions += accesses
                    word_accesses += accesses
                    no_allocate = kind == "pfs"
                    line = addr >> line_shift
                    last = (addr + nbytes - 1) >> line_shift
                    while True:
                        if fast_mem:
                            cache_set = l1_sets[line & l1_mask]
                            entry = cache_set.get(line)
                            if entry is not None and entry.state is not shared:
                                cache_set.move_to_end(line)
                                entry.state = modified
                                entry.prefetched = False
                                stores_hit += 1
                                if line == last:
                                    break
                                line += 1
                                continue
                        stall = store_line(core_id, line, now,
                                           no_allocate=no_allocate)
                        if stall:
                            store_stall += stall
                            now += stall
                        if line == last:
                            break
                        line += 1

                elif kind == "lsld" or kind == "lsst":
                    _, offset, nbytes, accesses = op
                    store = self._local_store[core_id]
                    store.check_range(offset, nbytes)
                    if kind == "lsld":
                        store.record_read(nbytes, accesses)
                    else:
                        store.record_write(nbytes, accesses)
                    issue = accesses * cycle_fs
                    now += issue
                    useful += issue
                    instructions += accesses
                    local_accesses += accesses

                elif kind == "dget" or kind == "dput":
                    _, tag, addr, nbytes, stride, block = op
                    engine = self._dma_engine
                    if engine is None:
                        raise SimulationError(
                            f"core {core_id}: DMA issued on the "
                            "cache-coherent model"
                        )
                    setup = self._dma_setup_cycles * cycle_fs
                    now += setup
                    useful += setup
                    instructions += self._dma_setup_cycles
                    if kind == "dget":
                        done = engine.get(now, addr, nbytes, stride, block)
                    else:
                        done = engine.put(now, addr, nbytes, stride, block)
                    previous = self._dma_tags.get(tag, 0)
                    if done > previous:
                        self._dma_tags[tag] = done

                elif kind == "dwait":
                    done = self._dma_tags.get(op[1], now)
                    if done > now:
                        sync += done - now
                        now = done

                elif kind == "bar":
                    overhead = BARRIER_OVERHEAD_CYCLES * cycle_fs
                    now += overhead
                    useful += overhead
                    instructions += BARRIER_OVERHEAD_CYCLES
                    release = op[1].arrive(self, now)
                    if release is None:
                        break  # suspended; the barrier will wake us
                    sync += release - now
                    now = release

                elif kind == "lock":
                    overhead = LOCK_OVERHEAD_CYCLES * cycle_fs
                    now += overhead
                    useful += overhead
                    instructions += LOCK_OVERHEAD_CYCLES
                    granted = op[1].acquire(self, now)
                    if granted is None:
                        break  # suspended; the lock will wake us

                elif kind == "unlock":
                    op[1].release(self, now)

                elif kind == "pop":
                    overhead_fs = TASK_POP_OVERHEAD_CYCLES * cycle_fs
                    instructions += TASK_POP_OVERHEAD_CYCLES
                    item, done = op[1].pop(now, overhead_fs)
                    wait = done - now
                    useful += overhead_fs
                    sync += wait - overhead_fs
                    now = done
                    send_value = item

                elif kind == "bpf":
                    _, addr, nbytes = op
                    setup = self._dma_setup_cycles * cycle_fs
                    now += setup
                    useful += setup
                    instructions += self._dma_setup_cycles
                    first = addr >> line_shift
                    last = (addr + nbytes - 1) >> line_shift
                    hierarchy.bulk_prefetch(core_id, first, last, now)

                elif kind == "cfl" or kind == "cinv":
                    _, addr, nbytes = op
                    first = addr >> line_shift
                    last = (addr + nbytes - 1) >> line_shift
                    n_lines = last - first + 1
                    # Software loop: one instruction per line walked.
                    cost = n_lines * cycle_fs
                    now += cost
                    useful += cost
                    instructions += n_lines
                    if kind == "cfl":
                        hierarchy.flush_range(core_id, first, last, now)
                    else:
                        hierarchy.invalidate_range(core_id, first, last, now)

                elif kind == "im":
                    count = op[1]
                    icache_misses += count
                    penalty = count * self._imiss_fs
                    now += penalty
                    useful += penalty

                else:
                    raise SimulationError(f"core {core_id}: unknown op {op!r}")

                if now >= limit:
                    if fastpath:
                        next_fs = peek_time()
                        if next_fs is None or next_fs > now:
                            # Sole runnable actor: our resume event would
                            # pop next with nothing in between.  Renew the
                            # quantum in place instead of going through
                            # the heap.
                            limit = now + quantum_fs
                            continue
                    action = YIELD
                    break
        finally:
            # Single flush point: every exit (finish, suspend, yield, or
            # an op raising mid-quantum) folds the batch back exactly once.
            self._flush_locals(
                now, send_value, useful, sync, load_stall, store_stall,
                instructions, word_accesses, local_accesses, icache_misses,
                loads_hit, stores_hit)
        if action == FINISH:
            self._finish()
        elif action == YIELD:
            self.sim.at(self.now, self._step)

    def _flush_locals(self, now, send_value, useful, sync, load_stall,
                      store_stall, instructions, word_accesses,
                      local_accesses, icache_misses, loads_hit,
                      stores_hit) -> None:
        """Fold the hot loop's batched deltas back into the object state."""
        self.now = now
        self._send_value = send_value
        self.useful_fs += useful
        self.sync_fs += sync
        self.load_stall_fs += load_stall
        self.store_stall_fs += store_stall
        self.instructions += instructions
        self.word_accesses += word_accesses
        self.local_accesses += local_accesses
        self.icache_misses += icache_misses
        if loads_hit or stores_hit:
            hierarchy = self.hierarchy
            hierarchy.load_ops += loads_hit
            hierarchy.store_ops += stores_hit

    def _finish(self) -> None:
        self.done = True
        self.finish_fs = self.now
        self.system.core_finished(self)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def total_fs(self) -> int:
        """Sum of all four execution-time components."""
        return self.useful_fs + self.sync_fs + self.load_stall_fs + self.store_stall_fs
