"""In-order core timing model.

Each processor interprets one workload thread (a generator of operations,
see :mod:`repro.core.ops`) against the memory hierarchy, charging every
femtosecond of its execution to one of the four components of the paper's
execution-time breakdown (Figure 2):

* **useful** — computation, instruction issue for loads/stores, fetch and
  other non-memory pipeline stalls (including I-cache misses),
* **sync** — locks, barriers, task-queue contention, waiting for DMA,
* **load** — stalls for demand load misses (in-order cores block on loads),
* **store** — stalls when the store buffer is full.

Cores run ahead of the global clock in quanta of ``quantum_cycles`` and
then yield to the event queue, which keeps the occupancy-based contention
model honest without per-cycle lockstep.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Any, Iterator

from repro.core.sync import (
    BARRIER_OVERHEAD_CYCLES,
    LOCK_OVERHEAD_CYCLES,
    TASK_POP_OVERHEAD_CYCLES,
)
from repro.mem.coherence import MesiState
from repro.sim.fastpath import (
    blocks_enabled,
    fastpath_enabled,
    phases_enabled,
    streams_enabled,
)
from repro.sim.kernel import SimulationError
from repro.units import ns_to_fs

if TYPE_CHECKING:
    from repro.core.system import CmpSystem

#: Fetch stall per instruction-cache miss: an L2 round trip.
ICACHE_MISS_PENALTY_NS = 12.0

#: Iterations spilled per chunk when a phase cannot retire in closed
#: form (escape hatch, non-arith lanes, slow path).  Bounds the pending
#: list while keeping the re-dispatch overhead amortized.
PHASE_SPILL_CHUNK = 64

#: Smallest slice worth retiring in closed form.  Below this, the phase
#: arm's own per-slice cost (schedule gate, queue peek, residency scan,
#: renewal arithmetic) exceeds what retiring saves over the block
#: interpreter's per-iteration closed form, so the slice spills instead.
#: Multi-core barrier-lockstep runs sit permanently in this regime —
#: foreign events land within an iteration's cost of each other — and
#: degrade gracefully to block-interpreter speed.
PHASE_MIN_RETIRE = 4

#: Iterations spilled when the schedule gate yields a slice below
#: :data:`PHASE_MIN_RETIRE` (quantum boundary with foreign events too
#: close).  Barrier-lockstep cores keep their events interleaved within
#: an iteration's cost for long stretches, so a blocked phase spills a
#: full chunk rather than re-proving the schedule every few iterations;
#: the block interpreter's own closed form keeps the spilled chunk fast.
PHASE_SCHED_SPILL = 64

#: Iterations a demoted stream (``REPRO_STREAMS=0``) materializes per
#: chunk back into the plain per-op DMA stream.
STREAM_SPILL_CHUNK = 64

#: Block dispatches that skip the per-op inline L1 pre-probe after one
#: full dispatch of the template observed zero inline hits (the probe
#: then only doubles the miss path's lookups), before probing one
#: dispatch again in case residency returned.  Wall-clock only: the
#: walker retires a hit bit-identically to the inline probe.
BLK_COLD_SKIP = 15


def _limit_after_block(start_fs: int, limit_fs: int, cycle_fs: int,
                       quantum_fs: int, prefix_cycles: tuple) -> int:
    """Quantum limit after replaying a block's per-op renewal schedule.

    Per-op execution checks ``now >= limit`` after *every* op and, with
    the queue head beyond the core's clock, renews ``limit = now +
    quantum``.  The closed form must leave the same limit so quantum
    boundaries stay aligned with per-op execution for the rest of the
    thread.  ``prefix_cycles[i]`` is the block's cumulative cost after op
    ``i``, so the op times are ``start + P_i * cycle`` and each renewal
    picks the first boundary at or past the current limit.  Renewal is
    guaranteed to succeed: the caller established that the queue head
    lies beyond the block's end, hence beyond every interior boundary.
    """
    total = prefix_cycles[-1]
    while True:
        need = -(-(limit_fs - start_fs) // cycle_fs)
        if need > total:
            return limit_fs
        index = bisect_left(prefix_cycles, need)
        limit_fs = start_fs + prefix_cycles[index] * cycle_fs + quantum_fs


def _limit_after_phase(start_fs: int, limit_fs: int, cycle_fs: int,
                       quantum_fs: int, iter_prefix: tuple,
                       iter_cycles: int, iters: int) -> int:
    """Quantum limit after ``iters`` closed-form phase iterations.

    The iteration axis extends :func:`_limit_after_block`'s schedule
    periodically: op boundaries sit at ``start + (k * iter_cycles +
    iter_prefix[i]) * cycle_fs`` for iteration ``k``, so each renewal
    resolves its target boundary by splitting the cumulative cycle count
    into (iteration, residue) and bisecting the residue into one
    iteration's prefix sums.  The loop runs once per quantum renewal —
    O(total cycles / quantum), independent of the iteration count —
    and, like the block version, relies on the caller having proved
    that every renewal inside the phase succeeds (queue head beyond the
    retired prefix, or no boundary reaching the old limit at all).
    """
    total = iters * iter_cycles
    while True:
        need = -(-(limit_fs - start_fs) // cycle_fs)
        if need > total:
            return limit_fs
        iteration, residue = divmod(need, iter_cycles)
        if residue:
            boundary = (iteration * iter_cycles
                        + iter_prefix[bisect_left(iter_prefix, residue)])
        else:
            # ``need`` lands exactly on an iteration boundary, which is
            # the previous iteration's final op boundary.
            boundary = need
        limit_fs = start_fs + boundary * cycle_fs + quantum_fs


class Processor:
    """One in-order core executing one workload thread."""

    def __init__(self, core_id: int, system: "CmpSystem",
                 thread: Iterator[tuple]) -> None:
        self.core_id = core_id
        self.system = system
        self.sim = system.sim
        self.hierarchy = system.hierarchy
        config = system.config
        self.cycle_fs = config.core.cycle_fs
        self._quantum_fs = config.quantum_cycles * self.cycle_fs
        self._line_shift = config.line_bytes.bit_length() - 1
        self._line_bytes = config.line_bytes
        self._imiss_fs = ns_to_fs(ICACHE_MISS_PENALTY_NS)
        self._dma_setup_cycles = config.stream.dma_setup_instructions
        self._gen = thread
        self._send_value: Any = None
        self._dma_tags: dict[int, int] = {}
        self._local_store = getattr(system.hierarchy, "local_stores", None)
        self._dma_engine = None
        engines = getattr(system.hierarchy, "dma_engines", None)
        if engines is not None:
            self._dma_engine = engines[core_id]
        #: Run-until-miss fast path (see :mod:`repro.sim.fastpath`).
        #: Read at construction so one system runs one mode throughout.
        self._fastpath = fastpath_enabled()
        #: Block interpreter switch (REPRO_BLOCKS); when off, every
        #: OpBlock is materialized back into the plain per-op stream.
        self._blocks = blocks_enabled()
        #: Phase engine switch (REPRO_PHASES); when off, every OpPhase
        #: is spilled back into per-iteration block replays.  The phase
        #: closed form retires *block* iterations, so it additionally
        #: requires the block interpreter to be on.
        self._phases = phases_enabled() and self._blocks
        #: Stream engine switch (REPRO_STREAMS); when off, every
        #: OpStream is materialized back into the plain per-op DMA
        #: stream in bounded chunks.
        self._streams = streams_enabled()
        #: Ops spilled from a block (materialized remainder after a
        #: mid-block yield, or a whole block under REPRO_BLOCKS=0),
        #: consumed LIFO before the generator is consulted again.
        self._pending: list[tuple] = []
        #: Per-template cold verdicts: id(blk) -> dispatches left to
        #: skip the inline L1 pre-probe (see :data:`BLK_COLD_SKIP`).
        self._blk_verdicts: dict[int, int] = {}
        # Clock and accounting (all femtoseconds)
        self.now = 0
        self.useful_fs = 0
        self.sync_fs = 0
        self.load_stall_fs = 0
        self.store_stall_fs = 0
        self.instructions = 0
        self.word_accesses = 0
        self.local_accesses = 0
        self.icache_misses = 0
        #: Iterations retired by the phase closed form (mode-dependent
        #: diagnostic) and total iterations dispatched as phases
        #: (mode-independent: counted once whether retired or spilled).
        self.phase_iters = 0
        self.phase_iters_total = 0
        #: Iterations driven by the stream arm (mode-dependent
        #: diagnostic) and total iterations dispatched as streams
        #: (counted once whether interpreted or materialized).
        self.stream_iters = 0
        self.stream_iters_total = 0
        self.done = False
        self.finish_fs = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Schedule the core's first execution event at time zero."""
        self.sim.at(0, self._step)

    def wake(self, release_fs: int) -> None:
        """Called by a sync primitive to resume a suspended core."""
        if release_fs < self.now:
            release_fs = self.now
        self.sync_fs += release_fs - self.now
        self.now = release_fs
        self.sim.at(release_fs, self._step)

    def _step(self) -> None:
        self._run()

    # ------------------------------------------------------------------
    # Interpreter
    # ------------------------------------------------------------------

    def _run(self) -> None:
        """Interpret operations until suspension, quantum expiry, or the end.

        This is the simulator's single hottest loop, and it is written
        accordingly: the local clock and every per-op counter live in
        local variables (flushed back to the object in one place),
        bound methods are hoisted out of the loop, and — with the fast
        path enabled — two classes of event-queue round trips disappear:

        * **Guaranteed L1 hits** are retired inline (LRU touch + counter)
          without calling into the hierarchy walker.  A line that is
          absent, still in flight (``ready_fs``), or carrying a prefetch
          tag takes the ordinary walker path, so every stat and timestamp
          is bit-identical.
        * **Quantum expiry** only re-enters the event queue when another
          event is pending at or before the core's local clock.  When the
          queue is empty or its head lies in this core's future, the
          kernel would pop this core's own resume event next with nothing
          in between, so eliding the yield cannot change the interleaving
          of shared-resource acquisitions — the core just keeps running
          (run-until-miss/sync/boundary) with a renewed quantum.

        ``REPRO_FASTPATH=0`` disables both, restoring the seed's
        one-event-per-quantum execution; per-access side channels (trace
        hooks, invariant observers) disable the inline-hit path alone.

        * **Op blocks** (``"blk"``) are immutable templates the workload
          yields once per loop iteration (see :func:`repro.core.ops.block`).
          A block of compute / L1 / local-store ops whose lines are all
          guaranteed inline hits and whose end precedes the queue head
          retires in *closed form* — cost, counters, and LRU touches
          applied arithmetically, with the quantum-renewal schedule
          replayed via :func:`_limit_after_block`.  Otherwise the block
          runs through a tight per-op loop (no generator round trips),
          spilling its unexecuted remainder into ``self._pending`` if the
          quantum expires mid-block.  ``REPRO_BLOCKS=0``, or any block
          carrying DMA / prefetch / flush ops, materializes the block
          back into plain tuples handled by the arms above.
        * **Op phases** (``"ph"``) are the tier above blocks (see
          :func:`repro.core.ops.phase`): a run of K constant-stride block
          iterations yielded as one descriptor.  When the block closed
          form's conditions hold across whole iterations, the phase arm
          retires as many as the quantum/queue horizon allows in a
          single arithmetic step — counters as ``K x per_iteration``
          sums, LRU/stored state via the block geometry evaluated per
          iteration shift, the renewal schedule via
          :func:`_limit_after_phase` — and spills back to per-block
          replays at the first non-resident iteration or ineligible
          descriptor.  ``REPRO_PHASES=0`` spills every phase.
        """
        gen_send = self._gen.send
        cycle_fs = self.cycle_fs
        hierarchy = self.hierarchy
        load_line = hierarchy.load_line
        store_line = hierarchy.store_line
        core_id = self.core_id
        line_shift = self._line_shift
        line_mask = self._line_bytes - 1
        quantum_fs = self._quantum_fs
        fastpath = self._fastpath
        fast_mem = fastpath and hierarchy.fastpath_safe
        blocks_on = self._blocks
        phases_on = self._phases
        streams_on = self._streams
        pending = self._pending
        verdicts = self._blk_verdicts
        # Per-op invariants hoisted to loop-locals: resolved once per
        # scheduling slice instead of once per op.
        local_store = (self._local_store[core_id]
                       if self._local_store is not None else None)
        dma_engine = self._dma_engine
        dma_tags = self._dma_tags
        dma_setup_cycles = self._dma_setup_cycles
        dma_setup_fs = dma_setup_cycles * cycle_fs
        imiss_fs = self._imiss_fs
        # The inline hit path goes straight at the L1's per-set dicts; the
        # slow path (and every miss) re-enters through the cache's public
        # methods, so LRU order ends up identical either way.
        l1 = hierarchy.l1s[core_id]
        l1_sets = l1._sets
        l1_mask = l1._set_mask
        peek_time = self.sim.queue.peek_time
        shared = MesiState.SHARED
        modified = MesiState.MODIFIED

        send_value = self._send_value
        now = self.now
        limit = now + quantum_fs
        # Batched deltas, flushed by _flush_locals at every exit.
        useful = 0
        sync = 0
        load_stall = 0
        store_stall = 0
        instructions = 0
        word_accesses = 0
        local_accesses = 0
        icache_misses = 0
        loads_hit = 0
        stores_hit = 0
        phase_retired = 0
        phase_total = 0
        stream_retired = 0
        stream_total = 0

        # Exit actions: how the loop below was left.
        FINISH, SUSPEND, YIELD = 0, 1, 2
        action = SUSPEND
        try:
            while True:
                if pending:
                    # Spilled block remainder; blocks never contain ops
                    # that suspend or send values, so send_value is
                    # untouched on this path.
                    op = pending.pop()
                else:
                    try:
                        op = gen_send(send_value)
                    except StopIteration:
                        action = FINISH
                        break
                    send_value = None
                kind = op[0]

                if kind == "c":
                    _, cycles, op_instructions, l1_accesses = op
                    cost = cycles * cycle_fs
                    now += cost
                    useful += cost
                    instructions += op_instructions
                    word_accesses += l1_accesses

                elif kind == "ld":
                    _, addr, nbytes, accesses = op
                    issue = accesses * cycle_fs
                    now += issue
                    useful += issue
                    instructions += accesses
                    word_accesses += accesses
                    line = addr >> line_shift
                    last = (addr + nbytes - 1) >> line_shift
                    while True:
                        if fast_mem:
                            cache_set = l1_sets[line & l1_mask]
                            entry = cache_set.get(line)
                            if (entry is not None and entry.ready_fs <= now
                                    and not entry.prefetched):
                                cache_set.move_to_end(line)
                                loads_hit += 1
                                if line == last:
                                    break
                                line += 1
                                continue
                        done = load_line(core_id, line, now)
                        if done > now:
                            load_stall += done - now
                            now = done
                        if line == last:
                            break
                        line += 1

                elif kind == "st" or kind == "pfs":
                    _, addr, nbytes, accesses = op
                    issue = accesses * cycle_fs
                    now += issue
                    useful += issue
                    instructions += accesses
                    word_accesses += accesses
                    no_allocate = kind == "pfs"
                    line = addr >> line_shift
                    last = (addr + nbytes - 1) >> line_shift
                    while True:
                        if fast_mem:
                            cache_set = l1_sets[line & l1_mask]
                            entry = cache_set.get(line)
                            if entry is not None and entry.state is not shared:
                                cache_set.move_to_end(line)
                                entry.state = modified
                                entry.prefetched = False
                                stores_hit += 1
                                if line == last:
                                    break
                                line += 1
                                continue
                        stall = store_line(core_id, line, now,
                                           no_allocate=no_allocate)
                        if stall:
                            store_stall += stall
                            now += stall
                        if line == last:
                            break
                        line += 1

                elif kind == "ph":
                    # Phase engine (see repro.core.ops.OpPhase): a run of
                    # ``count`` constant-stride block iterations.  The
                    # closed form below retires as many whole iterations
                    # as the quantum/queue horizon and L1 residency
                    # allow, in one arithmetic step; everything else
                    # spills back into plain ("blk", ...) replays, which
                    # the block interpreter executes bit-identically.
                    ph = op[1]
                    # A 3-tuple is a resume cursor: re-enter at the
                    # recorded iteration.  The mode-independent total is
                    # counted once, at first dispatch.
                    if len(op) == 3:
                        k0 = op[2]
                    else:
                        k0 = 0
                        phase_total += ph.count
                    count = ph.count
                    lanes = ph.lanes
                    iter_cycles = ph.iter_cycles
                    # Wholesale-ineligibility gates, cheapest first.  All
                    # are slice-invariant, so an ineligible phase spills
                    # a bounded chunk of iterations and leaves a cursor
                    # rather than re-proving ineligibility per iteration.
                    eligible = (phases_on and fast_mem
                                and iter_cycles is not None
                                and not (ph.align_or & line_mask))
                    if eligible and ph.has_local:
                        eligible = (local_store is not None
                                    and local_store.observer is None
                                    and ph.ls_max_end
                                    <= local_store.capacity_bytes)
                    if not eligible:
                        k_hi = k0 + PHASE_SPILL_CHUNK
                        if k_hi < count:
                            pending.append(("ph", ph, k_hi))
                        else:
                            k_hi = count
                        for k in range(k_hi - 1, k0 - 1, -1):
                            for blk, base, stride in reversed(lanes):
                                pending.append(
                                    ("blk", blk, base + k * stride))
                        continue
                    # Schedule gate: retiring m iterations is safe when
                    # their end precedes the quantum limit (no renewal
                    # needed) or the queue head lies beyond it (every
                    # interior renewal succeeds).  m_peek may go negative
                    # when another core's event sits at or behind our
                    # clock; the max() floors the bound at m_limit >= 0.
                    c_fs = iter_cycles * cycle_fs
                    m_max = count - k0
                    m_limit = (limit - now - 1) // c_fs
                    if m_limit >= m_max:
                        m_allowed = m_max
                    else:
                        next_fs = peek_time()
                        if next_fs is None:
                            m_allowed = m_max
                        else:
                            m_peek = (next_fs - now - 1) // c_fs
                            m_allowed = m_limit if m_limit > m_peek else m_peek
                            if m_allowed > m_max:
                                m_allowed = m_max
                    if m_allowed < PHASE_MIN_RETIRE:
                        # Quantum boundary with foreign events too close
                        # to prove a slice worth the arm's overhead: run
                        # a short chunk through the block interpreter (it
                        # replays the renewal/yield decision per op,
                        # bit-exactly) and resume the phase afterwards.
                        spill = m_allowed if (m_allowed
                                              > PHASE_SCHED_SPILL) \
                            else PHASE_SCHED_SPILL
                        k_hi = k0 + spill
                        if k_hi < count:
                            pending.append(("ph", ph, k_hi))
                        else:
                            k_hi = count
                        for k in range(k_hi - 1, k0 - 1, -1):
                            for blk, base, stride in reversed(lanes):
                                pending.append(
                                    ("blk", blk, base + k * stride))
                        continue
                    geom = ph._geometries.get(line_shift)
                    if geom is None:
                        geom = ph.geometry(line_shift)
                    glanes = geom.lanes
                    # Residency scan: the per-line conditions are exactly
                    # the block closed form's, probed at the slice start.
                    # That is conservative-safe for every later iteration
                    # in the slice: a zero-miss slice inserts and evicts
                    # nothing, and the state transitions it does apply
                    # (SHARED departing, prefetch tags clearing, LRU
                    # touches) only ever *help* these checks.
                    if ph.all_static:
                        # Revisit phase (every stride zero): residency is
                        # iteration-invariant — check once, apply the
                        # stored/LRU transitions once (identical
                        # iterations are idempotent on cache state), and
                        # multiply the counters.
                        ok = True
                        for g, (_blk, base, _stride) in zip(glanes, lanes):
                            dl = base >> line_shift
                            for rel, loaded, fresh, written in g.checks:
                                line = rel + dl
                                entry = l1_sets[line & l1_mask].get(line)
                                if (entry is None
                                        or (loaded
                                            and (entry.ready_fs > now
                                                 or (fresh
                                                     and entry.prefetched)))
                                        or (written
                                            and entry.state is shared)):
                                    ok = False
                                    break
                            if not ok:
                                break
                        if ok:
                            for g, (_blk, base, _stride) in zip(glanes,
                                                                lanes):
                                dl = base >> line_shift
                                for rel in g.stored:
                                    line = rel + dl
                                    entry = l1_sets[line & l1_mask][line]
                                    entry.state = modified
                                    entry.prefetched = False
                                for rel in g.lru:
                                    line = rel + dl
                                    l1_sets[line & l1_mask].move_to_end(line)
                            retire = m_allowed
                        else:
                            retire = 0
                    elif len(glanes) == 1:
                        # Single-lane strided phase (the shape every run
                        # coalescer emits): fused scan+apply with an
                        # incremental line cursor — the alignment gate
                        # proved base and stride line-multiples, so the
                        # per-iteration delta is one integer add.
                        g = glanes[0]
                        _blk, base, stride = lanes[0]
                        dl = (base + k0 * stride) >> line_shift
                        sdl = stride >> line_shift
                        checks = g.checks
                        g_stored = g.stored
                        g_lru = g.lru
                        n_m = m_allowed
                        retire = 0
                        if (len(checks) == 1 and g_lru == (checks[0][0],)
                                and (not g_stored
                                     or g_stored == (checks[0][0],))):
                            # One-line block (load/compute[/store] on a
                            # single cache line): the check, the dirty
                            # transition, and the LRU touch all hit the
                            # same entry, so one probe per iteration
                            # covers everything.
                            rel, loaded, fresh, written = checks[0]
                            do_store = bool(g_stored)
                            while retire < n_m:
                                line = rel + dl
                                cache_set = l1_sets[line & l1_mask]
                                entry = cache_set.get(line)
                                if (entry is None
                                        or (loaded
                                            and (entry.ready_fs > now
                                                 or (fresh
                                                     and entry.prefetched)))
                                        or (written
                                            and entry.state is shared)):
                                    break
                                if do_store:
                                    entry.state = modified
                                    entry.prefetched = False
                                cache_set.move_to_end(line)
                                dl += sdl
                                retire += 1
                            n_m = retire  # skip the generic loop below
                        while retire < n_m:
                            ok = True
                            for rel, loaded, fresh, written in checks:
                                line = rel + dl
                                entry = l1_sets[line & l1_mask].get(line)
                                if (entry is None
                                        or (loaded
                                            and (entry.ready_fs > now
                                                 or (fresh
                                                     and entry.prefetched)))
                                        or (written
                                            and entry.state is shared)):
                                    ok = False
                                    break
                            if not ok:
                                break
                            for rel in g_stored:
                                line = rel + dl
                                entry = l1_sets[line & l1_mask][line]
                                entry.state = modified
                                entry.prefetched = False
                            for rel in g_lru:
                                l1_sets[(rel + dl) & l1_mask].move_to_end(
                                    rel + dl)
                            dl += sdl
                            retire += 1
                    else:
                        # Multi-lane strided phase: same fused scan+apply,
                        # verifying ALL lanes of an iteration before
                        # applying any of its state, stopping at the first
                        # non-resident iteration (the retired prefix stays
                        # exact).  Lane line cursors advance incrementally
                        # along the iteration axis.
                        lane_geoms = list(zip(glanes, lanes))
                        dls = [(base + k0 * stride) >> line_shift
                               for _g, (_b, base, stride) in lane_geoms]
                        sdls = [stride >> line_shift
                                for _g, (_b, _base, stride) in lane_geoms]
                        n_m = m_allowed
                        retire = 0
                        while retire < n_m:
                            ok = True
                            for (g, _lane), dl in zip(lane_geoms, dls):
                                for rel, loaded, fresh, written in g.checks:
                                    line = rel + dl
                                    entry = l1_sets[line & l1_mask].get(line)
                                    if (entry is None
                                            or (loaded
                                                and (entry.ready_fs > now
                                                     or (fresh
                                                         and entry.prefetched
                                                         )))
                                            or (written
                                                and entry.state is shared)):
                                        ok = False
                                        break
                                if not ok:
                                    break
                            if not ok:
                                break
                            for (g, _lane), dl in zip(lane_geoms, dls):
                                for rel in g.stored:
                                    line = rel + dl
                                    entry = l1_sets[line & l1_mask][line]
                                    entry.state = modified
                                    entry.prefetched = False
                                for rel in g.lru:
                                    line = rel + dl
                                    l1_sets[line & l1_mask].move_to_end(line)
                            dls = [dl + sdl for dl, sdl in zip(dls, sdls)]
                            retire += 1
                    if retire:
                        end = now + retire * c_fs
                        useful += end - now
                        instructions += ph.instructions * retire
                        word_accesses += ph.word_accesses * retire
                        local_accesses += ph.local_accesses * retire
                        loads_hit += geom.loads_hit * retire
                        stores_hit += geom.stores_hit * retire
                        if ph.has_local:
                            local_store.reads += ph.ls_reads * retire
                            local_store.read_accesses += (
                                ph.ls_read_accesses * retire)
                            local_store.writes += ph.ls_writes * retire
                            local_store.write_accesses += (
                                ph.ls_write_accesses * retire)
                        if end >= limit:
                            # Safe by the schedule gate: retire > m_limit
                            # only happens on the peek branch with every
                            # interior renewal proven to succeed.
                            limit = _limit_after_phase(
                                now, limit, cycle_fs, quantum_fs,
                                ph.iter_prefix, iter_cycles, retire)
                        now = end
                        phase_retired += retire
                        k0 += retire
                    if k0 < count:
                        if retire == m_allowed:
                            # Horizon-bound: the slice retired whole; the
                            # cursor re-enters with a renewed schedule
                            # gate (limit advanced above, or the peek
                            # still blocks and one iteration spills).
                            pending.append(("ph", ph, k0))
                        else:
                            # Residency failed at iteration k0.  For a
                            # single-lane cache phase this is usually a
                            # *miss stream* — a never-resident strided
                            # scan (fir-cc) taking one compulsory miss
                            # per line — so the miss arm below drives the
                            # hierarchy walker directly in a fused
                            # per-line loop: exact stalls, evictions and
                            # coherence traffic (the very walker calls
                            # the per-op path makes), none of the
                            # per-iteration pending churn of a block
                            # spill.  An iteration that completes with
                            # zero walker calls means residency is back,
                            # so the loop hands the cursor straight back
                            # to the closed form.
                            blk0, base0, stride0 = lanes[0]
                            if len(lanes) == 1 and not blk0.has_local:
                                k_hi = k0 + PHASE_SPILL_CHUNK
                                if k_hi > count:
                                    k_hi = count
                                ops_seq = blk0.ops
                                n_ops = len(ops_seq)
                                # Same cold-probe economics as the block
                                # arm: a never-resident stream pays the
                                # inline L1 probe *and* the walker on
                                # every line.  Once a full chunk walks
                                # with zero hits, later dispatches skip
                                # the probe and drive the walker directly
                                # (walker-served hits fold into the same
                                # counters, so stats cannot diverge).
                                pid = id(ph)
                                skip = verdicts.get(pid, 0)
                                if skip:
                                    verdicts[pid] = skip - 1
                                    probe = False
                                    hits0 = -1
                                else:
                                    probe = True
                                    hits0 = loads_hit + stores_hit
                                k = k0
                                yielded = False
                                while k < k_hi:
                                    delta = base0 + k * stride0
                                    missed = False
                                    index = 0
                                    while index < n_ops:
                                        bop = ops_seq[index]
                                        index += 1
                                        bkind = bop[0]
                                        if bkind == "ld":
                                            _, addr, nbytes, accesses = bop
                                            addr += delta
                                            issue = accesses * cycle_fs
                                            now += issue
                                            useful += issue
                                            instructions += accesses
                                            word_accesses += accesses
                                            line = addr >> line_shift
                                            last = ((addr + nbytes - 1)
                                                    >> line_shift)
                                            while True:
                                                if probe:
                                                    cache_set = l1_sets[
                                                        line & l1_mask]
                                                    entry = cache_set.get(
                                                        line)
                                                else:
                                                    entry = None
                                                if (entry is not None
                                                        and entry.ready_fs
                                                        <= now
                                                        and not
                                                        entry.prefetched):
                                                    cache_set.move_to_end(
                                                        line)
                                                    loads_hit += 1
                                                else:
                                                    missed = True
                                                    done = load_line(
                                                        core_id, line, now)
                                                    if done > now:
                                                        load_stall += (
                                                            done - now)
                                                        now = done
                                                if line == last:
                                                    break
                                                line += 1
                                        elif bkind == "c":
                                            (_, cycles, op_instructions,
                                             l1_accesses) = bop
                                            cost = cycles * cycle_fs
                                            now += cost
                                            useful += cost
                                            instructions += op_instructions
                                            word_accesses += l1_accesses
                                        else:  # st / pfs
                                            _, addr, nbytes, accesses = bop
                                            addr += delta
                                            issue = accesses * cycle_fs
                                            now += issue
                                            useful += issue
                                            instructions += accesses
                                            word_accesses += accesses
                                            no_allocate = bkind == "pfs"
                                            line = addr >> line_shift
                                            last = ((addr + nbytes - 1)
                                                    >> line_shift)
                                            while True:
                                                if probe:
                                                    cache_set = l1_sets[
                                                        line & l1_mask]
                                                    entry = cache_set.get(
                                                        line)
                                                else:
                                                    entry = None
                                                if (entry is not None
                                                        and entry.state
                                                        is not shared):
                                                    cache_set.move_to_end(
                                                        line)
                                                    entry.state = modified
                                                    entry.prefetched = False
                                                    stores_hit += 1
                                                else:
                                                    missed = True
                                                    stall = store_line(
                                                        core_id, line, now,
                                                        no_allocate=
                                                        no_allocate)
                                                    if stall:
                                                        store_stall += stall
                                                        now += stall
                                                if line == last:
                                                    break
                                                line += 1
                                        if now >= limit:
                                            next_fs = peek_time()
                                            if (next_fs is None
                                                    or next_fs > now):
                                                limit = now + quantum_fs
                                                continue
                                            yielded = True
                                            break
                                    if yielded:
                                        if index == n_ops:
                                            phase_retired += 1
                                            k += 1
                                            if k < count:
                                                pending.append(
                                                    ("ph", ph, k))
                                        else:
                                            if k + 1 < count:
                                                pending.append(
                                                    ("ph", ph, k + 1))
                                            pending.append(
                                                ("blk", blk0, delta, index))
                                        break
                                    phase_retired += 1
                                    k += 1
                                    if not missed:
                                        # Fully hit: the stream is
                                        # resident again; let the closed
                                        # form take over.
                                        break
                                if (hits0 >= 0 and not yielded
                                        and loads_hit + stores_hit
                                        == hits0):
                                    verdicts[pid] = BLK_COLD_SKIP
                                if yielded:
                                    action = YIELD
                                    break
                                if k < count:
                                    pending.append(("ph", ph, k))
                                continue
                            # Multi-lane or local-store phase: replay a
                            # bounded chunk through the block
                            # interpreter, which reproduces the miss —
                            # stalls, walker calls, evictions — bit for
                            # bit, then resume the phase.  A whole chunk
                            # (not a single iteration) spills because a
                            # non-resident line usually means a streaming
                            # access pattern where the *next* iterations
                            # miss too; re-proving the slice per miss
                            # would cost a gate + scan per iteration.
                            k_hi = k0 + PHASE_SPILL_CHUNK
                            if k_hi < count:
                                pending.append(("ph", ph, k_hi))
                            else:
                                k_hi = count
                            for k in range(k_hi - 1, k0 - 1, -1):
                                for blk, base, stride in reversed(lanes):
                                    pending.append(
                                        ("blk", blk, base + k * stride))
                    continue

                elif kind == "strm":
                    # Stream arm (see repro.core.ops.OpStream): interpret
                    # the per-iteration step list of a double-buffered
                    # DMA loop directly — same primitives as the dget /
                    # dput / dwait / lsst arms below, bit for bit, but no
                    # generator round trips and no per-op tuple traffic.
                    # Kernel steps detour through the block arm (closed
                    # form when resident) via a resume cursor.
                    st = op[1]
                    # A 4-tuple is a resume cursor: re-enter at iteration
                    # k, step index si.  The mode-independent total is
                    # counted once, at first dispatch.
                    if len(op) == 4:
                        k = op[2]
                        si = op[3]
                    else:
                        k = 0
                        si = 0
                        stream_total += st.count
                    count = st.count
                    if not streams_on:
                        # Escape hatch: materialize a bounded chunk back
                        # into the plain per-op DMA stream, handled by
                        # the ordinary dispatch arms.
                        k_hi = k + STREAM_SPILL_CHUNK
                        if k_hi < count:
                            pending.append(("strm", st, k_hi, 0))
                        else:
                            k_hi = count
                        pending.extend(reversed(st.materialize(k, k_hi)))
                        continue
                    steps = st.steps
                    n_steps = len(steps)
                    # How the step loop was left: 0 = stream complete,
                    # 1 = quantum yield (remainder spilled), 2 = kernel
                    # detour (cursor + block pushed on pending).
                    leave = 0
                    while True:
                        if si == n_steps:
                            si = 0
                            k += 1
                            stream_retired += 1
                            if k == count:
                                break
                        step = steps[si]
                        si += 1
                        skind = step[0]
                        # Set to the current step's unexecuted remainder
                        # (possibly empty) when the quantum expires and
                        # the renewal fails: the rest of the iteration is
                        # materialized behind a next-iteration cursor.
                        part = None
                        if skind == "dget" or skind == "dput":
                            _, tag0, alt, ahead, table = step
                            j = k + ahead
                            if j >= count:
                                continue
                            tag = tag0 + (j & alt)
                            if dma_engine is None:
                                raise SimulationError(
                                    f"core {core_id}: DMA issued on the "
                                    "cache-coherent model")
                            issue_cmd = (dma_engine.get if skind == "dget"
                                         else dma_engine.put)
                            cmds = table[j]
                            n_cmds = len(cmds)
                            ci = 0
                            while ci < n_cmds:
                                addr, nbytes = cmds[ci]
                                ci += 1
                                now += dma_setup_fs
                                useful += dma_setup_fs
                                instructions += dma_setup_cycles
                                done = issue_cmd(now, addr, nbytes, 0, None)
                                previous = dma_tags.get(tag, 0)
                                if done > previous:
                                    dma_tags[tag] = done
                                if now >= limit:
                                    if fastpath:
                                        next_fs = peek_time()
                                        if next_fs is None or next_fs > now:
                                            limit = now + quantum_fs
                                            continue
                                    part = [(skind, tag, a, n, 0, None)
                                            for a, n in cmds[ci:]]
                                    break
                        elif skind == "dwait":
                            _, tag0, alt, kmin = step
                            if k < kmin:
                                continue
                            done = dma_tags.get(tag0 + (k & alt))
                            if done is None:
                                raise SimulationError(
                                    f"core {core_id}: dwait on tag "
                                    f"{tag0 + (k & alt)} which never "
                                    "issued a DMA command")
                            if done > now:
                                sync += done - now
                                now = done
                            if now >= limit:
                                if fastpath:
                                    next_fs = peek_time()
                                    if next_fs is None or next_fs > now:
                                        limit = now + quantum_fs
                                    else:
                                        part = []
                                else:
                                    part = []
                        elif skind == "lsst":
                            _, table, nbytes, accesses = step
                            if local_store is None:
                                raise SimulationError(
                                    f"core {core_id}: local-store access "
                                    "on the cache-coherent model")
                            local_store.check_range(table[k], nbytes)
                            local_store.record_write(nbytes, accesses)
                            issue = accesses * cycle_fs
                            now += issue
                            useful += issue
                            instructions += accesses
                            local_accesses += accesses
                            if now >= limit:
                                if fastpath:
                                    next_fs = peek_time()
                                    if next_fs is None or next_fs > now:
                                        limit = now + quantum_fs
                                    else:
                                        part = []
                                else:
                                    part = []
                        else:  # blk: kernel detour through the block arm
                            pending.append(("strm", st, k, si))
                            pending.append(("blk", step[1][k], 0))
                            leave = 2
                            break
                        if part is not None:
                            leave = 1
                            part.extend(st.materialize(k, k + 1, si))
                            if k + 1 < count:
                                pending.append(("strm", st, k + 1, 0))
                            pending.extend(reversed(part))
                            break
                    if leave == 1:
                        action = YIELD
                        break
                    continue

                elif kind == "blk":
                    blk = op[1]
                    delta = op[2]
                    # A 4-tuple is a resume cursor spilled by the tight
                    # loop below at a quantum boundary; re-enter at the
                    # recorded op index (skipping the closed form, whose
                    # geometry covers only whole blocks).
                    start = op[3] if len(op) == 4 else 0
                    if not blocks_on or blk.arith_cycles is None:
                        # Escape hatch, or a block carrying DMA / prefetch
                        # / flush ops: run the plain per-op stream through
                        # the ordinary dispatch arms above.
                        pending.extend(reversed(blk.materialize(delta)))
                        continue
                    # Per-template verdict (see BLK_COLD_SKIP): positive =
                    # cold for that many dispatches (a prior full dispatch
                    # saw zero L1 hits — a streaming-through-memory pass —
                    # so the closed form cannot succeed and the per-op
                    # pre-probe only doubles every miss's lookups; skip
                    # geometry, residency scan, and probes, and let the
                    # walker serve any hit bit-identically).  Negative =
                    # hot (a prior full dispatch retired without a single
                    # walker call, so the closed form is worth its
                    # geometry).  Zero = unproven: run the probing loop
                    # and let the outcome classify the template — this
                    # defers the geometry build past templates that never
                    # become resident at all.
                    resident = False
                    bid = id(blk)
                    state = verdicts.get(bid, 0)
                    if state > 0:
                        verdicts[bid] = state - 1
                    elif (state < 0 and start == 0 and fast_mem
                          and not (delta & line_mask)):
                        # Closed form: if every line the block touches is
                        # a guaranteed inline hit and no foreign event
                        # intervenes before the block's end, the whole
                        # block retires arithmetically.  Every condition
                        # checked here is exactly the condition under
                        # which the per-op loop below would have taken
                        # the inline path for every single access.  The
                        # per-line residency checks run first: they are
                        # plain dict probes that fail fast on miss-heavy
                        # streams, gating the costlier queue peek.
                        geom = blk._geometries.get(line_shift)
                        if geom is None:
                            geom = blk.geometry(line_shift)
                        dl = delta >> line_shift
                        ok = True
                        for rel, loaded, fresh, written in geom.checks:
                            line = rel + dl
                            entry = l1_sets[line & l1_mask].get(line)
                            if (entry is None
                                    or (loaded
                                        and (entry.ready_fs > now
                                             or (fresh
                                                 and entry.prefetched)))
                                    or (written
                                        and entry.state is shared)):
                                ok = False
                                break
                        if ok and blk.has_local:
                            ok = (local_store is not None
                                  and local_store.observer is None
                                  and blk.ls_max_end
                                  <= local_store.capacity_bytes)
                        # Past this point a failure is the *schedule*
                        # (a foreign event lands mid-block), not
                        # residency — the per-op probes below would all
                        # hit, so the cold verdict must not suppress
                        # them.
                        resident = ok
                        if ok:
                            end = now + blk.arith_cycles * cycle_fs
                            if end >= limit:
                                next_fs = peek_time()
                                ok = next_fs is None or next_fs > end
                        if ok:
                            for rel in geom.stored:
                                line = rel + dl
                                entry = l1_sets[line & l1_mask][line]
                                entry.state = modified
                                entry.prefetched = False
                            for rel in geom.lru:
                                line = rel + dl
                                l1_sets[line & l1_mask].move_to_end(line)
                            loads_hit += geom.loads_hit
                            stores_hit += geom.stores_hit
                            if blk.has_local:
                                local_store.reads += blk.ls_reads
                                local_store.read_accesses += (
                                    blk.ls_read_accesses)
                                local_store.writes += blk.ls_writes
                                local_store.write_accesses += (
                                    blk.ls_write_accesses)
                            useful += end - now
                            instructions += blk.instructions
                            word_accesses += blk.word_accesses
                            local_accesses += blk.local_accesses
                            if end >= limit:
                                limit = _limit_after_block(
                                    now, limit, cycle_fs, quantum_fs,
                                    blk.prefix_cycles)
                            now = end
                            continue
                    # Tight per-op loop: same arms as above, no generator
                    # round trips.  Only arithmetic opcodes occur here
                    # (compute / ld / st / pfs / lsld / lsst) — blocks
                    # with anything else were materialized above.
                    #
                    # A schedule-blocked resident dispatch keeps its
                    # probes (they are guaranteed hits) and neither
                    # consumes nor records a verdict.
                    if resident:
                        probe = fast_mem
                        hits0 = -1
                    elif state > 0:
                        probe = False
                        hits0 = -1
                    else:
                        probe = fast_mem
                        hits0 = loads_hit + stores_hit
                    ops_seq = blk.ops
                    n_ops = len(ops_seq)
                    index = start
                    yielded = False
                    missed = False
                    while index < n_ops:
                        bop = ops_seq[index]
                        index += 1
                        bkind = bop[0]
                        if bkind == "ld":
                            _, addr, nbytes, accesses = bop
                            addr += delta
                            issue = accesses * cycle_fs
                            now += issue
                            useful += issue
                            instructions += accesses
                            word_accesses += accesses
                            line = addr >> line_shift
                            last = (addr + nbytes - 1) >> line_shift
                            while True:
                                if probe:
                                    cache_set = l1_sets[line & l1_mask]
                                    entry = cache_set.get(line)
                                    if (entry is not None
                                            and entry.ready_fs <= now
                                            and not entry.prefetched):
                                        cache_set.move_to_end(line)
                                        loads_hit += 1
                                        if line == last:
                                            break
                                        line += 1
                                        continue
                                missed = True
                                done = load_line(core_id, line, now)
                                if done > now:
                                    load_stall += done - now
                                    now = done
                                if line == last:
                                    break
                                line += 1
                        elif bkind == "c":
                            _, cycles, op_instructions, l1_accesses = bop
                            cost = cycles * cycle_fs
                            now += cost
                            useful += cost
                            instructions += op_instructions
                            word_accesses += l1_accesses
                        elif bkind == "st" or bkind == "pfs":
                            _, addr, nbytes, accesses = bop
                            addr += delta
                            issue = accesses * cycle_fs
                            now += issue
                            useful += issue
                            instructions += accesses
                            word_accesses += accesses
                            no_allocate = bkind == "pfs"
                            line = addr >> line_shift
                            last = (addr + nbytes - 1) >> line_shift
                            while True:
                                if probe:
                                    cache_set = l1_sets[line & l1_mask]
                                    entry = cache_set.get(line)
                                    if (entry is not None
                                            and entry.state is not shared):
                                        cache_set.move_to_end(line)
                                        entry.state = modified
                                        entry.prefetched = False
                                        stores_hit += 1
                                        if line == last:
                                            break
                                        line += 1
                                        continue
                                missed = True
                                stall = store_line(core_id, line, now,
                                                   no_allocate=no_allocate)
                                if stall:
                                    store_stall += stall
                                    now += stall
                                if line == last:
                                    break
                                line += 1
                        else:  # lsld / lsst
                            _, offset, nbytes, accesses = bop
                            if local_store is None:
                                raise SimulationError(
                                    f"core {core_id}: local-store access "
                                    "on the cache-coherent model")
                            local_store.check_range(offset, nbytes)
                            if bkind == "lsld":
                                local_store.record_read(nbytes, accesses)
                            else:
                                local_store.record_write(nbytes, accesses)
                            issue = accesses * cycle_fs
                            now += issue
                            useful += issue
                            instructions += accesses
                            local_accesses += accesses
                        if now >= limit:
                            if fastpath:
                                next_fs = peek_time()
                                if next_fs is None or next_fs > now:
                                    limit = now + quantum_fs
                                    continue
                            if index < n_ops:
                                pending.append(("blk", blk, delta, index))
                            yielded = True
                            break
                    if hits0 >= 0 and not yielded and start == 0:
                        if probe and not missed:
                            # Not a single walker call: every line was
                            # served inline (or the block touches no L1
                            # lines at all — a local-store kernel).  The
                            # closed form would have retired this
                            # dispatch whole; promote the template.
                            verdicts[bid] = -1
                        elif loads_hit + stores_hit == hits0:
                            verdicts[bid] = BLK_COLD_SKIP
                    if yielded:
                        action = YIELD
                        break
                    continue

                elif kind == "lsld" or kind == "lsst":
                    _, offset, nbytes, accesses = op
                    store = local_store
                    if store is None:
                        raise SimulationError(
                            f"core {core_id}: local-store access on the "
                            "cache-coherent model")
                    store.check_range(offset, nbytes)
                    if kind == "lsld":
                        store.record_read(nbytes, accesses)
                    else:
                        store.record_write(nbytes, accesses)
                    issue = accesses * cycle_fs
                    now += issue
                    useful += issue
                    instructions += accesses
                    local_accesses += accesses

                elif kind == "dget" or kind == "dput":
                    _, tag, addr, nbytes, stride, block = op
                    if dma_engine is None:
                        raise SimulationError(
                            f"core {core_id}: DMA issued on the "
                            "cache-coherent model"
                        )
                    now += dma_setup_fs
                    useful += dma_setup_fs
                    instructions += dma_setup_cycles
                    if kind == "dget":
                        done = dma_engine.get(now, addr, nbytes, stride, block)
                    else:
                        done = dma_engine.put(now, addr, nbytes, stride, block)
                    previous = dma_tags.get(tag, 0)
                    if done > previous:
                        dma_tags[tag] = done

                elif kind == "dwait":
                    done = dma_tags.get(op[1])
                    if done is None:
                        # Waiting on a tag that never issued a command is
                        # always a workload bug (the wait would silently
                        # cost zero time), so fail loudly.
                        raise SimulationError(
                            f"core {core_id}: dwait on tag {op[1]} which "
                            "never issued a DMA command")
                    if done > now:
                        sync += done - now
                        now = done

                elif kind == "bar":
                    overhead = BARRIER_OVERHEAD_CYCLES * cycle_fs
                    now += overhead
                    useful += overhead
                    instructions += BARRIER_OVERHEAD_CYCLES
                    release = op[1].arrive(self, now)
                    if release is None:
                        break  # suspended; the barrier will wake us
                    sync += release - now
                    now = release

                elif kind == "lock":
                    overhead = LOCK_OVERHEAD_CYCLES * cycle_fs
                    now += overhead
                    useful += overhead
                    instructions += LOCK_OVERHEAD_CYCLES
                    granted = op[1].acquire(self, now)
                    if granted is None:
                        break  # suspended; the lock will wake us

                elif kind == "unlock":
                    op[1].release(self, now)

                elif kind == "pop":
                    overhead_fs = TASK_POP_OVERHEAD_CYCLES * cycle_fs
                    instructions += TASK_POP_OVERHEAD_CYCLES
                    item, done = op[1].pop(now, overhead_fs)
                    wait = done - now
                    useful += overhead_fs
                    sync += wait - overhead_fs
                    now = done
                    send_value = item

                elif kind == "bpf":
                    _, addr, nbytes = op
                    now += dma_setup_fs
                    useful += dma_setup_fs
                    instructions += dma_setup_cycles
                    first = addr >> line_shift
                    last = (addr + nbytes - 1) >> line_shift
                    hierarchy.bulk_prefetch(core_id, first, last, now)

                elif kind == "cfl" or kind == "cinv":
                    _, addr, nbytes = op
                    first = addr >> line_shift
                    last = (addr + nbytes - 1) >> line_shift
                    n_lines = last - first + 1
                    # Software loop: one instruction per line walked.
                    cost = n_lines * cycle_fs
                    now += cost
                    useful += cost
                    instructions += n_lines
                    if kind == "cfl":
                        hierarchy.flush_range(core_id, first, last, now)
                    else:
                        hierarchy.invalidate_range(core_id, first, last, now)

                elif kind == "im":
                    count = op[1]
                    icache_misses += count
                    penalty = count * imiss_fs
                    now += penalty
                    useful += penalty

                else:
                    raise SimulationError(f"core {core_id}: unknown op {op!r}")

                if now >= limit:
                    if fastpath:
                        next_fs = peek_time()
                        if next_fs is None or next_fs > now:
                            # Sole runnable actor: our resume event would
                            # pop next with nothing in between.  Renew the
                            # quantum in place instead of going through
                            # the heap.
                            limit = now + quantum_fs
                            continue
                    action = YIELD
                    break
        finally:
            # Single flush point: every exit (finish, suspend, yield, or
            # an op raising mid-quantum) folds the batch back exactly once.
            self._flush_locals(
                now, send_value, useful, sync, load_stall, store_stall,
                instructions, word_accesses, local_accesses, icache_misses,
                loads_hit, stores_hit, phase_retired, phase_total,
                stream_retired, stream_total)
        if action == FINISH:
            self._finish()
        elif action == YIELD:
            self.sim.at(self.now, self._step)

    def _flush_locals(self, now, send_value, useful, sync, load_stall,
                      store_stall, instructions, word_accesses,
                      local_accesses, icache_misses, loads_hit,
                      stores_hit, phase_retired, phase_total,
                      stream_retired, stream_total) -> None:
        """Fold the hot loop's batched deltas back into the object state."""
        self.now = now
        self._send_value = send_value
        self.useful_fs += useful
        self.sync_fs += sync
        self.load_stall_fs += load_stall
        self.store_stall_fs += store_stall
        self.instructions += instructions
        self.word_accesses += word_accesses
        self.local_accesses += local_accesses
        self.icache_misses += icache_misses
        self.phase_iters += phase_retired
        self.phase_iters_total += phase_total
        self.stream_iters += stream_retired
        self.stream_iters_total += stream_total
        if loads_hit or stores_hit:
            self.hierarchy.fold_hit_counters(loads_hit, stores_hit)

    def _finish(self) -> None:
        self.done = True
        self.finish_fs = self.now
        self.system.core_finished(self)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def total_fs(self) -> int:
        """Sum of all four execution-time components."""
        return self.useful_fs + self.sync_fs + self.load_stall_fs + self.store_stall_fs
