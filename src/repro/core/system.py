"""CMP system assembly: configuration + workload program -> RunResult.

:class:`CmpSystem` builds the memory hierarchy for the configured model,
binds one workload thread per core, runs the event simulation to
completion, settles outstanding memory state (so off-chip traffic is
accounted identically for both models), and produces a
:class:`~repro.results.RunResult`.
"""

from __future__ import annotations

from repro.config import MachineConfig, MemoryModel
from repro.energy.model import EnergyModel, EnergyParams
from repro.mem.hierarchy import (CacheCoherentHierarchy,
                                 IncoherentCacheHierarchy,
                                 StreamingHierarchy)
from repro.results import Breakdown, RunResult, Traffic
from repro.sim.kernel import SimulationError, Simulator
from repro.validate import check_result

#: Every run is audited against the physical invariants of
#: repro.validate; set to False only when deliberately constructing
#: broken configurations (e.g. fault-injection experiments).
SELF_CHECK = True


class CmpSystem:
    """One fully assembled CMP ready to execute a workload program."""

    def __init__(self, config: MachineConfig, program,
                 energy_params: EnergyParams | None = None) -> None:
        self.config = config
        self.program = program
        self.sim = Simulator()
        if config.model is MemoryModel.STREAMING:
            self.hierarchy = StreamingHierarchy(config)
        elif config.model is MemoryModel.INCOHERENT:
            self.hierarchy = IncoherentCacheHierarchy(config)
        else:
            self.hierarchy = CacheCoherentHierarchy(config)
        self._energy_model = EnergyModel(config, energy_params)
        # Import here to keep repro.core free of a workloads dependency.
        from repro.core.processor import Processor

        threads = program.threads(self)
        if len(threads) != config.num_cores:
            raise ValueError(
                f"program {program.name!r} built {len(threads)} threads "
                f"for a {config.num_cores}-core machine"
            )
        self.processors = [
            Processor(core_id, self, thread)
            for core_id, thread in enumerate(threads)
        ]
        self._finished = 0
        self.exec_time_fs = 0
        self.settled_fs = 0
        self.monitors = None
        if config.debug_invariants:
            # Imported lazily: repro.analysis depends on repro.mem and
            # would otherwise create an import cycle.
            from repro.analysis.monitors import attach_monitors

            self.monitors = attach_monitors(self)

    def core_finished(self, processor) -> None:
        """Processor callback: record a core's completion time."""
        self._finished += 1
        if processor.finish_fs > self.exec_time_fs:
            self.exec_time_fs = processor.finish_fs

    def run(self, loop=None) -> RunResult:
        """Execute the program to completion and return the measurements.

        ``loop`` optionally replaces the default ``self.sim.run()`` event
        loop with a callable taking the simulator; it must drain the
        queue completely.  Pull-style drivers
        (:meth:`repro.sim.sampling.IntervalSampler.drive`) use it to step
        the run boundary by boundary with
        :meth:`~repro.sim.kernel.Simulator.drain_until`.
        """
        for processor in self.processors:
            processor.start()
        if loop is None:
            self.sim.run()
        else:
            loop(self.sim)
        if self._finished != len(self.processors):
            blocked = [p.core_id for p in self.processors if not p.done]
            raise SimulationError(
                f"deadlock: cores {blocked} never finished "
                f"(workload {self.program.name!r})"
            )
        # Settle: flush dirty cached state so both models account the same
        # compulsory write traffic (Section 4 methodology).
        self.settled_fs = self.hierarchy.drain(self.exec_time_fs)
        return self._collect()

    def _collect(self) -> RunResult:
        config = self.config
        hierarchy = self.hierarchy
        uncore = hierarchy.uncore
        num_cores = config.num_cores
        exec_fs = self.exec_time_fs

        # Idle time after a core's own finish is load imbalance: charge it
        # to sync so the stacked components of every core sum to the bar.
        useful = sum(p.useful_fs for p in self.processors) / num_cores
        sync = sum(
            p.sync_fs + (exec_fs - p.finish_fs) for p in self.processors
        ) / num_cores
        load = sum(p.load_stall_fs for p in self.processors) / num_cores
        store = sum(p.store_stall_fs for p in self.processors) / num_cores
        breakdown = Breakdown(useful, sync, load, store)

        traffic = Traffic(
            read_bytes=uncore.dram.read_bytes,
            write_bytes=uncore.dram.write_bytes,
        )
        energy = self._energy_model.compute(self)

        stats = {
            "l1.load_ops": hierarchy.load_ops,
            "l1.store_ops": hierarchy.store_ops,
            "l1.upgrades": hierarchy.upgrades,
            "l1.writebacks": hierarchy.l1_writebacks,
            "l1.snoop_lookups": hierarchy.snoop_lookups,
            "l1.directory_lookups": hierarchy.directory_lookups,
            "l1.invalidations": hierarchy.invalidations_sent,
            "l1.cache_to_cache": hierarchy.cache_to_cache,
            "l1.refills_avoided": hierarchy.refills_avoided,
            "prefetch.issued": hierarchy.prefetches_issued,
            "prefetch.useful": hierarchy.prefetch_useful,
            "prefetch.bulk": hierarchy.bulk_prefetches,
            "l2.reads": uncore.l2_reads,
            "l2.writes": uncore.l2_writes,
            "l2.read_hits": uncore.l2_read_hits,
            "l2.write_hits": uncore.l2_write_hits,
            "l2.writebacks": uncore.l2_writebacks,
            "l2.refills_avoided": uncore.l2_refills_avoided,
            "dram.reads": uncore.dram.read_accesses,
            "dram.writes": uncore.dram.write_accesses,
            "dram.row_hits": uncore.dram.row_hits,
            "dram.row_misses": uncore.dram.row_misses,
            "dram.utilization": uncore.dram.utilization(exec_fs),
            "dram.wait_fs": sum(ch.wait_fs for ch in uncore.dram._channels),
            "bus.wait_fs": sum(b.req.wait_fs + b.resp.wait_fs
                               for b in uncore.buses),
            "xbar.wait_fs": sum(p.wait_fs for p in uncore.xbar.up)
                            + sum(p.wait_fs for p in uncore.xbar.down),
            "sim.events": self.sim.events_processed,
            "sim.phase_iters": sum(p.phase_iters for p in self.processors),
            "sim.phase_iters_total": sum(
                p.phase_iters_total for p in self.processors),
            "sim.stream_iters": sum(
                p.stream_iters for p in self.processors),
            "sim.stream_iters_total": sum(
                p.stream_iters_total for p in self.processors),
        }
        if config.model is MemoryModel.STREAMING:
            stats["dma.commands"] = hierarchy.dma_commands
            stats["dma.bytes"] = hierarchy.dma_bytes

        l2_accesses = uncore.l2_reads + uncore.l2_writes
        l2_misses = (l2_accesses - uncore.l2_read_hits - uncore.l2_write_hits)

        result = RunResult(
            workload=self.program.name,
            model=config.model.value,
            num_cores=num_cores,
            clock_ghz=config.core.clock_ghz,
            exec_time_fs=exec_fs,
            settled_fs=self.settled_fs,
            breakdown=breakdown,
            traffic=traffic,
            energy=energy,
            instructions=sum(p.instructions for p in self.processors),
            word_accesses=sum(p.word_accesses for p in self.processors),
            local_accesses=sum(p.local_accesses for p in self.processors),
            l1_misses=hierarchy.l1_misses,
            l1_load_misses=hierarchy.load_misses,
            l1_store_misses=hierarchy.store_misses,
            l2_accesses=l2_accesses,
            l2_misses=l2_misses,
            stats=stats,
        )
        if SELF_CHECK:
            problems = check_result(result, config)
            if problems:
                raise SimulationError(
                    "run failed self-validation:\n  - "
                    + "\n  - ".join(problems)
                )
        return result


def run_program(config: MachineConfig, program,
                energy_params: EnergyParams | None = None) -> RunResult:
    """Build a :class:`CmpSystem` for ``program`` and run it."""
    return CmpSystem(config, program, energy_params).run()
