"""Set-associative cache with true-LRU replacement.

One class serves every cache in the system: the per-core L1 D-caches of
the coherent model (which carry MESI states), the streaming model's small
8 KB cache, and the shared 512 KB L2 (which only needs a dirty bit, carried
as M-vs-E state).

Addresses are tracked at line granularity: callers pass *line numbers*
(``addr >> line_shift``), never byte addresses.  Each set is an
``OrderedDict`` from line number to :class:`CacheLine`; insertion order is
the LRU order, with the most recently used line at the end.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator

from repro.config import CacheConfig
from repro.mem.coherence import MesiState


class CacheLine:
    """Metadata for one resident cache line.

    ``ready_fs`` supports in-flight fills (hardware prefetches install the
    line immediately with a future ready time; a demand access before that
    time stalls until the fill lands).  ``prefetched`` implements *tagged*
    prefetching: the first demand hit on a prefetched line re-arms the
    prefetcher.
    """

    __slots__ = ("line", "state", "ready_fs", "prefetched")

    def __init__(self, line: int, state: MesiState,
                 ready_fs: int = 0, prefetched: bool = False) -> None:
        self.line = line
        self.state = state
        self.ready_fs = ready_fs
        self.prefetched = prefetched

    def __repr__(self) -> str:
        return f"CacheLine(line={self.line:#x}, state={self.state.name})"


class SetAssocCache:
    """A set-associative, true-LRU cache directory.

    This class is purely functional state (tags, states, LRU); all timing
    and energy accounting live in the hierarchy walker.
    """

    __slots__ = ("config", "name", "num_sets", "associativity", "_set_mask",
                 "_sets", "_resident")

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        self._set_mask = self.num_sets - 1
        self._sets: list[OrderedDict[int, CacheLine]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        # Resident-line count, maintained incrementally: occupancy() sits
        # on the debug_invariants monitor hot path, where summing every
        # set per call is O(num_sets) for a quantity that changes by at
        # most one per insert/invalidate.
        self._resident = 0

    def _set_for(self, line: int) -> OrderedDict[int, CacheLine]:
        return self._sets[line & self._set_mask]

    def lookup(self, line: int) -> CacheLine | None:
        """Return the resident line, or None.  Does not update LRU."""
        return self._sets[line & self._set_mask].get(line)

    def touch(self, line: int) -> CacheLine | None:
        """Look up a line and mark it most-recently-used."""
        cache_set = self._sets[line & self._set_mask]
        entry = cache_set.get(line)
        if entry is not None:
            cache_set.move_to_end(line)
        return entry

    def insert(self, line: int, state: MesiState,
               ready_fs: int = 0, prefetched: bool = False) -> CacheLine | None:
        """Install ``line`` as most-recently-used.

        Returns the evicted victim :class:`CacheLine` if the set was full,
        else None.  Inserting a line that is already resident is an error —
        callers must use :meth:`lookup` / :meth:`touch` first.
        """
        if state is MesiState.INVALID:
            raise ValueError("cannot insert a line in INVALID state")
        cache_set = self._sets[line & self._set_mask]
        if line in cache_set:
            raise ValueError(f"{self.name}: line {line:#x} already resident")
        victim = None
        if len(cache_set) >= self.associativity:
            _, victim = cache_set.popitem(last=False)
        else:
            self._resident += 1
        cache_set[line] = CacheLine(line, state, ready_fs, prefetched)
        return victim

    def invalidate(self, line: int) -> CacheLine | None:
        """Remove a line; returns its metadata (for dirty write-back) or None."""
        victim = self._sets[line & self._set_mask].pop(line, None)
        if victim is not None:
            self._resident -= 1
        return victim

    def lines(self) -> Iterator[CacheLine]:
        """Iterate over every resident line (LRU to MRU within each set)."""
        for cache_set in self._sets:
            yield from cache_set.values()

    def occupancy(self) -> int:
        """Total number of resident lines (O(1): counter, not a set walk)."""
        return self._resident

    def clear(self) -> None:
        """Drop every resident line."""
        for cache_set in self._sets:
            cache_set.clear()
        self._resident = 0
