"""Per-core store buffer.

Each core includes a store buffer that allows loads to bypass store
misses, making the consistency model weak (Section 3.2).  The buffer is
modelled as a bounded queue of *retirement timestamps*: when a store miss
is issued, its memory-system walk happens immediately (functionally and in
terms of resource occupancy), but the core only stalls if the buffer is
full of not-yet-retired stores, in which case the stall lasts until the
oldest entry retires.
"""

from __future__ import annotations

from collections import deque


class StoreBuffer:
    """Bounded queue of outstanding store completion times."""

    __slots__ = ("entries", "_pending", "stores_buffered", "full_stalls")

    def __init__(self, entries: int) -> None:
        if entries <= 0:
            raise ValueError(f"store buffer needs at least one entry, got {entries}")
        self.entries = entries
        self._pending: deque[int] = deque()
        self.stores_buffered = 0
        self.full_stalls = 0

    def _drain(self, now_fs: int) -> None:
        pending = self._pending
        while pending and pending[0] <= now_fs:
            pending.popleft()

    def push(self, now_fs: int, done_fs: int) -> int:
        """Buffer a store that the memory system will complete at ``done_fs``.

        Returns the stall in femtoseconds the core must absorb before the
        store can enter the buffer (zero if a slot is free at ``now_fs``).
        """
        self._drain(now_fs)
        stall = 0
        if len(self._pending) >= self.entries:
            # Wait for the oldest store to retire, then drain again.
            oldest = self._pending[0]
            stall = max(0, oldest - now_fs)
            self.full_stalls += 1
            self._drain(now_fs + stall)
        self._pending.append(max(done_fs, now_fs + stall))
        self.stores_buffered += 1
        return stall

    def outstanding(self, now_fs: int) -> int:
        """Number of stores still in flight at ``now_fs``."""
        self._drain(now_fs)
        return len(self._pending)

    def drain_time(self, now_fs: int) -> int:
        """Time at which the buffer becomes empty (for end-of-run settling)."""
        self._drain(now_fs)
        return self._pending[-1] if self._pending else now_fs
