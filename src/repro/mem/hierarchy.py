"""The full memory hierarchies cores issue accesses against.

:class:`Uncore` holds everything outside the cores — the per-cluster
buses, the global crossbar, the banked shared L2, and the DRAM channel —
and is shared verbatim by both memory models, which is the paper's central
methodological point: the two models are compared under *identical*
uncore assumptions.

:class:`CacheCoherentHierarchy` adds per-core coherent L1 D-caches (MESI,
cluster-first broadcast), store buffers, and optional hardware stream
prefetchers.

:class:`StreamingHierarchy` reuses the same machinery with the streaming
model's small 8 KB cache as "L1" and adds per-core local stores and DMA
engines.

All walk methods are *per cache line*: callers (the processor model) pass
line numbers, and receive absolute completion timestamps.  Timing uses
occupancy resources, so contention between cores, prefetchers, DMA
engines, and write-backs emerges naturally.
"""

from __future__ import annotations

from repro.config import (CacheConfig, CoherenceKind, MachineConfig,
                          WritePolicy)
from repro.interconnect.fabric import ClusterBus, Crossbar
from repro.mem.cache import SetAssocCache
from repro.mem.coherence import MesiState
from repro.mem.dma import DmaEngine
from repro.mem.dram import DramChannel
from repro.mem.local_store import LocalStore
from repro.mem.prefetcher import StreamPrefetcher
from repro.mem.store_buffer import StoreBuffer
from repro.sim.resources import OccupancyResource
from repro.units import ns_to_fs


class Uncore:
    """Buses, crossbar, shared L2, and the DRAM channel (Figure 1)."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        ic = config.interconnect
        num_clusters = config.num_clusters
        self.buses = [ClusterBus(c, ic) for c in range(num_clusters)]
        self.xbar = Crossbar(num_clusters, ic)
        self.l2 = SetAssocCache(config.l2, "l2")
        self.l2_banks = [
            OccupancyResource(f"l2.bank.{b}", latency_fs=ns_to_fs(config.l2_latency_ns))
            for b in range(num_clusters)
        ]
        self._l2_service_fs = ns_to_fs(ic.crossbar_cycle_ns)
        self._num_banks = len(self.l2_banks)
        self.dram = DramChannel(config.dram)
        self.line_bytes = config.line_bytes
        # L2 statistics
        self.l2_reads = 0
        self.l2_read_hits = 0
        self.l2_writes = 0
        self.l2_write_hits = 0
        self.l2_writebacks = 0
        self.l2_refills_avoided = 0

    def _bank(self, line: int) -> OccupancyResource:
        return self.l2_banks[line % self._num_banks]

    def _evict(self, victim, when_fs: int) -> None:
        """Handle an L2 victim: dirty lines are written back to DRAM.

        ``when_fs`` must be the time the *miss was sent* to memory (the
        bank access time), not the fill-completion time: victim data sits
        in a write-back buffer and drains opportunistically, so posting it
        after the fill's full access latency would falsely serialize the
        next demand read behind an entire DRAM round trip.
        """
        if victim is not None and victim.state is MesiState.MODIFIED:
            self.l2_writebacks += 1
            self.dram.write(when_fs, self.line_bytes,
                            addr=victim.line * self.line_bytes)

    def l2_read(self, line: int, now_fs: int) -> tuple[int, bool]:
        """Read one line through the L2.  Returns (completion_fs, hit)."""
        self.l2_reads += 1
        # SetAssocCache.touch, inlined: this is the busiest uncore entry
        # point (every L1 miss and every DMA line granule lands here).
        l2 = self.l2
        cache_set = l2._sets[line & l2._set_mask]
        entry = cache_set.get(line)
        bank = self.l2_banks[line % self._num_banks]
        sent = bank.serve(now_fs, self._l2_service_fs)
        if entry is not None:
            cache_set.move_to_end(line)
            self.l2_read_hits += 1
            return sent, True
        done = self.dram.read(sent, self.line_bytes,
                              addr=line * self.line_bytes)
        victim = self.l2.insert(line, MesiState.EXCLUSIVE)
        self._evict(victim, sent)
        return done, False

    def l2_write(self, line: int, now_fs: int, refill: bool) -> int:
        """Write one full or partial line into the L2.

        ``refill=False`` is the full-line case (L1 dirty write-back or a
        line-aligned DMA put): the L2 allocates and validates the line
        without reading the stale data from memory.  ``refill=True`` is a
        partial-line write, which must fetch the line first.
        """
        self.l2_writes += 1
        entry = self.l2.touch(line)
        bank = self.l2_banks[line % self._num_banks]
        sent = bank.serve(now_fs, self._l2_service_fs)
        if entry is not None:
            self.l2_write_hits += 1
            entry.state = MesiState.MODIFIED
            return sent
        done = sent
        if refill:
            done = self.dram.read(sent, self.line_bytes,
                                  addr=line * self.line_bytes)
        else:
            self.l2_refills_avoided += 1
        victim = self.l2.insert(line, MesiState.MODIFIED)
        self._evict(victim, sent)
        return done

    def l2_read_partial(self, line: int, nbytes: int, now_fs: int) -> int:
        """Sub-line read (strided/indexed DMA gather).

        The L2 still captures long-term reuse (Section 3.3), but a miss
        moves only the requested bytes from DRAM and does not allocate —
        the "minimum memory channel bandwidth" property of scatter/gather
        DMA (Section 2.3).
        """
        self.l2_reads += 1
        entry = self.l2.touch(line)
        bank = self.l2_banks[line % self._num_banks]
        sent = bank.serve(now_fs, self._l2_service_fs)
        if entry is not None:
            self.l2_read_hits += 1
            return sent
        return self.dram.read(sent, nbytes, addr=line * self.line_bytes)

    def l2_write_partial(self, line: int, nbytes: int, now_fs: int) -> int:
        """Sub-line write (strided/indexed DMA scatter).

        Hits merge into the cached line.  Misses allocate the line without
        a refill: DMA scatter output is gathered in the L2 (strided puts
        cover their lines across successive commands — e.g. adjacent
        macroblocks writing the two halves of a reconstruction line), so
        the data stays on chip for later reuse and reaches DRAM once, on
        eviction, instead of as narrow writes.
        """
        self.l2_writes += 1
        entry = self.l2.touch(line)
        bank = self.l2_banks[line % self._num_banks]
        sent = bank.serve(now_fs, self._l2_service_fs)
        if entry is not None:
            self.l2_write_hits += 1
            entry.state = MesiState.MODIFIED
            return sent
        self.l2_refills_avoided += 1
        victim = self.l2.insert(line, MesiState.MODIFIED)
        self._evict(victim, sent)
        return sent

    def flush(self, now_fs: int) -> int:
        """Write every dirty L2 line back to DRAM (end-of-run settling)."""
        t = now_fs
        modified = MesiState.MODIFIED
        # Walk the per-set dicts directly: lines() is a generator chain,
        # and this walk visits every set of a 16K-line cache per run.
        for cache_set in self.l2._sets:
            for entry in cache_set.values():
                if entry.state is modified:
                    entry.state = MesiState.EXCLUSIVE
                    self.l2_writebacks += 1
                    t = self.dram.write(t, self.line_bytes,
                                        addr=entry.line * self.line_bytes)
        return t


class CacheCoherentHierarchy:
    """Per-core coherent L1s over the shared uncore (the paper's CC model)."""

    def __init__(self, config: MachineConfig,
                 l1_config: CacheConfig | None = None) -> None:
        self.config = config
        self.uncore = Uncore(config)
        l1_config = l1_config or config.l1
        self.l1_config = l1_config
        num_cores = config.num_cores
        self.l1s = [SetAssocCache(l1_config, f"l1.{i}") for i in range(num_cores)]
        self.store_buffers = [
            StoreBuffer(config.core.store_buffer_entries) for _ in range(num_cores)
        ]
        if config.prefetch.enabled:
            self.prefetchers: list[StreamPrefetcher | None] = [
                StreamPrefetcher(config.prefetch) for _ in range(num_cores)
            ]
        else:
            self.prefetchers = [None] * num_cores
        # In-flight fill completion times per core: prefetches occupy
        # MSHRs, and issue stops when the per-core MSHRs are exhausted.
        self._mshr_limit = config.core.mshr_entries
        self._inflight: list[list[int]] = [[] for _ in range(num_cores)]
        cluster_size = config.interconnect.cluster_size
        self.cluster_of = [i // cluster_size for i in range(num_cores)]
        self._no_write_allocate = l1_config.write_policy is WritePolicy.NO_WRITE_ALLOCATE
        # Directory mode: track the sharer set per line so remote lookups
        # consult the directory instead of broadcasting snoops.
        self._directory_mode = config.coherence is CoherenceKind.DIRECTORY
        self._sharers: dict[int, set[int]] = {}
        # A single broadcast-mode core has no peers to snoop or
        # invalidate: skip the owner/invalidate walk entirely.  (Directory
        # mode still consults the directory so its lookup count is
        # meaningful even solo.)
        self._no_peers = num_cores == 1 and not self._directory_mode
        # Broadcast mode snoops a static peer set; precompute the tuples
        # so the hot lookup paths do not rebuild them per access.
        self._broadcast_peers = [
            tuple(c for c in range(num_cores) if c != requester)
            for requester in range(num_cores)
        ]
        # Per-core interconnect endpoints, pre-resolved: the miss walk is
        # the simulator's hottest call chain after the op loop itself.
        self._core_ports = [
            (self.uncore.buses[cl], self.uncore.xbar.up[cl],
             self.uncore.xbar.down[cl], cl)
            for cl in self.cluster_of
        ]
        #: Optional callable (now_fs, core, kind, line, latency_fs) invoked
        #: for every demand access; installed by repro.trace.TraceRecorder.
        self.trace_hook = None
        #: Invariant observers (repro.analysis.monitors): each is notified
        #: with (kind, core, line, now_fs, hierarchy) after every
        #: state-changing line operation.  Empty unless the config's
        #: ``debug_invariants`` flag attached monitors, so the hot path
        #: pays one falsy check per operation.
        self._observers: list = []
        # Statistics (line-granularity operations)
        self.load_ops = 0
        self.store_ops = 0
        self.load_misses = 0
        self.store_misses = 0
        self.upgrades = 0
        self.invalidations_sent = 0
        self.snoop_lookups = 0
        self.directory_lookups = 0
        self.cache_to_cache = 0
        self.l1_writebacks = 0
        self.prefetches_issued = 0
        self.prefetch_mshr_drops = 0
        self.bulk_prefetches = 0
        self.flushes = 0
        self.invalidates = 0
        self.dirty_invalidates = 0
        self.prefetch_useful = 0
        self.prefetch_late_fs = 0
        self.refills_avoided = 0

    def fold_hit_counters(self, loads_hit: int, stores_hit: int) -> None:
        """Fold a batch of inline-retired L1 hits into the op counters.

        The processor's fast paths (inline hits, the block closed form,
        the phase engine) count guaranteed hits in loop-locals and fold
        them here once per scheduling slice — the per-access paths
        (:meth:`load_line` / :meth:`store_line`) bump the same counters
        one at a time, so totals are mode-independent.
        """
        self.load_ops += loads_hit
        self.store_ops += stores_hit

    # ------------------------------------------------------------------
    # Invariant observers (debug mode)
    # ------------------------------------------------------------------

    @property
    def fastpath_safe(self) -> bool:
        """True when the inline L1-hit fast path preserves all side effects.

        Trace hooks and invariant observers fire on *every* demand access,
        including hits; while either is attached, the processor must route
        hits through :meth:`load_line`/:meth:`store_line` so the side
        channels observe them.
        """
        return self.trace_hook is None and not self._observers

    def register_observer(self, observer) -> None:
        """Attach an invariant observer (see :mod:`repro.analysis.monitors`).

        ``observer`` must be callable as
        ``observer(kind, core, line, now_fs, hierarchy)`` where ``kind``
        is one of ``"load"``, ``"store"``, ``"flush"``, ``"invalidate"``.
        Observers run *after* the operation's state changes and may raise
        :class:`~repro.sim.kernel.InvariantViolation`.
        """
        self._observers.append(observer)

    def unregister_observer(self, observer) -> None:
        """Detach an observer registered with :meth:`register_observer`.

        The symmetric removal: once the last observer (and any trace
        hook) is gone, :attr:`fastpath_safe` becomes true again, so a
        monitor detached between runs no longer pins every later run on
        the same system to the slow path.  Idempotent — removing an
        observer that is not (or no longer) attached is a no-op.
        """
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    def line_states(self, line: int) -> tuple[MesiState, ...]:
        """The MESI state of ``line`` in every L1 (INVALID when absent)."""
        return tuple(
            entry.state if (entry := l1.lookup(line)) is not None
            else MesiState.INVALID
            for l1 in self.l1s
        )

    def _notify(self, kind: str, core: int, line: int, now_fs: int) -> None:
        for observer in self._observers:
            observer(kind, core, line, now_fs, self)

    # ------------------------------------------------------------------
    # Coherence helpers
    # ------------------------------------------------------------------

    def _candidates(self, line: int, requester: int):
        """The peer caches a remote lookup must consult.

        Broadcast mode snoops every peer (each charged a tag lookup, per
        Section 3.2); directory mode consults the sharer set and snoops
        only the actual holders.
        """
        if self._directory_mode:
            self.directory_lookups += 1
            holders = self._sharers.get(line)
            if not holders:
                return ()
            # Sorted for deterministic supplier selection.
            return tuple(c for c in sorted(holders) if c != requester)
        return self._broadcast_peers[requester]

    def _find_owner(self, line: int, requester: int) -> tuple[int, MesiState] | None:
        """Return (core, state) of a peer holding ``line``, preferring M/E."""
        best: tuple[int, MesiState] | None = None
        for core in self._candidates(line, requester):
            self.snoop_lookups += 1
            entry = self.l1s[core].lookup(line)
            if entry is None:
                continue
            if entry.state in (MesiState.MODIFIED, MesiState.EXCLUSIVE):
                return core, entry.state
            if best is None:
                best = (core, entry.state)
        return best

    def _invalidate_peers(self, line: int, requester: int) -> bool:
        """Invalidate every peer copy; returns True if any was remote."""
        my_cluster = self.cluster_of[requester]
        any_remote = False
        for core in self._candidates(line, requester):
            self.snoop_lookups += 1
            victim = self.l1s[core].invalidate(line)
            if victim is not None:
                self.invalidations_sent += 1
                self._directory_remove(line, core)
                if self.cluster_of[core] != my_cluster:
                    any_remote = True
        return any_remote

    def _directory_add(self, line: int, core: int) -> None:
        if self._directory_mode:
            self._sharers.setdefault(line, set()).add(core)

    def _directory_remove(self, line: int, core: int) -> None:
        if self._directory_mode:
            holders = self._sharers.get(line)
            if holders is not None:
                holders.discard(core)
                if not holders:
                    del self._sharers[line]

    # ------------------------------------------------------------------
    # Fill path
    # ------------------------------------------------------------------

    def _install(self, core: int, line: int, state: MesiState, when_fs: int,
                 ready_fs: int = 0, prefetched: bool = False) -> None:
        """Install a line in a core's L1, handling the victim write-back.

        ``when_fs`` is the *issue* time of the demand access that caused
        the fill, not the fill-completion time: victim write-backs sit in
        a write-back buffer and drain at low priority, so charging their
        resource occupancy at (or before) the demand's own walk keeps
        acquisitions in time order and never blocks a later demand
        request behind a posted write.
        """
        victim = self.l1s[core].insert(line, state, ready_fs, prefetched)
        self._directory_add(line, core)
        if victim is not None:
            self._directory_remove(victim.line, core)
            if victim.state is MesiState.MODIFIED:
                self.writeback(core, victim.line, when_fs)

    def writeback(self, core: int, line: int, now_fs: int) -> int:
        """Write a dirty L1 line back to the L2 (posted; returns done time)."""
        self.l1_writebacks += 1
        uncore = self.uncore
        bus, xbar_up, _, _ = self._core_ports[core]
        line_bytes = uncore.line_bytes
        t = bus.req.transfer(now_fs, line_bytes)
        t = xbar_up.transfer(t, line_bytes)
        return uncore.l2_write(line, t, refill=False)

    def _fetch(self, core: int, line: int, now_fs: int, for_write: bool,
               refill: bool = True) -> int:
        """The miss walk: cluster bus, snoop, crossbar, L2, DRAM.

        Returns the time the requested line is installed in the L1.
        """
        uncore = self.uncore
        bus, xbar_up, xbar_down, cluster = self._core_ports[core]
        line_bytes = uncore.line_bytes
        t = bus.req.control(now_fs)

        if self._no_peers:
            owner = None
        else:
            owner = self._find_owner(line, core)
            if for_write and self._invalidate_peers(line, core):
                t = xbar_up.control(t)

        if owner is not None:
            owner_core, owner_state = owner
            owner_cluster = self.cluster_of[owner_core]
            self.cache_to_cache += 1
            if owner_cluster != cluster:
                # Remote supply: request over the crossbar, data back over it.
                t = xbar_up.control(t)
                t = uncore.buses[owner_cluster].resp.transfer(t, line_bytes)
                t = xbar_down.transfer(t, line_bytes)
            t = bus.resp.transfer(t, line_bytes)
            if for_write:
                # Ownership (and any dirty data) moves to the requester;
                # the owner was invalidated above.
                self._install(core, line, MesiState.MODIFIED, now_fs)
            else:
                owner_entry = self.l1s[owner_core].lookup(line)
                if owner_state is MesiState.MODIFIED:
                    # Downgrade with write-back so the L2 holds a clean copy.
                    self.uncore.l2_write(line, t, refill=False)
                if owner_entry is not None:
                    owner_entry.state = MesiState.SHARED
                self._install(core, line, MesiState.SHARED, now_fs)
            return t

        # No on-chip L1 copy: go to the L2 (and DRAM beyond it).
        if for_write and not refill:
            # PFS / no-allocate: validate the line without reading old data.
            self.refills_avoided += 1
            self._install(core, line, MesiState.MODIFIED, now_fs)
            return t
        t = xbar_up.control(t)
        t, _ = uncore.l2_read(line, t)
        t = xbar_down.transfer(t, line_bytes)
        t = bus.resp.transfer(t, line_bytes)
        state = MesiState.MODIFIED if for_write else MesiState.EXCLUSIVE
        self._install(core, line, state, now_fs)
        return t

    def _issue_prefetches(self, core: int, lines: list[int], now_fs: int) -> None:
        """Fetch prefetch candidates and install them with a future ready time."""
        l1 = self.l1s[core]
        cluster = self.cluster_of[core]
        uncore = self.uncore
        line_bytes = uncore.line_bytes
        inflight = self._inflight[core]
        if inflight:
            inflight[:] = [t for t in inflight if t > now_fs]
        for pline in lines:
            if len(inflight) >= self._mshr_limit - 1:
                self.prefetch_mshr_drops += 1
                break
            if l1.lookup(pline) is not None:
                continue
            if self._find_owner(pline, core) is not None:
                # Keep the prefetcher simple: skip lines another core owns.
                continue
            self.prefetches_issued += 1
            t = uncore.buses[cluster].req.control(now_fs)
            t = uncore.xbar.up[cluster].control(t)
            t, _ = uncore.l2_read(pline, t)
            t = uncore.xbar.down[cluster].transfer(t, line_bytes)
            t = uncore.buses[cluster].resp.transfer(t, line_bytes)
            self._install(core, pline, MesiState.EXCLUSIVE, now_fs,
                          ready_fs=t, prefetched=True)
            inflight.append(t)

    def bulk_prefetch(self, core: int, first_line: int, last_line: int,
                      now_fs: int) -> int:
        """Software bulk prefetch: fetch a line range into the core's L1.

        The hybrid-model primitive of Section 7 ("bulk transfer
        primitives for cache-based systems could enable more efficient
        macroscopic prefetching"): lines are fetched asynchronously, like
        a DMA get whose destination is the cache.  Demand accesses before
        a line lands wait only for the in-flight fill.  Returns the
        completion time of the last fill (informational; the core does
        not block on it).
        """
        l1 = self.l1s[core]
        cluster = self.cluster_of[core]
        uncore = self.uncore
        line_bytes = uncore.line_bytes
        done = now_fs
        t = now_fs
        for line in range(first_line, last_line + 1):
            if l1.lookup(line) is not None:
                continue
            if self._find_owner(line, core) is not None:
                # Like the hardware prefetcher: leave shared lines to the
                # demand path's coherence actions.
                continue
            self.bulk_prefetches += 1
            t = uncore.buses[cluster].req.control(t)
            t = uncore.xbar.up[cluster].control(t)
            fill, _ = uncore.l2_read(line, t)
            fill = uncore.xbar.down[cluster].transfer(fill, line_bytes)
            fill = uncore.buses[cluster].resp.transfer(fill, line_bytes)
            self._install(core, line, MesiState.EXCLUSIVE, now_fs,
                          ready_fs=fill, prefetched=False)
            done = max(done, fill)
        return done

    # ------------------------------------------------------------------
    # Core-facing operations (per line)
    # ------------------------------------------------------------------

    def load_line(self, core: int, line: int, now_fs: int) -> int:
        """Load one line; returns the completion time (== now on an L1 hit)."""
        self.load_ops += 1
        entry = self.l1s[core].touch(line)
        if entry is not None:
            done = now_fs
            if entry.ready_fs > now_fs:
                self.prefetch_late_fs += entry.ready_fs - now_fs
                done = entry.ready_fs
            if entry.prefetched:
                entry.prefetched = False
                self.prefetch_useful += 1
                prefetcher = self.prefetchers[core]
                if prefetcher is not None:
                    self._issue_prefetches(core, prefetcher.on_tagged_hit(line), now_fs)
            if self.trace_hook is not None:
                self.trace_hook(now_fs, core, "ld", line, done - now_fs)
            if self._observers:
                self._notify("load", core, line, now_fs)
            return done
        self.load_misses += 1
        done = self._fetch(core, line, now_fs, for_write=False)
        prefetcher = self.prefetchers[core]
        if prefetcher is not None:
            self._issue_prefetches(core, prefetcher.on_miss(line), now_fs)
        if self.trace_hook is not None:
            self.trace_hook(now_fs, core, "ld", line, done - now_fs)
        if self._observers:
            self._notify("load", core, line, now_fs)
        return done

    def store_line(self, core: int, line: int, now_fs: int,
                   no_allocate: bool = False) -> int:
        """Store to one line; returns the *stall* the core must absorb.

        Store hits and buffered store misses cost the core nothing beyond
        the issue slot; the returned stall is non-zero only when the store
        buffer is full.
        """
        self.store_ops += 1
        if self.trace_hook is not None:
            self.trace_hook(now_fs, core, "st", line, 0)
        entry = self.l1s[core].touch(line)
        if entry is not None:
            if entry.state is MesiState.SHARED:
                self.upgrades += 1
                cluster = self.cluster_of[core]
                t = self.uncore.buses[cluster].req.control(now_fs)
                if self._invalidate_peers(line, core):
                    self.uncore.xbar.up[cluster].control(t)
            entry.state = MesiState.MODIFIED
            entry.prefetched = False
            if self._observers:
                self._notify("store", core, line, now_fs)
            return 0
        self.store_misses += 1
        if self._no_write_allocate and not no_allocate:
            # Write-through with gathering: push the line toward the L2
            # without allocating in the L1.
            self._invalidate_peers(line, core)
            done = self.writeback(core, line, now_fs)
            if self._observers:
                self._notify("store", core, line, now_fs)
            return self.store_buffers[core].push(now_fs, done)
        refill = not no_allocate
        done = self._fetch(core, line, now_fs, for_write=True, refill=refill)
        if self._observers:
            self._notify("store", core, line, now_fs)
        return self.store_buffers[core].push(now_fs, done)

    # ------------------------------------------------------------------
    # Software cache control (flush / invalidate instructions)
    # ------------------------------------------------------------------

    def flush_range(self, core: int, first_line: int, last_line: int,
                    now_fs: int) -> int:
        """Write back every dirty line of the range; returns when posted.

        The software communication primitive of the incoherent model, and
        an ordinary cache-control instruction on the coherent one.
        """
        l1 = self.l1s[core]
        flushed = now_fs
        for line in range(first_line, last_line + 1):
            entry = l1.lookup(line)
            if entry is not None and entry.state is MesiState.MODIFIED:
                entry.state = MesiState.SHARED
                self.flushes += 1
                flushed = max(flushed, self.writeback(core, line, now_fs))
                if self._observers:
                    self._notify("flush", core, line, now_fs)
        return flushed

    def invalidate_range(self, core: int, first_line: int, last_line: int,
                         now_fs: int) -> None:
        """Drop every cached line of the range.

        Dirty lines are written back first and counted — silently losing
        writes would make the traffic model lie about a software bug.
        """
        l1 = self.l1s[core]
        for line in range(first_line, last_line + 1):
            victim = l1.invalidate(line)
            if victim is not None:
                self.invalidates += 1
                self._directory_remove(line, core)
                if victim.state is MesiState.MODIFIED:
                    self.writeback(core, line, now_fs)
                    self.dirty_invalidates += 1
                if self._observers:
                    self._notify("invalidate", core, line, now_fs)

    # ------------------------------------------------------------------
    # End-of-run settling
    # ------------------------------------------------------------------

    def drain(self, now_fs: int) -> int:
        """Flush dirty L1 and L2 state so off-chip traffic is fully counted.

        Returns the time the memory system goes quiet.  Without this, a
        model that leaves megabytes of dirty output in the L2 would appear
        to use less bandwidth than one that wrote it out during the run.
        """
        t = now_fs
        modified = MesiState.MODIFIED
        for buffer in self.store_buffers:
            t = max(t, buffer.drain_time(now_fs))
        for core, l1 in enumerate(self.l1s):
            for cache_set in l1._sets:
                for entry in cache_set.values():
                    if entry.state is modified:
                        entry.state = MesiState.SHARED
                        t = max(t, self.writeback(core, entry.line, t))
        return max(t, self.uncore.flush(t))

    # ------------------------------------------------------------------
    # Derived statistics
    # ------------------------------------------------------------------

    @property
    def l1_misses(self) -> int:
        """Demand load + store misses across all L1s."""
        return self.load_misses + self.store_misses

    @property
    def l1_ops(self) -> int:
        """Demand line operations across all L1s."""
        return self.load_ops + self.store_ops


class IncoherentCacheHierarchy(CacheCoherentHierarchy):
    """Caches without coherence — Table 1's third practical design point.

    No snooping, no invalidation broadcasts, no cache-to-cache transfers:
    locality is hardware-managed but communication is software-managed
    (Section 7 briefly discusses this option).  Software publishes data
    with :meth:`~CacheCoherentHierarchy.flush_range` and observes it with
    :meth:`~CacheCoherentHierarchy.invalidate_range` around
    synchronization points; the model is only meaningful for applications
    whose threads write disjoint cache lines in between.
    """

    def _candidates(self, line: int, requester: int):
        return ()


class StreamingHierarchy(CacheCoherentHierarchy):
    """The streaming model: 8 KB cache + 24 KB local store + DMA per core.

    The small cache serves stack data and globals (Section 3.3) and reuses
    the coherent-cache machinery; the local stores and DMA engines carry
    the streamed data.  Hardware prefetching is a cache-model enhancement
    and is never enabled here.
    """

    def __init__(self, config: MachineConfig) -> None:
        if config.prefetch.enabled:
            config = config.with_(
                prefetch=type(config.prefetch)(enabled=False)
            )
        super().__init__(config, l1_config=config.stream_l1)
        self.local_stores = [
            LocalStore(config.stream.local_store_bytes)
            for _ in range(config.num_cores)
        ]
        self.dma_engines = [
            DmaEngine(i, self.cluster_of[i], self.uncore,
                      config.stream, config.line_bytes)
            for i in range(config.num_cores)
        ]

    def drain(self, now_fs: int) -> int:
        """Settle caches *and* any DMA commands still in flight.

        A thread that exits without a final ``dma_wait`` leaves its
        engine's last command completing after the cores go idle; the
        traffic was already counted, so the settle point must cover it.
        """
        t = super().drain(now_fs)
        for engine in self.dma_engines:
            t = max(t, engine.drain_time(now_fs))
        return t

    @property
    def dma_bytes(self) -> int:
        """Bytes moved by every DMA engine."""
        return sum(e.bytes_read + e.bytes_written for e in self.dma_engines)

    @property
    def dma_commands(self) -> int:
        """Commands issued by every DMA engine."""
        return sum(e.commands for e in self.dma_engines)
