"""Memory-system substrates.

This package implements every storage structure of the paper's CMP
(Figure 1 / Table 2):

* :mod:`repro.mem.coherence` — MESI line states and transition rules,
* :mod:`repro.mem.cache` — the set-associative cache used for L1s, the
  streaming model's 8 KB cache, and the shared L2,
* :mod:`repro.mem.prefetcher` — the tagged hardware stream prefetcher,
* :mod:`repro.mem.store_buffer` — the per-core store buffer that lets
  loads bypass store misses (weak consistency, Section 3.2),
* :mod:`repro.mem.dram` — the off-chip memory channel,
* :mod:`repro.mem.local_store` — the streaming model's local store,
* :mod:`repro.mem.dma` — the per-core DMA engine,
* :mod:`repro.mem.hierarchy` — the full cache-coherent and streaming
  memory hierarchies that cores issue accesses against.
"""

from repro.mem.cache import CacheLine, SetAssocCache
from repro.mem.coherence import MesiState
from repro.mem.dma import DmaEngine
from repro.mem.dram import DramChannel
from repro.mem.hierarchy import (CacheCoherentHierarchy,
                                 IncoherentCacheHierarchy,
                                 StreamingHierarchy, Uncore)
from repro.mem.local_store import LocalStore
from repro.mem.prefetcher import StreamPrefetcher
from repro.mem.store_buffer import StoreBuffer

__all__ = [
    "CacheLine",
    "SetAssocCache",
    "MesiState",
    "DmaEngine",
    "DramChannel",
    "CacheCoherentHierarchy",
    "IncoherentCacheHierarchy",
    "StreamingHierarchy",
    "Uncore",
    "LocalStore",
    "StreamPrefetcher",
    "StoreBuffer",
]
