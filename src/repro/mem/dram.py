"""Off-chip DRAM channel.

The paper's CMP talks to memory through one channel at 1.6 / 3.2 / 6.4 /
12.8 GB/s with a 70 ns random-access latency (Table 2), and derives DRAM
energy from DRAMsim [42].  We model the channel as a throughput resource
(occupancy proportional to bytes moved) plus access latency, and keep
separate read/write byte counters — the quantities behind Figure 3
(off-chip traffic) and the DRAM term of the energy model (Figure 4).

``DramConfig.channels`` selects the number of independent channels
("the secondary storage communicates to off-chip memory through some
number of memory channels", Section 3.1); addresses are interleaved
across channels at ``interleave_bytes`` granularity and each channel has
the configured bandwidth.

Two latency models are available:

* the Table 2 default — a flat 70 ns random-access latency
  (``DramConfig(banks=1)``), used for every paper experiment, and
* an optional DRAMsim-flavoured banked model with open-row buffers
  (``banks > 1`` and ``row_hit_latency_ns`` set): accesses that hit a
  bank's open row pay the short latency, row conflicts pay the full one.
  The ablation benchmarks use it to show how sequential streams benefit
  from row locality while pointer-chasing does not.
"""

from __future__ import annotations

from repro.config import DramConfig
from repro.sim.resources import ThroughputResource
from repro.units import ns_to_fs


class DramChannel:
    """One memory channel with bandwidth occupancy and access latency."""

    def __init__(self, config: DramConfig) -> None:
        self.config = config
        # Occupancy (bandwidth) per channel; access latency is added per
        # request below, so banked row behaviour can vary it without
        # touching the occupancy calendars.
        self._channels = [
            ThroughputResource(f"dram.{c}", fs_per_byte=config.fs_per_byte,
                               latency_fs=0)
            for c in range(config.channels)
        ]
        self.channel = self._channels[0]   # back-compat: the first channel
        self._interleave = config.interleave_bytes
        self._latency_fs = config.latency_fs
        self._banked = config.banks > 1 and config.row_hit_latency_ns is not None
        # Single-channel flat-latency config (every paper experiment):
        # read/write skip the channel/latency dispatch helpers entirely.
        self._simple = config.channels == 1 and not self._banked
        if self._banked:
            self._row_hit_fs = ns_to_fs(config.row_hit_latency_ns)
            self._row_bytes = config.row_bytes
            self._banks = config.banks
            # Each channel has its own banks.
            self._open_rows: list[list[int | None]] = [
                [None] * config.banks for _ in range(config.channels)
            ]
        self.read_bytes = 0
        self.write_bytes = 0
        self.read_accesses = 0
        self.write_accesses = 0
        self.row_hits = 0
        self.row_misses = 0

    def _channel_for(self, addr: int | None) -> ThroughputResource:
        if addr is None or len(self._channels) == 1:
            return self._channels[0]
        return self._channels[(addr // self._interleave) % len(self._channels)]

    def _latency_for(self, addr: int | None) -> int:
        """Access latency, consulting the open-row buffers when banked."""
        if not self._banked or addr is None:
            return self._latency_fs
        channel = (addr // self._interleave) % len(self._channels)
        row = addr // self._row_bytes
        bank = row % self._banks
        open_rows = self._open_rows[channel]
        if open_rows[bank] == row:
            self.row_hits += 1
            return self._row_hit_fs
        self.row_misses += 1
        open_rows[bank] = row
        return self._latency_fs

    def read(self, now_fs: int, num_bytes: int, addr: int | None = None) -> int:
        """Fetch ``num_bytes``; returns the completion time (data available)."""
        self.read_bytes += num_bytes
        self.read_accesses += 1
        if self._simple:
            channel = self.channel
            channel.bytes_moved += num_bytes
            return channel.serve(now_fs, num_bytes * channel.fs_per_byte) \
                + self._latency_fs
        _, done = self._channel_for(addr).transfer(now_fs, num_bytes)
        return done + self._latency_for(addr)

    def write(self, now_fs: int, num_bytes: int, addr: int | None = None) -> int:
        """Write ``num_bytes``; returns the time the channel is done with it.

        Writes are posted: callers normally do not put this latency on any
        core's critical path, but the occupancy still contends with reads.
        """
        self.write_bytes += num_bytes
        self.write_accesses += 1
        if self._simple:
            channel = self.channel
            channel.bytes_moved += num_bytes
            return channel.serve(now_fs, num_bytes * channel.fs_per_byte) \
                + self._latency_fs
        _, done = self._channel_for(addr).transfer(now_fs, num_bytes)
        return done + self._latency_for(addr)

    @property
    def total_bytes(self) -> int:
        """Read plus write bytes at the DRAM pins."""
        return self.read_bytes + self.write_bytes

    @property
    def total_accesses(self) -> int:
        """Read plus write access count."""
        return self.read_accesses + self.write_accesses

    def utilization(self, total_fs: int) -> float:
        """Mean utilization across channels."""
        utils = [ch.utilization(total_fs) for ch in self._channels]
        return sum(utils) / len(utils)

    def busy_until(self, addr: int | None = None) -> int:
        """Absolute time the channel serving ``addr`` drains its calendar.

        A request arriving at or after this instant is served with zero
        queueing delay — the boundary the stream engine's renewal
        calculus reasons from when it retires double-buffer iterations
        without replaying each transfer.  With ``addr=None`` (or one
        channel) this is the first channel's tail.
        """
        return self._channel_for(addr).next_free

    def backlog_fs(self, now_fs: int, addr: int | None = None) -> int:
        """Queued occupancy ahead of a request arriving now, in fs.

        Zero means the channel is in steady state (a new transfer pays
        only its own occupancy plus access latency); a positive value
        is exactly the extra wait the next transfer to this channel
        would observe.  Tests use it to pin down *why* a contended
        ``dwait`` spilled instead of retiring in closed form.
        """
        return max(0, self._channel_for(addr).next_free - now_fs)

    def channels(self):
        """The per-channel throughput resources, in interleave order.

        Exposed for the observability layer (per-channel bandwidth and
        queueing metrics); mutating the returned resources is not part
        of the contract.
        """
        return tuple(self._channels)
