"""MESI coherence states and legal-transition checking.

The cache-coherent model of the paper keeps L1 caches coherent with the
MESI write-invalidate protocol; requests are broadcast first within a
cluster and then to all clusters (Section 3.2).  The state machine here is
shared by the hierarchy walker and by the protocol tests, which verify the
global single-writer / multiple-reader invariant on random access
interleavings.
"""

from __future__ import annotations

import enum


class MesiState(enum.IntEnum):
    """The four MESI states.  ``INVALID`` lines are simply absent from a cache."""

    MODIFIED = 3
    EXCLUSIVE = 2
    SHARED = 1
    INVALID = 0

    @property
    def is_dirty(self) -> bool:
        """True for MODIFIED (holds the only up-to-date copy)."""
        return self is MesiState.MODIFIED

    @property
    def can_read(self) -> bool:
        """Any valid state permits reads."""
        return self is not MesiState.INVALID

    @property
    def can_write(self) -> bool:
        """Only M and E permit a silent write (E upgrades to M without traffic)."""
        return self in (MesiState.MODIFIED, MesiState.EXCLUSIVE)


def check_global_invariant(states: list[MesiState]) -> None:
    """Assert the MESI single-writer invariant over all caches' states for one line.

    * at most one cache may hold the line M or E;
    * if any cache holds M or E, every other cache must hold I.

    Raises ``AssertionError`` with a descriptive message on violation.
    Used by tests and (optionally) by the hierarchy's debug mode.
    """
    owners = [s for s in states if s in (MesiState.MODIFIED, MesiState.EXCLUSIVE)]
    sharers = [s for s in states if s is MesiState.SHARED]
    if len(owners) > 1:
        raise AssertionError(f"multiple M/E holders: {states}")
    if owners and sharers:
        raise AssertionError(f"M/E holder coexists with S copies: {states}")
