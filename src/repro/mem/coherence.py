"""MESI coherence states, the protocol transition table, and invariants.

The cache-coherent model of the paper keeps L1 caches coherent with the
MESI write-invalidate protocol; requests are broadcast first within a
cluster and then to all clusters (Section 3.2).  The state machine here is
shared by three consumers:

* the hierarchy walker (:mod:`repro.mem.hierarchy`), which implements the
  timed version of the protocol,
* the protocol tests, which verify the global single-writer /
  multiple-reader invariant on random access interleavings, and
* the exhaustive model checker (:mod:`repro.analysis.model_check`), which
  explores every reachable protocol state for N caches and one line.

The declarative tables :data:`REQUESTER_TRANSITIONS` and
:data:`SNOOP_TRANSITIONS` are the protocol's specification;
``tests/test_analysis_model_check.py`` cross-validates them against the
behaviour of the real :class:`~repro.mem.hierarchy.CacheCoherentHierarchy`
so the spec cannot silently drift from the implementation.
"""

from __future__ import annotations

import enum

from repro.sim.kernel import InvariantViolation


class MesiState(enum.IntEnum):
    """The four MESI states.  ``INVALID`` lines are simply absent from a cache."""

    MODIFIED = 3
    EXCLUSIVE = 2
    SHARED = 1
    INVALID = 0

    @property
    def is_dirty(self) -> bool:
        """True for MODIFIED (holds the only up-to-date copy)."""
        return self is MesiState.MODIFIED

    @property
    def can_read(self) -> bool:
        """Any valid state permits reads."""
        return self is not MesiState.INVALID

    @property
    def can_write(self) -> bool:
        """Only M and E permit a silent write (E upgrades to M without traffic)."""
        return self in (MesiState.MODIFIED, MesiState.EXCLUSIVE)


class MesiEvent(enum.Enum):
    """The demand events the protocol reacts to, per core and line."""

    LOAD = "load"    # the core reads the line
    STORE = "store"  # the core writes the line (write-allocate)
    EVICT = "evict"  # the core's cache drops the line (capacity/replacement)


#: Next state of the *requesting* cache, keyed by (current state, event,
#: another-valid-copy-exists).  The third key component captures the one
#: place MESI is context-sensitive: a load miss fills EXCLUSIVE when no
#: other cache holds the line and SHARED otherwise.
REQUESTER_TRANSITIONS: dict[tuple[MesiState, MesiEvent, bool], MesiState] = {}
for _others in (False, True):
    # Loads: hits keep their state; a miss fills E (alone) or S (shared).
    REQUESTER_TRANSITIONS[(MesiState.INVALID, MesiEvent.LOAD, _others)] = (
        MesiState.SHARED if _others else MesiState.EXCLUSIVE)
    for _s in (MesiState.SHARED, MesiState.EXCLUSIVE, MesiState.MODIFIED):
        REQUESTER_TRANSITIONS[(_s, MesiEvent.LOAD, _others)] = _s
    # Stores always end MODIFIED (S upgrades, E silently converts).
    for _s in MesiState:
        REQUESTER_TRANSITIONS[(_s, MesiEvent.STORE, _others)] = MesiState.MODIFIED
    # Evictions always end INVALID (M writes back first).
    for _s in MesiState:
        REQUESTER_TRANSITIONS[(_s, MesiEvent.EVICT, _others)] = MesiState.INVALID
del _others, _s

#: Next state of every *other* cache when it observes a peer's event.
#: Observing a peer's LOAD downgrades owners to SHARED (M supplies the
#: dirty data and writes it back); observing a peer's STORE invalidates.
#: Evictions are purely local and do not disturb peers.
SNOOP_TRANSITIONS: dict[tuple[MesiState, MesiEvent], MesiState] = {}
for _s in MesiState:
    SNOOP_TRANSITIONS[(_s, MesiEvent.LOAD)] = (
        MesiState.INVALID if _s is MesiState.INVALID else MesiState.SHARED)
    SNOOP_TRANSITIONS[(_s, MesiEvent.STORE)] = MesiState.INVALID
    SNOOP_TRANSITIONS[(_s, MesiEvent.EVICT)] = _s
del _s


def apply_event(states: tuple[MesiState, ...], core: int, event: MesiEvent,
                requester_transitions: dict | None = None,
                snoop_transitions: dict | None = None) -> tuple[MesiState, ...]:
    """Apply one demand event to the per-cache states of a single line.

    Pure function over the declarative tables; the model checker passes
    deliberately mutated tables to prove it can detect protocol bugs.
    """
    req = REQUESTER_TRANSITIONS if requester_transitions is None \
        else requester_transitions
    snp = SNOOP_TRANSITIONS if snoop_transitions is None else snoop_transitions
    others_valid = any(
        s is not MesiState.INVALID for i, s in enumerate(states) if i != core)
    out = [snp[(s, event)] for s in states]
    out[core] = req[(states[core], event, others_valid)]
    return tuple(out)


def check_global_invariant(states: list[MesiState] | tuple[MesiState, ...],
                           *, now_fs: int | None = None,
                           line: int | None = None) -> None:
    """Check the MESI single-writer invariant over all caches' states for one line.

    * at most one cache may hold the line M or E;
    * if any cache holds M or E, every other cache must hold I.

    Raises :class:`~repro.sim.kernel.InvariantViolation` (a
    :class:`~repro.sim.kernel.SimulationError` that, as a deprecation
    shim, still subclasses ``AssertionError``) with a descriptive,
    cycle-stamped message on violation.  Unlike a bare ``assert``, the
    check survives ``python -O``.  Used by tests, the runtime invariant
    monitors, and the hierarchy's debug mode.
    """
    context: dict = {"states": [s.name for s in states]}
    if line is not None:
        context["line"] = line
    owners = [s for s in states if s in (MesiState.MODIFIED, MesiState.EXCLUSIVE)]
    sharers = [s for s in states if s is MesiState.SHARED]
    if len(owners) > 1:
        raise InvariantViolation("multiple M/E holders",
                                 now_fs=now_fs, context=context)
    if owners and sharers:
        raise InvariantViolation("M/E holder coexists with S copies",
                                 now_fs=now_fs, context=context)
