"""Per-core DMA engine for the streaming model (Section 3.3).

Each core has a DMA engine that supports sequential, strided, and indexed
transfers, command queuing, and up to 16 outstanding 32-byte accesses.
Transfers move data between the core's local store and the L2 / off-chip
memory over the same interconnect the coherent model uses.

Timing model: the engine serializes its own commands; within a command,
granules pipeline through the interconnect and memory channel subject to
the outstanding-access window (granule *i* cannot start before granule
*i - 16* completed), which is how DMA hides memory latency (macroscopic
prefetching) without needing infinite buffering.

Bandwidth model: line-sized, line-aligned granules travel through the L2
(which avoids refills on writes that overwrite entire lines — Section
3.3); sub-line granules (strided scatter/gather) bypass the L2 and move
only the bytes requested, the "minimum memory channel bandwidth" property
of Section 2.3.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.config import StreamConfig


class DmaEngine:
    """One core's DMA engine."""

    def __init__(self, core_id: int, cluster_id: int, uncore,
                 config: StreamConfig, line_bytes: int) -> None:
        self.core_id = core_id
        self.cluster_id = cluster_id
        self.uncore = uncore
        self.config = config
        self.line_bytes = line_bytes
        self._line_shift = line_bytes.bit_length() - 1
        self._engine_free = 0
        self._window: deque[int] = deque(maxlen=config.dma_max_outstanding)
        self.commands = 0
        self.bytes_read = 0
        self.bytes_written = 0
        #: Optional invariant observer (repro.analysis.monitors), called
        #: as ``observer(kind, engine, addr, nbytes, stride, block,
        #: now_fs)`` with kind "get"/"put" before each command executes.
        self.observer = None
        #: Optional command tracer (repro.obs), called as
        #: ``trace_hook(kind, core, issue_fs, start_fs, done_fs, addr,
        #: nbytes)`` *after* each command's timing is resolved.  Purely
        #: observational, and — unlike the hierarchy's per-access
        #: ``trace_hook`` — fastpath-compatible: DMA commands always
        #: execute through the engine, never through the processor's
        #: inline-hit path, so attaching this changes nothing.
        self.trace_hook = None

    def _blocks(self, addr: int, nbytes: int, stride: int,
                block: int | None) -> Iterable[tuple[int, int]]:
        """Yield (address, size) pairs for one command's blocks."""
        if nbytes <= 0:
            raise ValueError(f"DMA transfer size must be positive, got {nbytes}")
        if stride == 0:
            yield addr, nbytes
            return
        if block is None or block <= 0:
            raise ValueError("strided DMA requires a positive block size")
        if abs(stride) < block:
            raise ValueError(f"stride {stride} smaller than block {block}")
        offset = 0
        position = addr
        while offset < nbytes:
            size = min(block, nbytes - offset)
            yield position, size
            position += stride
            offset += size

    def _throttle(self, start_fs: int) -> int:
        """Apply the outstanding-access window to a granule start time."""
        window = self._window
        if len(window) == window.maxlen:
            start_fs = max(start_fs, window[0])
        return start_fs

    def get(self, now_fs: int, addr: int, nbytes: int,
            stride: int = 0, block: int | None = None) -> int:
        """Fetch from memory into the local store; returns completion time."""
        if self.observer is not None:
            self.observer("get", self, addr, nbytes, stride, block, now_fs)
        self.commands += 1
        self.bytes_read += nbytes
        start = max(now_fs, self._engine_free)
        done = start
        uncore = self.uncore
        cl = self.cluster_id
        # Hot-loop locals: every granule crosses three resources, so the
        # attribute chains are hoisted once per command.
        line_bytes = self.line_bytes
        window = self._window
        win_size = window.maxlen
        append = window.append
        xbar_control = uncore.xbar.up[cl].control
        xbar_down = uncore.xbar.down[cl].transfer
        bus_resp = uncore.buses[cl].resp.transfer
        l2_read = uncore.l2_read
        if stride == 0 and nbytes > 0 and not (addr & (line_bytes - 1)) \
                and not (nbytes & (line_bytes - 1)):
            # Contiguous line-aligned command: uniform line granules.
            line0 = addr >> self._line_shift
            for line in range(line0, line0 + (nbytes >> self._line_shift)):
                t = start if len(window) < win_size else max(start, window[0])
                t = xbar_control(t)
                t, _ = l2_read(line, t)
                t = xbar_down(t, line_bytes)
                t = bus_resp(t, line_bytes)
                append(t)
                if t > done:
                    done = t
        else:
            shift = self._line_shift
            l2_read_partial = uncore.l2_read_partial
            for block_addr, block_size in self._blocks(addr, nbytes, stride,
                                                       block):
                for gran_addr, gran_size in self._granules(block_addr,
                                                           block_size):
                    t = start if len(window) < win_size \
                        else max(start, window[0])
                    line = gran_addr >> shift
                    t = xbar_control(t)
                    if gran_size == line_bytes and gran_addr % line_bytes == 0:
                        t, _ = l2_read(line, t)
                    else:
                        # Scatter/gather: the L2 still serves reuse; a miss
                        # moves only the bytes needed from DRAM.
                        t = l2_read_partial(line, gran_size, t)
                    t = xbar_down(t, gran_size)
                    t = bus_resp(t, gran_size)
                    append(t)
                    if t > done:
                        done = t
        self._engine_free = done
        if self.trace_hook is not None:
            self.trace_hook("get", self.core_id, now_fs, start, done,
                            addr, nbytes)
        return done

    def put(self, now_fs: int, addr: int, nbytes: int,
            stride: int = 0, block: int | None = None) -> int:
        """Write from the local store to memory; returns completion time.

        Writes are posted: the returned time is when the engine has pushed
        the last granule into the memory system (the data's journey to DRAM
        continues via L2 write-back, exactly as the paper's Section 3.3
        describes — "the L2 cache avoids refills on write misses when DMA
        transfers overwrite entire lines").
        """
        if self.observer is not None:
            self.observer("put", self, addr, nbytes, stride, block, now_fs)
        self.commands += 1
        self.bytes_written += nbytes
        start = max(now_fs, self._engine_free)
        done = start
        uncore = self.uncore
        cl = self.cluster_id
        line_bytes = self.line_bytes
        window = self._window
        win_size = window.maxlen
        append = window.append
        bus_req = uncore.buses[cl].req.transfer
        xbar_up = uncore.xbar.up[cl].transfer
        l2_write = uncore.l2_write
        if stride == 0 and nbytes > 0 and not (addr & (line_bytes - 1)) \
                and not (nbytes & (line_bytes - 1)):
            line0 = addr >> self._line_shift
            for line in range(line0, line0 + (nbytes >> self._line_shift)):
                t = start if len(window) < win_size else max(start, window[0])
                t = bus_req(t, line_bytes)
                t = xbar_up(t, line_bytes)
                t = l2_write(line, t, refill=False)
                append(t)
                if t > done:
                    done = t
        else:
            shift = self._line_shift
            l2_write_partial = uncore.l2_write_partial
            for block_addr, block_size in self._blocks(addr, nbytes, stride,
                                                       block):
                for gran_addr, gran_size in self._granules(block_addr,
                                                           block_size):
                    t = start if len(window) < win_size \
                        else max(start, window[0])
                    t = bus_req(t, gran_size)
                    t = xbar_up(t, gran_size)
                    line = gran_addr >> shift
                    if gran_size == line_bytes and gran_addr % line_bytes == 0:
                        t = l2_write(line, t, refill=False)
                    else:
                        t = l2_write_partial(line, gran_size, t)
                    append(t)
                    if t > done:
                        done = t
        self._engine_free = done
        if self.trace_hook is not None:
            self.trace_hook("put", self.core_id, now_fs, start, done,
                            addr, nbytes)
        return done

    def drain_time(self, now_fs: int) -> int:
        """Time the engine goes quiet (for end-of-run settling).

        A program may terminate with commands still in flight (it never
        issued a ``dma_wait``); the bytes those commands move are counted
        at the DRAM pins, so the settle point must cover their completion
        or short runs can report an average bandwidth above the channel's
        capacity.
        """
        return max(now_fs, self._engine_free)

    def _granules(self, addr: int, nbytes: int) -> Iterable[tuple[int, int]]:
        """Split a block into line-aligned granules of at most one line."""
        line = self.line_bytes
        position = addr
        remaining = nbytes
        while remaining > 0:
            boundary = (position // line + 1) * line
            size = min(remaining, boundary - position)
            yield position, size
            position += size
            remaining -= size
