"""Per-core DMA engine for the streaming model (Section 3.3).

Each core has a DMA engine that supports sequential, strided, and indexed
transfers, command queuing, and up to 16 outstanding 32-byte accesses.
Transfers move data between the core's local store and the L2 / off-chip
memory over the same interconnect the coherent model uses.

Timing model: the engine serializes its own commands; within a command,
granules pipeline through the interconnect and memory channel subject to
the outstanding-access window (granule *i* cannot start before granule
*i - 16* completed), which is how DMA hides memory latency (macroscopic
prefetching) without needing infinite buffering.

Bandwidth model: line-sized, line-aligned granules travel through the L2
(which avoids refills on writes that overwrite entire lines — Section
3.3); sub-line granules (strided scatter/gather) bypass the L2 and move
only the bytes requested, the "minimum memory channel bandwidth" property
of Section 2.3.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.config import StreamConfig
from repro.mem.coherence import MesiState
from repro.sim.fastpath import streams_enabled
from repro.sim.resources import _MAX_INTERVALS, _TRIM_AT


def _plan_stage(res, segs, service):
    """Plan serving arithmetic arrival trains on one occupancy resource.

    ``segs`` is a list of ``(t0, d, k)`` arrival segments — ``k`` arrivals
    at ``t0, t0 + d, ...`` — monotone across the list.  A constant-spacing
    train through a constant-service resource is a D/D/1 renewal: each
    segment splits into at most a *queued* run (arrivals inside the busy
    tail, completions spaced ``service``) and a *paced* run (arrivals past
    the tail, completions spaced ``d``), with the crossover index in
    closed form.  Returns ``(out_segs, wait_fs, ops)`` where ``ops``
    replays the exact calendar mutations the per-granule ``serve`` loop
    would have made (tail extensions, single appends, interval runs), or
    None when an arrival lands before the tail interval's start — the
    backfill case, which must walk the full calendar and is left to the
    ordinary path.  Pure planning: nothing is mutated here, so a bail
    anywhere in a multi-stage chain commits nothing.
    """
    starts = res._starts
    ends = res._ends
    lat = res.latency_fs
    if ends:
        v_start = starts[-1]
        v_end = ends[-1]
    else:
        v_start = v_end = None
    wait = 0
    ops = []
    out = []
    for a0, d, k in segs:
        if v_end is not None and a0 < v_start:
            return None
        m = a0 if (v_end is None or a0 > v_end) else v_end
        if d <= service or m == a0:
            i0 = k if d <= service else 0
        else:
            i0 = -(-(m - a0) // (d - service))
        if i0 >= k:
            # Every arrival queues on (or seeds) the busy tail: one
            # contiguous block, completions spaced by the service time.
            if v_end is None or a0 > v_end:
                ops.append(("a", a0, a0 + k * service))
                v_start = a0
            else:
                ops.append(("e", v_end + k * service))
            v_end = m + k * service
            wait += k * (m - a0) + (service - d) * (k * (k - 1) // 2)
            out.append((m + service + lat, service, k))
        else:
            # Queued transient (i < i0), then paced: each arrival finds
            # the resource idle and opens its own interval, spaced d.
            if i0:
                ops.append(("e", v_end + i0 * service))
                v_end += i0 * service
                wait += (i0 * (m - a0)
                         + (service - d) * (i0 * (i0 - 1) // 2))
                out.append((m + service + lat, service, i0))
            kp = k - i0
            p0 = a0 + i0 * d
            if v_end is not None and p0 == v_end:
                ops.append(("e", p0 + service))
                if kp > 1:
                    ops.append(("r", p0 + d, d, kp - 1))
                    v_start = p0 + (kp - 1) * d
            else:
                ops.append(("r", p0, d, kp))
                v_start = p0 + (kp - 1) * d
            v_end = p0 + (kp - 1) * d + service
            out.append((p0 + service + lat, d, kp))
    return out, wait, ops


def _plan_chain(chain, start, h):
    """Plan one all-hit command through a whole resource chain.

    ``chain`` is the command's stage list ``((resource, service_fs),
    ...)``; the command arrives as one zero-spacing train of ``h``
    granules at ``start``.  Returns a *relative* replay recipe
    ``(stages, window_segs, done_rel)`` — every time in it is an offset
    from ``start`` — or None when any stage hits the backfill path.

    The recipe is the unit of the steady-state cache: :func:`_plan_stage`
    is shift-invariant (its arithmetic uses only differences and
    comparisons of times), so two commands whose chain tails sit at the
    same offsets from their respective starts produce the same recipe.
    In the double-buffer steady state every iteration's commands repeat
    one of a handful of relative configurations, and the whole O(stages)
    planning pass collapses into one dict hit.
    """
    segs = ((start, 0, h),)
    stages = []
    for res, service in chain:
        plan = _plan_stage(res, segs, service)
        if plan is None:
            return None
        segs, wait, ops = plan
        rel = []
        for op in ops:
            tag = op[0]
            if tag == "e":
                rel.append(("e", op[1] - start))
            elif tag == "a":
                rel.append(("a", op[1] - start, op[2] - start))
            else:
                rel.append(("r", op[1] - start, op[2], op[3]))
        stages.append((tuple(rel), wait))
    win = tuple((t0 - start, d, k) for t0, d, k in segs)
    t0, d, k = win[-1]
    return tuple(stages), win, t0 + (k - 1) * d


def _apply_chain(chain, stages, start, h):
    """Commit a :func:`_plan_chain` recipe at absolute time ``start``.

    Replays, per stage, exactly the calendar mutations the per-granule
    ``serve`` loop would have made (tail extensions, single appends,
    interval runs), the per-append chunked trim — each time the calendar
    reaches ``_TRIM_AT`` entries the oldest ``_MAX_INTERVALS`` drop in
    one slice, leaving the identical retained suffix — and the busy /
    wait / request counters in aggregate.
    """
    for (res, service), (ops, wait) in zip(chain, stages):
        starts = res._starts
        ends = res._ends
        for op in ops:
            tag = op[0]
            if tag == "e":
                ends[-1] = start + op[1]
            elif tag == "a":
                starts.append(start + op[1])
                ends.append(start + op[2])
            else:
                _, p0, d, k = op
                p0 += start
                starts.extend(range(p0, p0 + k * d, d))
                ends.extend(range(p0 + service, p0 + k * d + service, d))
        m = len(starts)
        if m >= _TRIM_AT:
            while m >= _TRIM_AT:
                m -= _MAX_INTERVALS
            del starts[:len(starts) - m]
            del ends[:len(ends) - m]
        res.busy_fs += h * service
        res.requests += h
        res.wait_fs += wait


class DmaEngine:
    """One core's DMA engine."""

    def __init__(self, core_id: int, cluster_id: int, uncore,
                 config: StreamConfig, line_bytes: int) -> None:
        self.core_id = core_id
        self.cluster_id = cluster_id
        self.uncore = uncore
        self.config = config
        self.line_bytes = line_bytes
        self._line_shift = line_bytes.bit_length() - 1
        self._engine_free = 0
        self._window: deque[int] = deque(maxlen=config.dma_max_outstanding)
        self.commands = 0
        self.bytes_read = 0
        self.bytes_written = 0
        #: Stream-engine switch (REPRO_STREAMS), read at construction like
        #: the processor's fast-path flags: when on, contiguous
        #: line-aligned commands whose lines are all L2-resident are
        #: served by a fused renewal loop (:meth:`_fast_get` /
        #: :meth:`_fast_put`) instead of four resource method calls per
        #: granule.  The fused loop replays the exact calendar, counter,
        #: and LRU transitions of the ordinary path, granule for granule,
        #: and bails to it at the first line that is not a guaranteed hit.
        self._fast = streams_enabled()
        #: Resource chains for all-hit line commands (get: crossbar-up
        #: control, L2 bank, crossbar-down transfer, bus response; put:
        #: bus request, crossbar-up transfer, L2 bank), resolved lazily
        #: with their per-granule service times.
        self._get_chain: tuple | None = None
        self._put_chain: tuple | None = None
        #: Steady-state recipe caches: relative chain signature ->
        #: :func:`_plan_chain` recipe.  The double-buffer steady state
        #: revisits a handful of signatures, so nearly every command
        #: after warmup is a dict hit; the caches are cleared (not
        #: LRU-managed) on the off chance a workload churns signatures.
        self._get_recipes: dict = {}
        self._put_recipes: dict = {}
        #: Optional invariant observer (repro.analysis.monitors), called
        #: as ``observer(kind, engine, addr, nbytes, stride, block,
        #: now_fs)`` with kind "get"/"put" before each command executes.
        self.observer = None
        #: Optional command tracer (repro.obs), called as
        #: ``trace_hook(kind, core, issue_fs, start_fs, done_fs, addr,
        #: nbytes)`` *after* each command's timing is resolved.  Purely
        #: observational, and — unlike the hierarchy's per-access
        #: ``trace_hook`` — fastpath-compatible: DMA commands always
        #: execute through the engine, never through the processor's
        #: inline-hit path, so attaching this changes nothing.
        self.trace_hook = None

    def _blocks(self, addr: int, nbytes: int, stride: int,
                block: int | None) -> Iterable[tuple[int, int]]:
        """Yield (address, size) pairs for one command's blocks."""
        if nbytes <= 0:
            raise ValueError(f"DMA transfer size must be positive, got {nbytes}")
        if stride == 0:
            yield addr, nbytes
            return
        if block is None or block <= 0:
            raise ValueError("strided DMA requires a positive block size")
        if abs(stride) < block:
            raise ValueError(f"stride {stride} smaller than block {block}")
        offset = 0
        position = addr
        while offset < nbytes:
            size = min(block, nbytes - offset)
            yield position, size
            position += stride
            offset += size

    def _throttle(self, start_fs: int) -> int:
        """Apply the outstanding-access window to a granule start time."""
        window = self._window
        if len(window) == window.maxlen:
            start_fs = max(start_fs, window[0])
        return start_fs

    # ------------------------------------------------------------------
    # Fused all-L2-hit command path (REPRO_STREAMS)
    # ------------------------------------------------------------------
    #
    # The granule loops in get/put spend nearly all their time in four
    # resource method calls per granule (window throttle -> crossbar ->
    # L2 bank -> return links).  In the double-buffer steady state every
    # granule is an L2 hit, and DMA commands execute atomically inside
    # one processor event — no other actor can interleave mid-command —
    # so the whole chain is a pure renewal recurrence over the resource
    # calendar tails.  The two methods below run that recurrence in one
    # fused loop: per granule, one L2 probe + MRU touch and a handful of
    # integer compares, with the counters folded in aggregate afterward.
    # Each inline branch is a literal transcription of the corresponding
    # branch of OccupancyResource.serve / _Link.transfer / _Link.control,
    # so calendars, busy/wait accounting, and LRU state come out
    # bit-identical; anything off the beaten path (a non-resident line, a
    # backfill arrival, a second L2 bank) bails to the ordinary methods
    # for the rest of the command.

    def _chains(self) -> tuple:
        """Resolve (and cache) the get/put stage chains for this engine."""
        u = self.uncore
        cl = self.cluster_id
        lb = self.line_bytes
        xc = u.xbar.up[cl]
        bk = u.l2_banks[0]
        xd = u.xbar.down[cl]
        br = u.buses[cl].resp
        bq = u.buses[cl].req
        self._get_chain = (
            (xc, xc.cycle_fs),
            (bk, u._l2_service_fs),
            (xd, (-(-lb // xd.width_bytes) or 1) * xd.cycle_fs),
            (br, (-(-lb // br.width_bytes) or 1) * br.cycle_fs),
        )
        self._put_chain = (
            (bq, (-(-lb // bq.width_bytes) or 1) * bq.cycle_fs),
            (xc, (-(-lb // xc.width_bytes) or 1) * xc.cycle_fs),
            (bk, u._l2_service_fs),
        )
        return self._get_chain, self._put_chain

    @staticmethod
    def _chain_recipe(chain, recipes, start, h):
        """Look up (or plan and cache) the recipe for one command.

        The signature is the full planner input relative to ``start``:
        the granule count plus every chain resource's tail interval
        offsets (None for an empty calendar).  Matching signatures give
        byte-identical plans because :func:`_plan_stage` is
        shift-invariant, so a hit skips straight to the commit.
        """
        sig = [h]
        push = sig.append
        for res, _service in chain:
            ends = res._ends
            if ends:
                push(res._starts[-1] - start)
                push(ends[-1] - start)
            else:
                push(None)
                push(None)
        sig = tuple(sig)
        rec = recipes.get(sig)
        if rec is None:
            rec = _plan_chain(chain, start, h)
            if rec is None:
                return None
            if len(recipes) >= 512:
                recipes.clear()
            recipes[sig] = rec
        return rec

    def _renewal_get(self, start: int, line0: int,
                     nlines: int) -> tuple[int, int] | None:
        """Retire a whole all-hit get command in closed form.

        Valid when the command fits inside the outstanding-access window
        (the window holds completions of *previous* commands, all at or
        before ``engine_free <= start``, so the first ``maxlen`` granules
        of any command are provably unthrottled) and the single L2 bank
        applies.  The hit prefix of the command is planned as one
        zero-spacing arrival train through the four-stage resource chain
        via :func:`_plan_chain` — O(stages), not O(granules), and one
        dict hit in steady state — and committed only if every stage
        stays off the backfill path.  Returns ``(granules_served,
        completion_high_water)``, or None to fall back to the
        per-granule fused loop.
        """
        u = self.uncore
        if u._num_banks != 1:
            return None
        window = self._window
        if nlines > window.maxlen:
            return None
        l2 = u.l2
        sets = l2._sets
        smask = l2._set_mask
        # Fused probe + LRU touch: moving a hit line before the plan is
        # committed is safe even if the planner bails — the per-granule
        # fallback serves exactly the same hit prefix and re-applies the
        # same moves in the same ascending order.
        line = line0
        end_line = line0 + nlines
        while line < end_line:
            cs = sets[line & smask]
            if line not in cs:
                break
            cs.move_to_end(line)
            line += 1
        h = line - line0
        if h == 0:
            return 0, start
        chain = self._get_chain
        if chain is None:
            chain = self._chains()[0]
        rec = self._chain_recipe(chain, self._get_recipes, start, h)
        if rec is None:
            return None
        stages, win_segs, done_rel = rec
        _apply_chain(chain, stages, start, h)
        lb = self.line_bytes
        chain[2][0].bytes_moved += h * lb
        chain[3][0].bytes_moved += h * lb
        u.l2_reads += h
        u.l2_read_hits += h
        extend = window.extend
        for t0, d, k in win_segs:
            t0 += start
            extend(range(t0, t0 + k * d, d) if d else (t0,) * k)
        return h, start + done_rel

    def _renewal_put(self, start: int, line0: int,
                     nlines: int) -> tuple[int, int] | None:
        """Closed-form counterpart of :meth:`_renewal_get` for puts."""
        u = self.uncore
        if u._num_banks != 1:
            return None
        window = self._window
        if nlines > window.maxlen:
            return None
        l2 = u.l2
        sets = l2._sets
        smask = l2._set_mask
        # Fused probe + state/LRU apply (see _renewal_get: safe on bail
        # because the fallback re-applies identical transitions).
        modified = MesiState.MODIFIED
        line = line0
        end_line = line0 + nlines
        while line < end_line:
            cs = sets[line & smask]
            entry = cs.get(line)
            if entry is None:
                break
            cs.move_to_end(line)
            entry.state = modified
            line += 1
        h = line - line0
        if h == 0:
            return 0, start
        chain = self._put_chain
        if chain is None:
            chain = self._chains()[1]
        rec = self._chain_recipe(chain, self._put_recipes, start, h)
        if rec is None:
            return None
        stages, win_segs, done_rel = rec
        _apply_chain(chain, stages, start, h)
        lb = self.line_bytes
        chain[0][0].bytes_moved += h * lb
        chain[1][0].bytes_moved += h * lb
        u.l2_writes += h
        u.l2_write_hits += h
        extend = window.extend
        for t0, d, k in win_segs:
            t0 += start
            extend(range(t0, t0 + k * d, d) if d else (t0,) * k)
        return h, start + done_rel

    def _fast_get(self, start: int, line0: int, nlines: int) -> tuple[int, int]:
        """Serve leading all-hit granules of a contiguous line-aligned get.

        Returns ``(granules_served, completion_high_water)``; the caller
        finishes the remaining granules (if any) on the ordinary path.
        """
        u = self.uncore
        if u._num_banks != 1:
            return 0, start
        l2 = u.l2
        sets = l2._sets
        smask = l2._set_mask
        bk = u.l2_banks[0]
        cl = self.cluster_id
        xc = u.xbar.up[cl]
        xd = u.xbar.down[cl]
        br = u.buses[cl].resp
        lb = self.line_bytes
        # Per-resource constants and calendar tails, hoisted once.
        xc_s = xc.cycle_fs
        xc_lat = xc.latency_fs
        xc_starts, xc_ends = xc._starts, xc._ends
        bk_s = u._l2_service_fs
        bk_lat = bk.latency_fs
        bk_starts, bk_ends = bk._starts, bk._ends
        xd_s = (-(-lb // xd.width_bytes) or 1) * xd.cycle_fs
        xd_lat = xd.latency_fs
        xd_starts, xd_ends = xd._starts, xd._ends
        br_s = (-(-lb // br.width_bytes) or 1) * br.cycle_fs
        br_lat = br.latency_fs
        br_starts, br_ends = br._starts, br._ends
        xc_n = bk_n = xd_n = br_n = 0
        xc_wait = bk_wait = xd_wait = br_wait = 0
        window = self._window
        win = window.maxlen
        append = window.append
        wlen = len(window)
        done = start
        served = 0
        line = line0
        end_line = line0 + nlines
        while line < end_line:
            cache_set = sets[line & smask]
            if line not in cache_set:
                break
            # Outstanding-access window.
            if wlen < win:
                t = start
                wlen += 1
            else:
                w0 = window[0]
                t = start if start >= w0 else w0
            # Crossbar up port, control message (_Link.control).
            if not xc_ends or t >= xc_ends[-1]:
                xc_n += 1
                e = t + xc_s
                if xc_ends and xc_ends[-1] == t:
                    xc_ends[-1] = e
                else:
                    xc_starts.append(t)
                    xc_ends.append(e)
                    if len(xc_starts) >= _TRIM_AT:
                        del xc_starts[:_MAX_INTERVALS]
                        del xc_ends[:_MAX_INTERVALS]
                t = e + xc_lat
            elif t >= xc_starts[-1]:
                xc_n += 1
                e = xc_ends[-1]
                xc_wait += e - t
                e += xc_s
                xc_ends[-1] = e
                t = e + xc_lat
            else:
                t = xc.acquire(t, xc_s)[1]
            # L2 bank port (OccupancyResource.serve) -- hit, so the
            # access completes at the bank; counters fold below.
            if not bk_ends or t >= bk_ends[-1]:
                bk_n += 1
                e = t + bk_s
                if bk_ends and bk_ends[-1] == t:
                    bk_ends[-1] = e
                else:
                    bk_starts.append(t)
                    bk_ends.append(e)
                    if len(bk_starts) >= _TRIM_AT:
                        del bk_starts[:_MAX_INTERVALS]
                        del bk_ends[:_MAX_INTERVALS]
                t = e + bk_lat
            elif t >= bk_starts[-1]:
                bk_n += 1
                e = bk_ends[-1]
                bk_wait += e - t
                e += bk_s
                bk_ends[-1] = e
                t = e + bk_lat
            else:
                t = bk.acquire(t, bk_s)[1]
            cache_set.move_to_end(line)
            # Crossbar down port, line transfer (_Link.transfer).
            if not xd_ends or t >= xd_ends[-1]:
                xd_n += 1
                e = t + xd_s
                if xd_ends and xd_ends[-1] == t:
                    xd_ends[-1] = e
                else:
                    xd_starts.append(t)
                    xd_ends.append(e)
                    if len(xd_starts) >= _TRIM_AT:
                        del xd_starts[:_MAX_INTERVALS]
                        del xd_ends[:_MAX_INTERVALS]
                t = e + xd_lat
            elif t >= xd_starts[-1]:
                xd_n += 1
                e = xd_ends[-1]
                xd_wait += e - t
                e += xd_s
                xd_ends[-1] = e
                t = e + xd_lat
            else:
                t = xd.acquire(t, xd_s)[1]
            # Cluster bus, response direction (_Link.transfer).
            if not br_ends or t >= br_ends[-1]:
                br_n += 1
                e = t + br_s
                if br_ends and br_ends[-1] == t:
                    br_ends[-1] = e
                else:
                    br_starts.append(t)
                    br_ends.append(e)
                    if len(br_starts) >= _TRIM_AT:
                        del br_starts[:_MAX_INTERVALS]
                        del br_ends[:_MAX_INTERVALS]
                t = e + br_lat
            elif t >= br_starts[-1]:
                br_n += 1
                e = br_ends[-1]
                br_wait += e - t
                e += br_s
                br_ends[-1] = e
                t = e + br_lat
            else:
                t = br.acquire(t, br_s)[1]
            append(t)
            if t > done:
                done = t
            served += 1
            line += 1
        if served:
            if xc_n:
                xc.busy_fs += xc_n * xc_s
                xc.requests += xc_n
                xc.wait_fs += xc_wait
            if bk_n:
                bk.busy_fs += bk_n * bk_s
                bk.requests += bk_n
                bk.wait_fs += bk_wait
            if xd_n:
                xd.busy_fs += xd_n * xd_s
                xd.requests += xd_n
                xd.wait_fs += xd_wait
            if br_n:
                br.busy_fs += br_n * br_s
                br.requests += br_n
                br.wait_fs += br_wait
            xd.bytes_moved += served * lb
            br.bytes_moved += served * lb
            u.l2_reads += served
            u.l2_read_hits += served
        return served, done

    def _fast_put(self, start: int, line0: int, nlines: int) -> tuple[int, int]:
        """Serve leading all-hit granules of a contiguous line-aligned put.

        Mirrors :meth:`_fast_get` for the write chain (request bus ->
        crossbar up -> L2 bank, hit dirtying the line in place).
        """
        u = self.uncore
        if u._num_banks != 1:
            return 0, start
        l2 = u.l2
        sets = l2._sets
        smask = l2._set_mask
        bk = u.l2_banks[0]
        cl = self.cluster_id
        bq = u.buses[cl].req
        xu = u.xbar.up[cl]
        lb = self.line_bytes
        bq_s = (-(-lb // bq.width_bytes) or 1) * bq.cycle_fs
        bq_lat = bq.latency_fs
        bq_starts, bq_ends = bq._starts, bq._ends
        xu_s = (-(-lb // xu.width_bytes) or 1) * xu.cycle_fs
        xu_lat = xu.latency_fs
        xu_starts, xu_ends = xu._starts, xu._ends
        bk_s = u._l2_service_fs
        bk_lat = bk.latency_fs
        bk_starts, bk_ends = bk._starts, bk._ends
        bq_n = xu_n = bk_n = 0
        bq_wait = xu_wait = bk_wait = 0
        modified = MesiState.MODIFIED
        window = self._window
        win = window.maxlen
        append = window.append
        wlen = len(window)
        done = start
        served = 0
        line = line0
        end_line = line0 + nlines
        while line < end_line:
            cache_set = sets[line & smask]
            entry = cache_set.get(line)
            if entry is None:
                break
            if wlen < win:
                t = start
                wlen += 1
            else:
                w0 = window[0]
                t = start if start >= w0 else w0
            # Cluster bus, request direction (_Link.transfer).
            if not bq_ends or t >= bq_ends[-1]:
                bq_n += 1
                e = t + bq_s
                if bq_ends and bq_ends[-1] == t:
                    bq_ends[-1] = e
                else:
                    bq_starts.append(t)
                    bq_ends.append(e)
                    if len(bq_starts) >= _TRIM_AT:
                        del bq_starts[:_MAX_INTERVALS]
                        del bq_ends[:_MAX_INTERVALS]
                t = e + bq_lat
            elif t >= bq_starts[-1]:
                bq_n += 1
                e = bq_ends[-1]
                bq_wait += e - t
                e += bq_s
                bq_ends[-1] = e
                t = e + bq_lat
            else:
                t = bq.acquire(t, bq_s)[1]
            # Crossbar up port, line transfer (_Link.transfer).
            if not xu_ends or t >= xu_ends[-1]:
                xu_n += 1
                e = t + xu_s
                if xu_ends and xu_ends[-1] == t:
                    xu_ends[-1] = e
                else:
                    xu_starts.append(t)
                    xu_ends.append(e)
                    if len(xu_starts) >= _TRIM_AT:
                        del xu_starts[:_MAX_INTERVALS]
                        del xu_ends[:_MAX_INTERVALS]
                t = e + xu_lat
            elif t >= xu_starts[-1]:
                xu_n += 1
                e = xu_ends[-1]
                xu_wait += e - t
                e += xu_s
                xu_ends[-1] = e
                t = e + xu_lat
            else:
                t = xu.acquire(t, xu_s)[1]
            # L2 write hit (Uncore.l2_write with refill=False): MRU touch,
            # bank access, line dirtied in place.
            cache_set.move_to_end(line)
            if not bk_ends or t >= bk_ends[-1]:
                bk_n += 1
                e = t + bk_s
                if bk_ends and bk_ends[-1] == t:
                    bk_ends[-1] = e
                else:
                    bk_starts.append(t)
                    bk_ends.append(e)
                    if len(bk_starts) >= _TRIM_AT:
                        del bk_starts[:_MAX_INTERVALS]
                        del bk_ends[:_MAX_INTERVALS]
                t = e + bk_lat
            elif t >= bk_starts[-1]:
                bk_n += 1
                e = bk_ends[-1]
                bk_wait += e - t
                e += bk_s
                bk_ends[-1] = e
                t = e + bk_lat
            else:
                t = bk.acquire(t, bk_s)[1]
            entry.state = modified
            append(t)
            if t > done:
                done = t
            served += 1
            line += 1
        if served:
            if bq_n:
                bq.busy_fs += bq_n * bq_s
                bq.requests += bq_n
                bq.wait_fs += bq_wait
            if xu_n:
                xu.busy_fs += xu_n * xu_s
                xu.requests += xu_n
                xu.wait_fs += xu_wait
            if bk_n:
                bk.busy_fs += bk_n * bk_s
                bk.requests += bk_n
                bk.wait_fs += bk_wait
            bq.bytes_moved += served * lb
            xu.bytes_moved += served * lb
            u.l2_writes += served
            u.l2_write_hits += served
        return served, done

    def get(self, now_fs: int, addr: int, nbytes: int,
            stride: int = 0, block: int | None = None) -> int:
        """Fetch from memory into the local store; returns completion time."""
        if self.observer is not None:
            self.observer("get", self, addr, nbytes, stride, block, now_fs)
        self.commands += 1
        self.bytes_read += nbytes
        start = max(now_fs, self._engine_free)
        done = start
        uncore = self.uncore
        cl = self.cluster_id
        # Hot-loop locals: every granule crosses three resources, so the
        # attribute chains are hoisted once per command.
        line_bytes = self.line_bytes
        window = self._window
        win_size = window.maxlen
        append = window.append
        xbar_control = uncore.xbar.up[cl].control
        xbar_down = uncore.xbar.down[cl].transfer
        bus_resp = uncore.buses[cl].resp.transfer
        l2_read = uncore.l2_read
        if stride == 0 and nbytes > 0 and not (addr & (line_bytes - 1)) \
                and not (nbytes & (line_bytes - 1)):
            # Contiguous line-aligned command: uniform line granules.
            line0 = addr >> self._line_shift
            nlines = nbytes >> self._line_shift
            first = 0
            # Single-line commands (e.g. a mesh gather rim) skip the
            # closed-form probes: planning one granule costs more than
            # the one pass through the plain loop it would replace.
            if nlines > 1 and self._fast and self.observer is None:
                fast = self._renewal_get(start, line0, nlines)
                if fast is None:
                    fast = self._fast_get(start, line0, nlines)
                first, done = fast
            for line in range(line0 + first, line0 + nlines):
                t = start if len(window) < win_size else max(start, window[0])
                t = xbar_control(t)
                t, _ = l2_read(line, t)
                t = xbar_down(t, line_bytes)
                t = bus_resp(t, line_bytes)
                append(t)
                if t > done:
                    done = t
        else:
            shift = self._line_shift
            l2_read_partial = uncore.l2_read_partial
            for block_addr, block_size in self._blocks(addr, nbytes, stride,
                                                       block):
                for gran_addr, gran_size in self._granules(block_addr,
                                                           block_size):
                    t = start if len(window) < win_size \
                        else max(start, window[0])
                    line = gran_addr >> shift
                    t = xbar_control(t)
                    if gran_size == line_bytes and gran_addr % line_bytes == 0:
                        t, _ = l2_read(line, t)
                    else:
                        # Scatter/gather: the L2 still serves reuse; a miss
                        # moves only the bytes needed from DRAM.
                        t = l2_read_partial(line, gran_size, t)
                    t = xbar_down(t, gran_size)
                    t = bus_resp(t, gran_size)
                    append(t)
                    if t > done:
                        done = t
        self._engine_free = done
        if self.trace_hook is not None:
            self.trace_hook("get", self.core_id, now_fs, start, done,
                            addr, nbytes)
        return done

    def put(self, now_fs: int, addr: int, nbytes: int,
            stride: int = 0, block: int | None = None) -> int:
        """Write from the local store to memory; returns completion time.

        Writes are posted: the returned time is when the engine has pushed
        the last granule into the memory system (the data's journey to DRAM
        continues via L2 write-back, exactly as the paper's Section 3.3
        describes — "the L2 cache avoids refills on write misses when DMA
        transfers overwrite entire lines").
        """
        if self.observer is not None:
            self.observer("put", self, addr, nbytes, stride, block, now_fs)
        self.commands += 1
        self.bytes_written += nbytes
        start = max(now_fs, self._engine_free)
        done = start
        uncore = self.uncore
        cl = self.cluster_id
        line_bytes = self.line_bytes
        window = self._window
        win_size = window.maxlen
        append = window.append
        bus_req = uncore.buses[cl].req.transfer
        xbar_up = uncore.xbar.up[cl].transfer
        l2_write = uncore.l2_write
        if stride == 0 and nbytes > 0 and not (addr & (line_bytes - 1)) \
                and not (nbytes & (line_bytes - 1)):
            line0 = addr >> self._line_shift
            nlines = nbytes >> self._line_shift
            first = 0
            # Same single-line gate as the get side: not worth planning.
            if nlines > 1 and self._fast and self.observer is None:
                fast = self._renewal_put(start, line0, nlines)
                if fast is None:
                    fast = self._fast_put(start, line0, nlines)
                first, done = fast
            for line in range(line0 + first, line0 + nlines):
                t = start if len(window) < win_size else max(start, window[0])
                t = bus_req(t, line_bytes)
                t = xbar_up(t, line_bytes)
                t = l2_write(line, t, refill=False)
                append(t)
                if t > done:
                    done = t
        else:
            shift = self._line_shift
            l2_write_partial = uncore.l2_write_partial
            for block_addr, block_size in self._blocks(addr, nbytes, stride,
                                                       block):
                for gran_addr, gran_size in self._granules(block_addr,
                                                           block_size):
                    t = start if len(window) < win_size \
                        else max(start, window[0])
                    t = bus_req(t, gran_size)
                    t = xbar_up(t, gran_size)
                    line = gran_addr >> shift
                    if gran_size == line_bytes and gran_addr % line_bytes == 0:
                        t = l2_write(line, t, refill=False)
                    else:
                        t = l2_write_partial(line, gran_size, t)
                    append(t)
                    if t > done:
                        done = t
        self._engine_free = done
        if self.trace_hook is not None:
            self.trace_hook("put", self.core_id, now_fs, start, done,
                            addr, nbytes)
        return done

    def drain_time(self, now_fs: int) -> int:
        """Time the engine goes quiet (for end-of-run settling).

        A program may terminate with commands still in flight (it never
        issued a ``dma_wait``); the bytes those commands move are counted
        at the DRAM pins, so the settle point must cover their completion
        or short runs can report an average bandwidth above the channel's
        capacity.
        """
        return max(now_fs, self._engine_free)

    def _granules(self, addr: int, nbytes: int) -> Iterable[tuple[int, int]]:
        """Split a block into line-aligned granules of at most one line."""
        line = self.line_bytes
        position = addr
        remaining = nbytes
        while remaining > 0:
            boundary = (position // line + 1) * line
            size = min(remaining, boundary - position)
            yield position, size
            position += size
            remaining -= size
