"""The streaming model's per-core local store (Section 3.3).

A 24 KB directly indexed random-access memory with no tags or control
bits.  Cores access it in one cycle; the DMA engine moves data between the
local store and the rest of the memory system.  Software owns allocation,
so the only functional state we keep is a bump allocator used by workloads
to lay out their buffers, with bounds checking to catch workload bugs
(overflowing the 24 KB budget is exactly the kind of error the paper says
streaming software must avoid by construction).
"""

from __future__ import annotations


class LocalStoreError(ValueError):
    """A workload overflowed or misused the local store."""


class LocalStore:
    """Bump allocator + access counters for one core's local store."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._brk = 0
        self.reads = 0
        self.writes = 0
        self.read_accesses = 0
        self.write_accesses = 0
        self.high_water_bytes = 0
        #: Optional invariant observer (repro.analysis.monitors), called as
        #: ``observer(kind, store, offset, num_bytes)`` with kind
        #: "alloc" / "access" after the local bounds checks pass.
        self.observer = None

    def alloc(self, num_bytes: int, name: str = "buffer") -> int:
        """Reserve ``num_bytes``; returns the offset.  Raises on overflow."""
        if num_bytes <= 0:
            raise LocalStoreError(f"{name}: allocation must be positive, got {num_bytes}")
        offset = self._brk
        if offset + num_bytes > self.capacity_bytes:
            raise LocalStoreError(
                f"{name}: local store overflow — {offset + num_bytes} bytes "
                f"requested of {self.capacity_bytes}"
            )
        self._brk = offset + num_bytes
        if self._brk > self.high_water_bytes:
            self.high_water_bytes = self._brk
        if self.observer is not None:
            self.observer("alloc", self, offset, num_bytes)
        return offset

    def reset(self) -> None:
        """Release all allocations (used between workload phases)."""
        self._brk = 0

    @property
    def allocated_bytes(self) -> int:
        """Bytes currently reserved."""
        return self._brk

    @property
    def free_bytes(self) -> int:
        """Bytes still available."""
        return self.capacity_bytes - self._brk

    def check_range(self, offset: int, num_bytes: int) -> None:
        """Validate an access range against the allocated region."""
        if offset < 0 or num_bytes < 0 or offset + num_bytes > self.capacity_bytes:
            raise LocalStoreError(
                f"access [{offset}, {offset + num_bytes}) outside "
                f"{self.capacity_bytes}-byte local store"
            )
        if self.observer is not None:
            self.observer("access", self, offset, num_bytes)

    def record_read(self, num_bytes: int, accesses: int) -> None:
        """Account a core read (bytes and access count)."""
        self.reads += num_bytes
        self.read_accesses += accesses

    def record_write(self, num_bytes: int, accesses: int) -> None:
        """Account a core write (bytes and access count)."""
        self.writes += num_bytes
        self.write_accesses += accesses
