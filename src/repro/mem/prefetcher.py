"""Tagged hardware stream prefetcher (Section 3.2).

Modelled after the tagged prefetcher of VanderWiel & Lilja [41]: the
prefetcher keeps a history of the last 8 cache-miss line addresses for
identifying sequential streams, tracks 4 separate access streams, and runs
a configurable number of cache lines ahead of the latest miss.

Because the prefetcher is *tagged*, the first demand hit on a prefetched
line advances the stream as well, so an established stream keeps running
``depth`` lines ahead without requiring further misses.
"""

from __future__ import annotations

from collections import deque

from repro.config import PrefetcherConfig


class _Stream:
    """One detected sequential stream."""

    __slots__ = ("next_line", "last_used")

    def __init__(self, next_line: int, last_used: int) -> None:
        self.next_line = next_line
        self.last_used = last_used


class StreamPrefetcher:
    """Detects sequential miss streams and proposes lines to prefetch.

    The hierarchy calls :meth:`on_miss` for every demand L1 miss and
    :meth:`on_tagged_hit` for the first demand hit to a prefetched line;
    both return the list of line numbers to prefetch (possibly empty).
    The caller is responsible for fetching them and installing them with
    ``prefetched=True``.
    """

    def __init__(self, config: PrefetcherConfig) -> None:
        self.config = config
        self._history: deque[int] = deque(maxlen=config.history_size)
        self._streams: dict[int, _Stream] = {}
        self._clock = 0
        self.prefetches_issued = 0
        self.streams_allocated = 0

    def _advance(self, stream: _Stream, upto_line: int) -> list[int]:
        """Issue prefetches so the stream runs ``depth`` lines past ``upto_line``."""
        target = upto_line + self.config.depth
        issued = list(range(max(stream.next_line, upto_line + 1), target + 1))
        if issued:
            stream.next_line = issued[-1] + 1
        self._clock += 1
        stream.last_used = self._clock
        self.prefetches_issued += len(issued)
        return issued

    def _stream_for(self, line: int) -> _Stream | None:
        """Find the stream that ``line`` belongs to (line or its predecessor)."""
        for base in (line, line - 1):
            stream = self._streams.get(base)
            if stream is not None:
                if base != line:
                    self._streams[line] = self._streams.pop(base)
                return stream
        return None

    def on_miss(self, line: int) -> list[int]:
        """Record a demand miss; return lines to prefetch."""
        stream = self._stream_for(line)
        if stream is not None:
            return self._advance(stream, line)
        # Sequential detection: a miss adjacent to a recorded miss starts a stream.
        if line - 1 in self._history:
            stream = self._allocate(line)
            return self._advance(stream, line)
        self._history.append(line)
        return []

    def on_tagged_hit(self, line: int) -> list[int]:
        """First demand hit on a prefetched line re-arms the stream."""
        stream = self._stream_for(line)
        if stream is None:
            # The stream entry may have been recycled; restart it.
            stream = self._allocate(line)
        return self._advance(stream, line)

    def _allocate(self, line: int) -> _Stream:
        """Allocate a stream tracker, evicting the least recently used one."""
        if len(self._streams) >= self.config.num_streams:
            lru_key = min(self._streams, key=lambda k: self._streams[k].last_used)
            del self._streams[lru_key]
        self._clock += 1
        stream = _Stream(next_line=line + 1, last_used=self._clock)
        self._streams[line] = stream
        self.streams_allocated += 1
        return stream

    @property
    def active_streams(self) -> int:
        """Streams currently tracked."""
        return len(self._streams)
