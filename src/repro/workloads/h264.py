"""H.264 video encoder (Section 4.2).

H.264 macroblocks are *dependent*: encoding (x, y) needs its left,
upper, and upper-right neighbours, so parallelism comes from a wavefront
schedule over anti-diagonals of the k = x + 2y index.  With CIF frames
the wavefront is at most ~(mbs_x+1)/2 wide, so "the macroblock
parallelism available in H.264 is limited" (Section 4.2) and both memory
models show growing synchronization stalls at 8-16 cores (Figure 2).

Per macroblock the encoder is strongly compute-bound (intra/inter mode
search, RD optimization): Table 3 reports 3705 instructions per L1 miss
and only 10.8 MB/s of off-chip bandwidth, thanks to heavy reference-
window reuse that both caches and local stores capture equally well.

The streaming variant exploits "boundary-condition optimizations that
proved difficult in the cache-based variant" (Section 5.1), modelled as
a small per-macroblock compute reduction.
"""

from __future__ import annotations

from repro.config import MachineConfig
from repro.core.ops import (
    barrier_wait,
    compute,
    dma_get,
    dma_put,
    dma_wait,
    load,
    local_load,
    local_store,
    store,
)
from repro.core.sync import Barrier
from repro.workloads.base import (
    Arena,
    Env,
    Program,
    Workload,
    register,
)

MB = 16


def wavefront_diagonals(mbs_x: int, mbs_y: int) -> list[list[tuple[int, int]]]:
    """Group macroblocks into dependency-safe anti-diagonals (k = x + 2y).

    Every macroblock in diagonal k depends only on macroblocks in
    diagonals < k (left: k-1; top: k-2; top-right: k-1), so the groups can
    be processed in order with a barrier between them.
    """
    max_k = (mbs_x - 1) + 2 * (mbs_y - 1)
    diagonals: list[list[tuple[int, int]]] = [[] for _ in range(max_k + 1)]
    for y in range(mbs_y):
        for x in range(mbs_x):
            diagonals[x + 2 * y].append((x, y))
    return diagonals


@register
class H264Workload(Workload):
    """H.264 encoder: wavefront-dependent macroblocks (see module
    docstring)."""

    name = "h264"
    presets = {
        "default": {
            "width": 352,
            "height": 288,
            "frames": 2,
            "mb_cycles": 120000,
            "stream_boundary_savings": 2000,
            "search_range": 16,
        },
        "small": {
            "width": 176,
            "height": 144,
            "frames": 2,
            "mb_cycles": 120000,
            "stream_boundary_savings": 2000,
            "search_range": 16,
        },
        "tiny": {
            "width": 64,
            "height": 48,
            "frames": 1,
            "mb_cycles": 6000,
            "stream_boundary_savings": 200,
            "search_range": 16,
        },
    }

    def _layout(self, arena: Arena, params: dict):
        width, height = params["width"], params["height"]
        luma = width * height
        cur = arena.alloc(luma + luma // 2, "current")
        ref = arena.alloc(luma + luma // 2, "reference")
        recon = arena.alloc(luma + luma // 2, "recon")
        mbs_x, mbs_y = width // MB, height // MB
        # Per-macroblock mode/motion metadata exchanged between neighbours.
        modes = arena.alloc(mbs_x * mbs_y * 64, "modes")
        bits = arena.alloc(mbs_x * mbs_y * 16, "bitstream")
        return cur, ref, recon, modes, bits

    def _geometry(self, params: dict):
        width, height = params["width"], params["height"]
        if width % MB or height % MB:
            raise ValueError(f"frame {width}x{height} not macroblock aligned")
        return width // MB, height // MB

    def _build_cached(self, config: MachineConfig, params: dict) -> Program:
        arena = Arena()
        cur, ref, recon, modes, bits = self._layout(arena, params)
        mbs_x, mbs_y = self._geometry(params)
        width = params["width"]
        luma = width * params["height"]
        rng = params["search_range"]
        num_cores = config.num_cores
        barrier = Barrier(num_cores, "h264.diag")
        diagonals = wavefront_diagonals(mbs_x, mbs_y)
        mb_cycles = params["mb_cycles"]

        def mode_addr(mbx: int, mby: int) -> int:
            return modes + (mby * mbs_x + mbx) * 64

        def make_thread(env: Env):
            core = env.core_id
            for _frame in range(params["frames"]):
                for diag in diagonals:
                    for mbx, mby in diag[core::num_cores]:
                        # Current macroblock (luma + chroma rows).
                        for r in range(MB):
                            yield load(cur + (mby * MB + r) * width + mbx * MB,
                                       MB, accesses=4)
                        for r in range(MB // 2):
                            yield load(cur + luma
                                       + (mby * MB // 2 + r) * width + mbx * MB,
                                       MB, accesses=4)
                        # Reference search window (heavily reused row-to-row).
                        win_w = MB + 2 * rng
                        x0 = min(max(0, mbx * MB - rng), width - win_w)
                        for r in range(-rng, MB + rng):
                            ry = min(max(0, mby * MB + r),
                                     params["height"] - 1)
                            yield load(ref + ry * width + x0, win_w,
                                       accesses=win_w // 4)
                        # Neighbour mode data (the wavefront dependency).
                        if mbx > 0:
                            yield load(mode_addr(mbx - 1, mby), 64)
                        if mby > 0:
                            yield load(mode_addr(mbx, mby - 1), 64)
                            if mbx + 1 < mbs_x:
                                yield load(mode_addr(mbx + 1, mby - 1), 64)
                        yield compute(mb_cycles, l1_accesses=mb_cycles // 2)
                        # Reconstructed pixels + own mode data + bitstream.
                        for r in range(MB):
                            yield store(recon + (mby * MB + r) * width + mbx * MB,
                                        MB, accesses=4)
                        yield store(mode_addr(mbx, mby), 64)
                        yield store(bits + (mby * mbs_x + mbx) * 16, 16)
                    yield barrier_wait(barrier)

        return Program("h264", [make_thread] * num_cores, arena)

    def _build_streaming(self, config: MachineConfig, params: dict) -> Program:
        arena = Arena()
        cur, ref, recon, modes, bits = self._layout(arena, params)
        mbs_x, mbs_y = self._geometry(params)
        width = params["width"]
        luma = width * params["height"]
        rng = params["search_range"]
        num_cores = config.num_cores
        barrier = Barrier(num_cores, "h264.diag")
        diagonals = wavefront_diagonals(mbs_x, mbs_y)
        mb_cycles = params["mb_cycles"] - params["stream_boundary_savings"]
        win_h = MB + 2 * rng
        mb_bytes = MB * MB + MB * MB // 2
        col_bytes = win_h * MB

        def make_thread(env: Env):
            ls = env.local_store
            in_bytes = mb_bytes + col_bytes + 3 * 64
            in_buf = ls.alloc(in_bytes, "in")
            window = ls.alloc(win_h * 2 * rng, "window")
            out_bytes = MB * MB + 64 + 16
            out_buf = ls.alloc(out_bytes, "out")
            core = env.core_id
            for _frame in range(params["frames"]):
                for diag in diagonals:
                    for mbx, mby in diag[core::num_cores]:
                        # Gather current MB (strided), new window column, and
                        # neighbour mode records (indexed gather).
                        yield dma_get(0, cur + (mby * MB) * width + mbx * MB,
                                      MB * MB, stride=width, block=MB)
                        yield dma_get(0, cur + luma
                                      + (mby * MB // 2) * width + mbx * MB,
                                      MB * MB // 2, stride=width, block=MB)
                        x0 = min(max(0, mbx * MB + rng), width - MB)
                        y0 = min(max(0, mby * MB - rng),
                                 params["height"] - win_h)
                        yield dma_get(0, ref + y0 * width + x0,
                                      col_bytes, stride=width, block=MB)
                        if mbx > 0:
                            yield dma_get(0, modes + (mby * mbs_x + mbx - 1) * 64, 64)
                        if mby > 0:
                            yield dma_get(0, modes + ((mby - 1) * mbs_x + mbx) * 64, 64)
                        yield dma_wait(0)
                        yield local_load(in_buf, in_bytes)
                        yield local_load(window, win_h * 2 * rng,
                                         accesses=win_h * rng // 2)
                        yield compute(mb_cycles, l1_accesses=mb_cycles // 2)
                        yield local_store(out_buf, out_bytes)
                        yield dma_put(1, recon + (mby * MB) * width + mbx * MB,
                                      MB * MB, stride=width, block=MB)
                        yield dma_put(1, modes + (mby * mbs_x + mbx) * 64, 64)
                        yield dma_put(1, bits + (mby * mbs_x + mbx) * 16, 16)
                        yield dma_wait(1)
                    yield barrier_wait(barrier)

        return Program("h264", [make_thread] * num_cores, arena)
