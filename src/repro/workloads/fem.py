"""2D finite element method (Section 4.2).

A scientific kernel with "about the same compute intensity as multimedia
applications": each timestep sweeps every mesh cell, gathering the
neighbours' flux values, computing an update, and writing the new cell
state; a barrier separates timesteps.  The mesh is a structured 2D grid
with a lightly perturbed cell numbering, so neighbour accesses are
*mostly* local with occasional irregular jumps — the access pattern that
makes FEM's off-chip traffic nearly identical under both models
(Figure 3): cells are updated *in place*, so the cache model writes back
only the lines it touched, while the streaming model writes whole blocks
back (including unmodified bytes) but re-reads nothing — the two
overheads almost cancel (Section 2.3's "fetch a block and update some of
its elements in-place" case).
"""

from __future__ import annotations

import numpy as np

from repro.config import MachineConfig
from repro.core.ops import (
    barrier_wait,
    block,
    compute,
    dma_get,
    dma_put,
    dma_wait,
    load,
    local_load,
    local_store,
    phase,
    store,
    stream,
    stream_get,
    stream_kernel,
    stream_put,
    stream_wait,
)
from repro.core.sync import Barrier
from repro.workloads.base import (
    Arena,
    Env,
    Program,
    Workload,
    partition,
    register,
)

#: Bytes of one cell's full state record (4 cache lines).
CELL_BYTES = 128
#: Bytes of the neighbour flux field gathered per adjacent cell.
FLUX_BYTES = 32


def build_mesh(rows: int, cols: int, seed: int,
               shuffle_fraction: float = 0.05) -> np.ndarray:
    """Neighbour table of a structured grid with perturbed numbering.

    Returns an (n_cells, 4) array of neighbour cell ids (von Neumann
    neighbourhood, clamped at the boundary).  A small fraction of cell
    ids are pairwise swapped, introducing the irregularity of a real
    unstructured mesh while keeping most accesses local.
    """
    n = rows * cols
    ids = np.arange(n)
    rng = np.random.default_rng(seed)
    n_swaps = int(n * shuffle_fraction / 2)
    if n_swaps:
        # Disjoint swap pairs keep ``ids`` a permutation.
        chosen = rng.permutation(n)[: 2 * n_swaps].reshape(2, -1)
        ids[chosen[0]], ids[chosen[1]] = (
            ids[chosen[1]].copy(), ids[chosen[0]].copy()
        )
    # grid[r, c] is the id of the cell at position (r, c); its neighbours
    # are the ids at the adjacent positions (torus-wrapped at the border).
    grid = ids.reshape(rows, cols)
    up = np.roll(grid, 1, axis=0)
    down = np.roll(grid, -1, axis=0)
    left = np.roll(grid, 1, axis=1)
    right = np.roll(grid, -1, axis=1)
    neighbours = np.stack(
        [up.ravel(), down.ravel(), left.ravel(), right.ravel()], axis=1
    )
    # Index the table by cell id so iterating ids 0..n-1 visits the state
    # arrays in layout order.
    table = np.empty_like(neighbours)
    table[grid.ravel()] = neighbours
    return table


@register
class FemWorkload(Workload):
    """2D FEM: in-place cell updates with neighbour gathers (see
    module docstring)."""

    name = "fem"
    presets = {
        "default": {
            "rows": 64,
            "cols": 128,
            "iterations": 3,
            "cycles_per_cell": 2000,
            "stream_extra_cycles": 20,
            "seed": 11,
            "cells_per_block": 16,
        },
        "small": {
            "rows": 32,
            "cols": 64,
            "iterations": 3,
            "cycles_per_cell": 2000,
            "stream_extra_cycles": 20,
            "seed": 11,
            "cells_per_block": 16,
        },
        "tiny": {
            "rows": 8,
            "cols": 16,
            "iterations": 2,
            "cycles_per_cell": 600,
            "stream_extra_cycles": 20,
            "seed": 11,
            "cells_per_block": 8,
        },
    }

    def _layout(self, params: dict):
        arena = Arena()
        n_cells = params["rows"] * params["cols"]
        state = arena.alloc(n_cells * CELL_BYTES, "state")
        return arena, state, n_cells

    def _build_cached(self, config: MachineConfig, params: dict) -> Program:
        arena, state, n_cells = self._layout(params)
        mesh = build_mesh(params["rows"], params["cols"], params["seed"])
        num_cores = config.num_cores
        barrier = Barrier(num_cores, "fem.step")
        cycles = params["cycles_per_cell"]

        # Cells per replay template.  Neighbour addresses come from the
        # mesh table, so the ops cannot share one offset-stepped template;
        # instead each group of cells is baked into its own block once and
        # replayed every timestep (the sweep revisits the same addresses).
        group_cells = 64
        cell_compute = compute(cycles, l1_accesses=cycles // 2)

        def make_thread(env: Env):
            start, count = partition(n_cells, num_cores, env.core_id)
            groups = []
            for lo in range(start, start + count, group_cells):
                hi = min(lo + group_cells, start + count)
                ops = []
                for cell in range(lo, hi):
                    ops.append(load(state + cell * CELL_BYTES, CELL_BYTES))
                    for nb in mesh[cell]:
                        ops.append(load(state + int(nb) * CELL_BYTES,
                                        FLUX_BYTES))
                    ops.append(cell_compute)
                    # In-place update: the store hits the just-loaded
                    # lines, so only touched lines ever get written back.
                    ops.append(store(state + cell * CELL_BYTES, CELL_BYTES))
                groups.append(block(*ops, name="fem.cells"))
            # One all-static multi-lane phase per timestep (every lane at
            # delta 0, stride 0): the sweep revisits the same addresses,
            # so once the state is resident a whole timestep retires as
            # one closed-form step.  Built once, replayed per step.
            step = (phase(*((tmpl, 0, 0) for tmpl in groups),
                          count=1, name="fem.step").op()
                    if groups else None)
            for _step in range(params["iterations"]):
                if step is not None:
                    yield step
                yield barrier_wait(barrier)

        return Program("fem", [make_thread] * num_cores, arena)

    def _build_streaming(self, config: MachineConfig, params: dict) -> Program:
        arena, state, n_cells = self._layout(params)
        mesh = build_mesh(params["rows"], params["cols"], params["seed"])
        num_cores = config.num_cores
        barrier = Barrier(num_cores, "fem.step")
        block_cells = params["cells_per_block"]
        block_bytes = block_cells * CELL_BYTES
        cycles_block = (
            params["cycles_per_cell"] + params["stream_extra_cycles"]
        ) * block_cells

        def make_thread(env: Env):
            ls = env.local_store
            own_buf = [ls.alloc(block_bytes, f"own{i}") for i in range(2)]
            nb_buf = [ls.alloc(block_cells * 4 * FLUX_BYTES, f"nb{i}")
                      for i in range(2)]
            out_buf = [ls.alloc(block_bytes, f"out{i}") for i in range(2)]
            start, count = partition(n_cells, num_cores, env.core_id)
            blocks = list(range(start, start + count, block_cells))
            # The local-store kernel per (buffer parity, cells in block),
            # built on first use and replayed every block of every step.
            kernel_cache: dict[tuple, object] = {}

            def kernel(parity: int, n_blk: int):
                tmpl = kernel_cache.get((parity, n_blk))
                if tmpl is None:
                    cyc = cycles_block * n_blk // block_cells
                    tmpl = kernel_cache[(parity, n_blk)] = block(
                        local_load(own_buf[parity], n_blk * CELL_BYTES),
                        local_load(nb_buf[parity], n_blk * 4 * FLUX_BYTES),
                        compute(cyc, l1_accesses=cyc // 2),
                        local_store(out_buf[parity], n_blk * CELL_BYTES),
                        name="fem.kernel")
                return tmpl

            # Per-block command tables, shared by every timestep: one
            # contiguous own-state get, then an indexed gather of each
            # neighbour's flux field (sub-line transfers that re-fetch
            # data shared with adjacent cells).
            get_tab = []
            put_tab = []
            ker_tab = []
            for i, block_start in enumerate(blocks):
                n_blk = min(block_cells, start + count - block_start)
                cmds = [(state + block_start * CELL_BYTES,
                         n_blk * CELL_BYTES)]
                for cell in range(block_start, block_start + n_blk):
                    for nb in mesh[cell]:
                        cmds.append(
                            (state + int(nb) * CELL_BYTES, FLUX_BYTES))
                get_tab.append(tuple(cmds))
                # Whole blocks go back, modified or not (Section 2.3).
                put_tab.append(((state + block_start * CELL_BYTES,
                                 n_blk * CELL_BYTES),))
                ker_tab.append(kernel(i & 1, n_blk))
            sweep = (stream(
                stream_get(0, tuple(get_tab), ahead=1),
                stream_wait(0),
                stream_wait(2, first=2),
                stream_kernel(tuple(ker_tab)),
                stream_put(2, tuple(put_tab)),
                count=len(blocks), name="fem.sweep")
                if blocks else None)

            issued_2 = issued_3 = False
            for _step in range(params["iterations"]):
                if sweep is not None:
                    # Prologue: fetch the first block's own state and
                    # neighbour fluxes, then stream the whole sweep.
                    for addr, nbytes in get_tab[0]:
                        yield dma_get(0, addr, nbytes)
                    yield sweep.op()
                # Tags 2/3 only exist once an even/odd iteration has put;
                # waiting on a never-issued tag is an error.
                if blocks:
                    issued_2 = True
                    if len(blocks) >= 2:
                        issued_3 = True
                if issued_2:
                    yield dma_wait(2)
                if issued_3:
                    yield dma_wait(3)
                yield barrier_wait(barrier)

        return Program("fem", [make_thread] * num_cores, arena)
