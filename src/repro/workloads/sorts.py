"""Bitonic sort and merge sort (Section 4.2).

Both sorts operate on a large array of 32-bit keys (2 MB in the paper) and
are the paper's *data-bound* sorting pair with opposite streaming stories:

**BitonicSort** is in-place and retains full parallelism for its duration.
Sublists are often moderately in-order, so many compare-exchange passes
modify few elements.  The cache-based system naturally discovers this —
unswapped lines stay clean and are never written back — while the
streaming system writes every block back to memory anyway (Section 5.1).
That makes streaming bitonic *more* write traffic (Figure 3) and lets the
cache model win by ~19% at high computational throughput (Figure 5).
We run the real compare-exchange passes in numpy so the set of modified
cache lines is data-exact.

**MergeSort** first quicksorts 4096-key chunks in parallel, then merges
sorted runs with halving parallelism (sync stalls grow with core count).
Output goes to an alternating buffer, so the cache model pays superfluous
write-allocate refills on the output stream (fixed by PFS, Figure 8), and
the streaming inner loop runs extra buffer-management comparisons
(Section 5.1).  Hardware prefetching hides the sequential read latency
(Figure 7).

Scale note: the full bitonic network on a >L2-sized array is O(n log^2 n)
line operations — beyond a Python event simulator — so the ``default``
preset simulates the final *merge super-stage* (log2 n passes), which is
representative of every stage's memory behaviour; the ``tiny`` preset
runs the complete network so tests can verify the schedule sorts.
"""

from __future__ import annotations

import numpy as np

from repro.config import MachineConfig
from repro.core.ops import (
    barrier_wait,
    block,
    compute,
    dma_get,
    dma_put,
    dma_wait,
    load,
    local_load,
    local_store,
    pfs_store,
    phase,
    phase_runs,
    store,
    stream,
    stream_get,
    stream_kernel,
    stream_put,
    stream_store,
    stream_wait,
)
from repro.core.sync import Barrier
from repro.workloads.base import (
    LINE_BYTES,
    WORD_BYTES,
    WORDS_PER_LINE,
    Arena,
    Env,
    Program,
    Workload,
    partition,
    register,
)


def bitonic_pass_schedule(n_keys: int, full_network: bool) -> list[tuple[int, int]]:
    """(stride, merge-block) pairs, in keys, for the simulated passes.

    ``full_network=True`` yields the complete bitonic sorting network
    (for k = 2,4,...,n: merge passes with strides k/2..1, direction
    alternating per k-sized block), which sorts arbitrary input.
    ``False`` yields only the final merge super-stage (strides n/2..1,
    single ascending block), representative of every stage's memory
    behaviour at a fraction of the cost.
    """
    if n_keys & (n_keys - 1) or n_keys < 2:
        raise ValueError(f"bitonic sort needs a power-of-two size, got {n_keys}")
    if not full_network:
        schedule = []
        stride = n_keys // 2
        while stride >= 1:
            schedule.append((stride, n_keys))
            stride //= 2
        return schedule
    schedule = []
    k = 2
    while k <= n_keys:
        j = k // 2
        while j >= 1:
            schedule.append((j, k))
            j //= 2
        k *= 2
    return schedule


def apply_bitonic_pass(arr: np.ndarray, stride: int, block: int) -> np.ndarray:
    """Apply one compare-exchange pass in place; returns the modified mask.

    ``block`` is the enclosing merge stage's block size: the sort
    direction alternates per ``block`` elements, which is what makes the
    full network sort arbitrary inputs.
    """
    n = arr.size
    view = arr.reshape(-1, 2 * stride)
    lo = view[:, :stride]
    hi = view[:, stride:]
    groups = np.arange(n // (2 * stride)) * (2 * stride)
    ascending = (groups // block) % 2 == 0
    swap = np.where(ascending[:, None], lo > hi, lo < hi)
    lo_vals = lo.copy()
    lo[swap] = hi[swap]
    hi[swap] = lo_vals[swap]
    modified = np.zeros(n, dtype=bool)
    mod_view = modified.reshape(-1, 2 * stride)
    mod_view[:, :stride] = swap
    mod_view[:, stride:] = swap
    return modified


@register
class BitonicSortWorkload(Workload):
    """In-place bitonic sort over 32-bit keys (see module docstring)."""

    name = "bitonic"
    presets = {
        "default": {
            "n_keys": 1 << 18,
            "full_network": False,
            "nearly_sorted": True,
            "cycles_per_key": 4,
            "stream_extra_cycles": 2,
            "block_keys": 512,
            "seed": 7,
            "pfs": False,
        },
        "small": {
            "n_keys": 1 << 15,
            "full_network": False,
            "nearly_sorted": True,
            "cycles_per_key": 4,
            "stream_extra_cycles": 2,
            "block_keys": 512,
            "seed": 7,
            "pfs": False,
        },
        "tiny": {
            "n_keys": 1 << 10,
            "full_network": True,
            "nearly_sorted": False,
            "cycles_per_key": 4,
            "stream_extra_cycles": 2,
            "block_keys": 128,
            "seed": 7,
            "pfs": False,
        },
    }

    def _prepare(self, params: dict):
        """Run the sort functionally; returns (arena, base, passes).

        Each pass entry is ``(stride_keys, dirty_line_flags)``.  The final
        array is kept on the instance (``last_sorted``) for tests.
        """
        n = params["n_keys"]
        rng = np.random.default_rng(params["seed"])
        if params["nearly_sorted"]:
            # "Sublists are moderately in-order": sorted plus a light shuffle.
            arr = np.sort(rng.integers(0, 1 << 30, size=n, dtype=np.int64))
            n_swaps = n // 5
            idx_a = rng.integers(0, n, size=n_swaps)
            idx_b = np.minimum(n - 1, idx_a + rng.integers(1, 256, size=n_swaps))
            arr[idx_a], arr[idx_b] = arr[idx_b].copy(), arr[idx_a].copy()
        else:
            arr = rng.integers(0, 1 << 30, size=n, dtype=np.int64)
        passes = []
        for stride, block in bitonic_pass_schedule(n, params["full_network"]):
            modified = apply_bitonic_pass(arr, stride, block)
            dirty_lines = modified.reshape(-1, WORDS_PER_LINE).any(axis=1)
            passes.append((stride, dirty_lines))
        self.last_sorted = arr
        arena = Arena()
        base = arena.alloc(n * WORD_BYTES, "keys")
        return arena, base, passes

    def _build_cached(self, config: MachineConfig, params: dict) -> Program:
        arena, base, passes = self._prepare(params)
        num_cores = config.num_cores
        barrier = Barrier(num_cores, "bitonic.pass")
        cycles_line = params["cycles_per_key"] * WORDS_PER_LINE
        store_op = pfs_store if params["pfs"] else store

        # Compare-exchange templates, shared by every core and cached per
        # shape: (partner line stride, which sides are dirty) for paired
        # passes, the dirty flag alone for in-line passes.  The replay
        # offset moves the template to the pass's lo line.
        pair_cache: dict[tuple, object] = {}
        single_cache: dict[bool, object] = {}

        def pair_block(line_stride: int, dirty_lo: bool, dirty_hi: bool):
            key = (line_stride, dirty_lo, dirty_hi)
            tmpl = pair_cache.get(key)
            if tmpl is None:
                ops = [
                    load(base, LINE_BYTES),
                    load(base + line_stride * LINE_BYTES, LINE_BYTES),
                    compute(2 * cycles_line, l1_accesses=cycles_line),
                ]
                if dirty_lo:
                    ops.append(store_op(base, LINE_BYTES))
                if dirty_hi:
                    ops.append(store_op(base + line_stride * LINE_BYTES,
                                        LINE_BYTES))
                tmpl = pair_cache[key] = block(*ops, name="bitonic.pair")
            return tmpl

        def single_block(dirty_line: bool):
            tmpl = single_cache.get(dirty_line)
            if tmpl is None:
                ops = [
                    load(base, LINE_BYTES),
                    compute(cycles_line, l1_accesses=cycles_line // 2),
                ]
                if dirty_line:
                    ops.append(store_op(base, LINE_BYTES))
                tmpl = single_cache[dirty_line] = block(
                    *ops, name="bitonic.line")
            return tmpl

        def make_thread(env: Env):
            core = env.core_id
            for stride, dirty in passes:
                # The dirty mask is data-dependent, so the replay stream
                # mixes templates; phase_runs coalesces the (typically
                # long, on nearly-sorted data) same-template runs into
                # constant-stride phases and passes isolated lines
                # through as plain block replays.  One bulk tolist() per
                # pass: indexing a Python list in the replay generators
                # is far cheaper than minting a numpy scalar per line.
                flags = dirty.tolist()
                if stride >= WORDS_PER_LINE:
                    line_stride = stride // WORDS_PER_LINE
                    lo_lines = [
                        line for line in range(len(flags))
                        if (line // line_stride) % 2 == 0
                    ]
                    start, count = partition(len(lo_lines), num_cores, core)
                    yield from phase_runs(
                        ((pair_block(line_stride, flags[lo],
                                     flags[lo + line_stride]),
                          lo * LINE_BYTES)
                         for lo in lo_lines[start:start + count]),
                        name="bitonic.pass")
                else:
                    start, count = partition(len(flags), num_cores, core)
                    yield from phase_runs(
                        ((single_block(flags[line]), line * LINE_BYTES)
                         for line in range(start, start + count)),
                        name="bitonic.pass")
                yield barrier_wait(barrier)

        return Program("bitonic", [make_thread] * num_cores, arena)

    def _build_streaming(self, config: MachineConfig, params: dict) -> Program:
        arena, base, passes = self._prepare(params)
        num_cores = config.num_cores
        barrier = Barrier(num_cores, "bitonic.pass")
        block_keys = params["block_keys"]
        block_bytes = block_keys * WORD_BYTES
        n_keys = params["n_keys"]
        cycles_block = (
            params["cycles_per_key"] + params["stream_extra_cycles"]
        ) * block_keys

        def make_thread(env: Env):
            core = env.core_id
            ls = env.local_store
            buf_lo = [ls.alloc(block_bytes, f"lo{i}") for i in range(2)]
            buf_hi = [ls.alloc(block_bytes, f"hi{i}") for i in range(2)]
            # Local compare-exchange kernel per (parity, paired), built on
            # first use and replayed for every block of every pass.  The
            # trailing hi-half writeback stays outside: it interleaves
            # with the DMA puts.
            kernel_cache: dict[tuple, object] = {}

            def kernel(parity: int, paired: bool):
                tmpl = kernel_cache.get((parity, paired))
                if tmpl is None:
                    ops = [local_load(buf_lo[parity], block_bytes)]
                    if paired:
                        ops.append(local_load(buf_hi[parity], block_bytes))
                    ops.append(compute((2 if paired else 1) * cycles_block,
                                       l1_accesses=cycles_block // 2))
                    ops.append(local_store(buf_lo[parity], block_bytes))
                    tmpl = kernel_cache[(parity, paired)] = block(
                        *ops, name="bitonic.kernel")
                return tmpl

            issued_2 = issued_3 = False
            for stride, _dirty in passes:
                stride_bytes = stride * WORD_BYTES
                if stride >= block_keys:
                    # Partner blocks are disjoint: fetch the pair, write both
                    # back unconditionally — the streaming system cannot know
                    # which lines went unmodified (Section 5.1).
                    lo_blocks = [
                        b for b in range(n_keys // block_keys)
                        if (b * block_keys) % (2 * stride) < stride
                    ]
                    start, count = partition(len(lo_blocks), num_cores, core)
                    mine = lo_blocks[start:start + count]
                    paired = True
                else:
                    # Both halves of each pair live inside one block.
                    n_blocks = n_keys // block_keys
                    start, count = partition(n_blocks, num_cores, core)
                    mine = list(range(start, start + count))
                    paired = False

                def fetch(tag: int, b: int):
                    lo_addr = base + b * block_bytes
                    yield dma_get(tag, lo_addr, block_bytes)
                    if paired:
                        yield dma_get(tag, lo_addr + stride_bytes, block_bytes)

                # Double-buffered: the next pair streams in while this one
                # is compared and exchanged (macroscopic prefetching).
                # The whole pass is one stream descriptor: iteration k
                # prefetches pair k+1, waits for pair k, drains the
                # reused put tag, compare-exchanges, and writes both
                # halves back (the hi-half local-store update interleaves
                # with the two puts, exactly as the plain loop did).
                if mine:
                    yield from fetch(0, mine[0])
                    lo_addrs = [base + b * block_bytes for b in mine]
                    if paired:
                        get_tab = tuple(
                            ((lo, block_bytes),
                             (lo + stride_bytes, block_bytes))
                            for lo in lo_addrs)
                    else:
                        get_tab = tuple(
                            ((lo, block_bytes),) for lo in lo_addrs)
                    steps = [
                        stream_get(0, get_tab, ahead=1),
                        stream_wait(0),
                        stream_wait(2, first=2),
                        stream_kernel(tuple(
                            kernel(k & 1, paired)
                            for k in range(len(mine)))),
                        stream_put(2, tuple(
                            ((lo, block_bytes),) for lo in lo_addrs)),
                    ]
                    if paired:
                        steps.append(stream_store(tuple(
                            buf_hi[k & 1] for k in range(len(mine))),
                            block_bytes))
                        steps.append(stream_put(2, tuple(
                            ((lo + stride_bytes, block_bytes),)
                            for lo in lo_addrs)))
                    yield stream(*steps, count=len(mine),
                                 name="bitonic.pass").op()
                # Tags 2/3 only exist once an even/odd iteration has put;
                # waiting on a never-issued tag is an error.
                if mine:
                    issued_2 = True
                    if len(mine) >= 2:
                        issued_3 = True
                if issued_2:
                    yield dma_wait(2)
                if issued_3:
                    yield dma_wait(3)
                yield barrier_wait(barrier)

        return Program("bitonic", [make_thread] * num_cores, arena)


@register
class MergeSortWorkload(Workload):
    """Chunked quicksort + parallel merges (see module docstring)."""

    name = "merge"
    presets = {
        "default": {
            "n_keys": 1 << 18,
            "chunk_keys": 4096,
            "qsort_cycles_per_key": 110,
            "merge_cycles_per_key": 10,
            "stream_extra_cycles": 4,
            "block_keys": 1024,
            "pfs": False,
        },
        "small": {
            "n_keys": 1 << 15,
            "chunk_keys": 2048,
            "qsort_cycles_per_key": 110,
            "merge_cycles_per_key": 10,
            "stream_extra_cycles": 4,
            "block_keys": 1024,
            "pfs": False,
        },
        "tiny": {
            "n_keys": 1 << 11,
            "chunk_keys": 256,
            "qsort_cycles_per_key": 110,
            "merge_cycles_per_key": 10,
            "stream_extra_cycles": 4,
            "block_keys": 128,
            "pfs": False,
        },
    }

    @staticmethod
    def _levels(n_keys: int, chunk_keys: int) -> int:
        chunks = n_keys // chunk_keys
        if chunks < 1 or chunks * chunk_keys != n_keys or chunks & (chunks - 1):
            raise ValueError(
                f"n_keys must be a power-of-two multiple of chunk_keys, "
                f"got {n_keys} / {chunk_keys}"
            )
        return chunks.bit_length() - 1

    def _layout(self, params: dict):
        arena = Arena()
        nbytes = params["n_keys"] * WORD_BYTES
        buf_a = arena.alloc(nbytes, "buffer_a")
        buf_b = arena.alloc(nbytes, "buffer_b")
        return arena, buf_a, buf_b

    def _build_cached(self, config: MachineConfig, params: dict) -> Program:
        arena, buf_a, buf_b = self._layout(params)
        num_cores = config.num_cores
        barrier = Barrier(num_cores, "merge.level")
        n_keys = params["n_keys"]
        chunk_keys = params["chunk_keys"]
        chunk_bytes = chunk_keys * WORD_BYTES
        chunk_lines = chunk_bytes // LINE_BYTES
        levels = self._levels(n_keys, chunk_keys)
        n_chunks = n_keys // chunk_keys
        qsort_line = params["qsort_cycles_per_key"] * WORDS_PER_LINE
        merge_line = params["merge_cycles_per_key"] * WORDS_PER_LINE
        out_store = pfs_store if params["pfs"] else store

        # Phase-1 templates cover a whole chunk (load+sort sweep, then the
        # writeback sweep), replayed per chunk with the chunk offset.
        chunk_read = block(
            *(op
              for line in range(chunk_lines)
              for op in (load(buf_a + line * LINE_BYTES, LINE_BYTES),
                         compute(qsort_line, l1_accesses=qsort_line // 2))),
            name="merge.qsort")
        chunk_write = block(
            *(store(buf_a + line * LINE_BYTES, LINE_BYTES)
              for line in range(chunk_lines)),
            name="merge.writeback")
        # Phase-2 templates per level: the two input runs step one line
        # per iteration while the output steps two, so the line is split
        # into a consume block and an emit block with separate offsets.
        merge_templates = []
        level_src, level_dst = buf_a, buf_b
        for level in range(levels):
            level_run_bytes = (chunk_keys << level) * WORD_BYTES
            consume = block(
                load(level_src, LINE_BYTES),
                load(level_src + level_run_bytes, LINE_BYTES),
                compute(2 * merge_line, l1_accesses=merge_line),
                name="merge.consume")
            emit = block(
                out_store(level_dst, LINE_BYTES),
                out_store(level_dst + LINE_BYTES, LINE_BYTES),
                name="merge.emit")
            merge_templates.append((consume, emit))
            level_src, level_dst = level_dst, level_src

        def make_thread(env: Env):
            core = env.core_id
            # Phase 1: quicksort chunks in place (cache-resident working
            # set).  One two-lane phase covers the whole strip: iteration
            # c replays the sort sweep then the writeback sweep at chunk
            # c's offset.
            start, count = partition(n_chunks, num_cores, core)
            if count:
                yield phase(
                    (chunk_read, start * chunk_bytes, chunk_bytes),
                    (chunk_write, start * chunk_bytes, chunk_bytes),
                    count=count, name="merge.qsort").op()
            yield barrier_wait(barrier)
            # Phase 2: merge runs with halving parallelism, ping-pong buffers.
            for level in range(levels):
                run_keys = chunk_keys << level
                run_bytes = run_keys * WORD_BYTES
                run_lines = run_bytes // LINE_BYTES
                n_tasks = n_keys // (2 * run_keys)
                consume, emit = merge_templates[level]
                for task in range(core, n_tasks, num_cores):
                    # Consume one line from each run per iteration, emit
                    # two output lines: a two-lane phase whose input lane
                    # steps one line while the output lane steps two.
                    task_base = task * 2 * run_bytes
                    yield phase(
                        (consume, task_base, LINE_BYTES),
                        (emit, task_base, 2 * LINE_BYTES),
                        count=run_lines, name="merge.task").op()
                yield barrier_wait(barrier)

        return Program("merge", [make_thread] * num_cores, arena)

    def _build_streaming(self, config: MachineConfig, params: dict) -> Program:
        arena, buf_a, buf_b = self._layout(params)
        num_cores = config.num_cores
        barrier = Barrier(num_cores, "merge.level")
        n_keys = params["n_keys"]
        chunk_keys = params["chunk_keys"]
        chunk_bytes = chunk_keys * WORD_BYTES
        levels = self._levels(n_keys, chunk_keys)
        n_chunks = n_keys // chunk_keys
        block_keys = params["block_keys"]
        block_bytes = block_keys * WORD_BYTES
        qsort_block = params["qsort_cycles_per_key"] * block_keys
        merge_block = (
            params["merge_cycles_per_key"] + params["stream_extra_cycles"]
        ) * block_keys

        def make_thread(env: Env):
            core = env.core_id
            ls = env.local_store
            buf_in_a = ls.alloc(block_bytes, "in_a")
            buf_in_b = ls.alloc(block_bytes, "in_b")
            buf_out = ls.alloc(2 * block_bytes, "out")
            # Local-store kernels, cached per transfer size (the tail
            # block of a chunk or run may be short).
            sort_cache: dict[int, object] = {}
            merge_cache: dict[int, object] = {}

            def sort_kernel(size: int):
                tmpl = sort_cache.get(size)
                if tmpl is None:
                    cycles = qsort_block * size // block_bytes
                    tmpl = sort_cache[size] = block(
                        local_load(buf_in_a, size),
                        compute(cycles, l1_accesses=cycles // 2),
                        local_store(buf_in_a, size),
                        name="merge.sort_kernel")
                return tmpl

            def merge_kernel(size: int):
                tmpl = merge_cache.get(size)
                if tmpl is None:
                    cycles = merge_block * size // block_bytes
                    tmpl = merge_cache[size] = block(
                        local_load(buf_in_a, size),
                        local_load(buf_in_b, size),
                        compute(2 * cycles, l1_accesses=cycles),
                        local_store(buf_out, 2 * size),
                        name="merge.merge_kernel")
                return tmpl

            # Phase 1: sort chunks block by block inside the local store.
            start, count = partition(n_chunks, num_cores, core)
            for c in range(start, start + count):
                chunk_base = buf_a + c * chunk_bytes
                for off in range(0, chunk_bytes, block_bytes):
                    size = min(block_bytes, chunk_bytes - off)
                    yield dma_get(0, chunk_base + off, size)
                    yield dma_wait(0)
                    yield sort_kernel(size).at()
                    yield dma_put(1, chunk_base + off, size)
                yield dma_wait(1)
            yield barrier_wait(barrier)
            # Phase 2: merges, double-buffered block I/O — the next pair of
            # input blocks streams in while the current one merges.
            src, dst = buf_a, buf_b
            issued_2 = issued_3 = False
            for level in range(levels):
                run_keys = chunk_keys << level
                run_bytes = run_keys * WORD_BYTES
                n_tasks = n_keys // (2 * run_keys)
                blocks_per_run = max(1, run_bytes // block_bytes)
                size = min(block_bytes, run_bytes)
                work = [
                    (task, blk)
                    for task in range(core, n_tasks, num_cores)
                    for blk in range(blocks_per_run)
                ]

                def fetch(tag: int, item: tuple[int, int]):
                    task, blk = item
                    a_base = src + task * 2 * run_bytes
                    yield dma_get(tag, a_base + blk * size, size)
                    yield dma_get(tag, a_base + run_bytes + blk * size, size)

                # The level's whole merge loop is one stream descriptor:
                # iteration k prefetches input pair k+1 (two gets, one
                # per run half), waits for pair k, drains the reused put
                # tag, merges, and puts the doubled output block.
                if work:
                    yield from fetch(0, work[0])
                    get_tab = []
                    put_tab = []
                    for task, blk in work:
                        a_base = src + task * 2 * run_bytes
                        get_tab.append(
                            ((a_base + blk * size, size),
                             (a_base + run_bytes + blk * size, size)))
                        out_base = dst + task * 2 * run_bytes
                        put_tab.append(
                            ((out_base + 2 * blk * size, 2 * size),))
                    yield stream(
                        stream_get(0, tuple(get_tab), ahead=1),
                        stream_wait(0),
                        stream_wait(2, first=2),
                        stream_kernel((merge_kernel(size),) * len(work)),
                        stream_put(2, tuple(put_tab)),
                        count=len(work), name="merge.level").op()
                # Tags 2/3 only exist once an even/odd iteration has put;
                # waiting on a never-issued tag is an error.
                if work:
                    issued_2 = True
                    if len(work) >= 2:
                        issued_3 = True
                if issued_2:
                    yield dma_wait(2)
                if issued_3:
                    yield dma_wait(3)
                yield barrier_wait(barrier)
                src, dst = dst, src

        return Program("merge", [make_thread] * num_cores, arena)
