"""FIR filter (Table 3: 16 taps, 2^20 32-bit samples in the paper).

The filter is parallelized across long strips of samples (Section 4.2).
It performs a small computation per input element and is the paper's
canonical *bandwidth-sensitive* application:

* the cache-coherent variant streams the input through the L1 and writes
  a disjoint output stream — every output line suffers a superfluous
  write-allocate refill, so CC moves ~1.5x the bytes of streaming
  (Figure 3) and saturates the memory channel first as the core clock
  scales (Figure 5) or bandwidth shrinks (Figure 6),
* the streaming variant double-buffers 128-element DMA blocks and pays
  ~14% more instructions for DMA management (Section 5.1),
* "Prepare For Store" on the output stream restores traffic/energy
  parity for the cache model (Figure 8).

Build overrides: ``pfs=True`` selects the non-allocating-store variant;
``software_prefetch=True`` adds the hybrid-model bulk-prefetch primitive
(Section 7) to the cache-based code, double-buffering blocks into the
cache exactly as the streaming version double-buffers into its local
store.
"""

from __future__ import annotations

from repro.config import MachineConfig
from repro.core.ops import (
    barrier_wait,
    block,
    bulk_prefetch,
    compute,
    dma_get,
    dma_put,
    dma_wait,
    load,
    local_load,
    local_store,
    pfs_store,
    phase,
    store,
    stream,
    stream_get,
    stream_kernel,
    stream_put,
    stream_wait,
)
from repro.core.sync import Barrier
from repro.workloads.base import (
    LINE_BYTES,
    WORD_BYTES,
    WORDS_PER_LINE,
    Arena,
    Env,
    Program,
    Workload,
    partition,
    register,
)


@register
class FirWorkload(Workload):
    """16-tap FIR over long sample strips (see module docstring)."""

    incoherent_safe = True
    name = "fir"
    presets = {
        "default": {
            "n_samples": 1 << 19,
            "taps": 16,
            "cycles_per_sample": 60,
            "stream_extra_cycles": 8,
            "block_samples": 128,
            "pfs": False,
            "software_prefetch": False,
        },
        "small": {
            "n_samples": 1 << 16,
            "taps": 16,
            "cycles_per_sample": 60,
            "stream_extra_cycles": 8,
            "block_samples": 128,
            "pfs": False,
            "software_prefetch": False,
        },
        "tiny": {
            "n_samples": 1 << 12,
            "taps": 16,
            "cycles_per_sample": 60,
            "stream_extra_cycles": 8,
            "block_samples": 128,
            "pfs": False,
            "software_prefetch": False,
        },
    }

    def _layout(self, params: dict) -> tuple[Arena, int, int]:
        arena = Arena()
        nbytes = params["n_samples"] * WORD_BYTES
        input_base = arena.alloc(nbytes, "input")
        output_base = arena.alloc(nbytes, "output")
        return arena, input_base, output_base

    def _build_cached(self, config: MachineConfig, params: dict) -> Program:
        arena, input_base, output_base = self._layout(params)
        num_cores = config.num_cores
        finish = Barrier(num_cores, "fir.finish")
        n_lines = params["n_samples"] // WORDS_PER_LINE
        cycles_per_line = params["cycles_per_sample"] * WORDS_PER_LINE
        use_pfs = params["pfs"]
        store_op = pfs_store if use_pfs else store

        software_prefetch = params["software_prefetch"]
        block_bytes = params["block_samples"] * WORD_BYTES
        block_lines = block_bytes // LINE_BYTES

        # One template for the whole kernel, replayed per line with the
        # line offset (shared by all cores — blocks are immutable).
        line_block = block(
            load(input_base, LINE_BYTES),
            compute(cycles_per_line, l1_accesses=cycles_per_line // 2),
            store_op(output_base, LINE_BYTES),
            name="fir.line",
        )

        def make_thread(env: Env):
            start_line, count = partition(n_lines, num_cores, env.core_id)
            if software_prefetch:
                # Hybrid model (Section 7): bulk-prefetch the *next*
                # block into the cache while this one is processed, so
                # the strip phases in block_lines chunks around the
                # prefetch primitive.
                for chunk in range(start_line, start_line + count,
                                   block_lines):
                    offset = chunk * LINE_BYTES
                    next_block = offset + block_bytes
                    remaining = (start_line + count) * LINE_BYTES - next_block
                    if remaining > 0:
                        yield bulk_prefetch(input_base + next_block,
                                            min(block_bytes, remaining))
                    chunk_lines = min(block_lines, start_line + count - chunk)
                    yield phase((line_block, offset, LINE_BYTES),
                                count=chunk_lines, name="fir.strip").op()
            elif count:
                # The whole strip is one constant-stride phase: iteration
                # k replays the line kernel at (start_line + k) lines.
                yield phase((line_block, start_line * LINE_BYTES, LINE_BYTES),
                            count=count, name="fir.strip").op()
            yield barrier_wait(finish)

        return Program("fir", [make_thread] * num_cores, arena)

    def _build_streaming(self, config: MachineConfig, params: dict) -> Program:
        arena, input_base, output_base = self._layout(params)
        num_cores = config.num_cores
        finish = Barrier(num_cores, "fir.finish")
        block_samples = params["block_samples"]
        block_bytes = block_samples * WORD_BYTES
        n_blocks = -(-params["n_samples"] // block_samples)
        cycles_per_block = (
            params["cycles_per_sample"] + params["stream_extra_cycles"]
        ) * block_samples

        def make_thread(env: Env):
            start, count = partition(n_blocks, num_cores, env.core_id)
            if count == 0:
                yield barrier_wait(finish)
                return
            ls = env.local_store
            in_buf = [ls.alloc(block_bytes, f"in{i}") for i in range(2)]
            out_buf = [ls.alloc(block_bytes, f"out{i}") for i in range(2)]
            # The local-store kernel per parity, built once and replayed.
            kernel = [
                block(
                    local_load(in_buf[p], block_bytes),
                    compute(cycles_per_block,
                            l1_accesses=cycles_per_block // 2),
                    local_store(out_buf[p], block_bytes),
                    name=f"fir.block{p}",
                )
                for p in range(2)
            ]

            def block_addr(index: int) -> int:
                return input_base + index * block_bytes

            # The double-buffer loop as one stream descriptor: iteration
            # k prefetches block k+1 (ping-pong tag k+1 & 1, skipped on
            # the last iteration), waits for block k, drains the output
            # buffer it reuses (tag 2 + parity, first issued at k=2),
            # runs the parity kernel, and puts block k back.
            loop = stream(
                stream_get(0, tuple(
                    ((block_addr(start + j), block_bytes),)
                    for j in range(count)), ahead=1),
                stream_wait(0),
                stream_wait(2, first=2),
                stream_kernel(tuple(kernel[k & 1] for k in range(count))),
                stream_put(2, tuple(
                    ((output_base + (start + k) * block_bytes, block_bytes),)
                    for k in range(count))),
                count=count, name="fir.loop")

            # Prologue: fetch the first block.
            yield dma_get(0, block_addr(start), block_bytes)
            yield loop.op()
            yield dma_wait(2)
            if count > 1:       # tag 3 first issues on the second block
                yield dma_wait(3)
            yield barrier_wait(finish)

        return Program("fir", [make_thread] * num_cores, arena)
