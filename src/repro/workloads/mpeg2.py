"""MPEG-2 video encoder (Section 4.2, Figures 2-5, 8, 9).

Parallelized at the macroblock level with dynamic task-queue assignment.
Per macroblock the encoder reads the current 16x16 block (luma + 4:2:0
chroma), a +/-16-pixel motion-search window from the reference frame,
performs motion estimation / DCT / quantization / reconstruction fused
into one pass (the *stream-programmed* structure of Section 6), and
writes the reconstructed macroblock — an output-only stream that suffers
superfluous write-allocate refills on the cache model (fixed by PFS,
Figure 8) — plus a small bitstream.

Variants:

* ``structure="fused"`` (default) — the stream-optimized code of Figure 9
  ("...we execute all tasks on a block of a frame before moving to the
  next block"), with a slightly higher I-cache miss rate (the fused loop
  body overflows the 16 KB I-cache; Section 6),
* ``structure="original"`` — the original parallel code from the ALP
  suite [28]: each kernel (motion estimation, DCT, quantization,
  reconstruction, VLC) sweeps the *whole frame* before the next starts,
  streaming frame-sized temporaries between passes with barriers.

The streaming-memory variant DMAs macroblocks and window columns with
strided transfers and double-buffers the next macroblock during the
current one's computation — the macroscopic prefetching that makes it 9%
faster at 6.4 GHz (Section 5.3).
"""

from __future__ import annotations

from repro.config import MachineConfig
from repro.core.ops import (
    barrier_wait,
    compute,
    dma_get,
    dma_put,
    dma_wait,
    icache_miss,
    load,
    local_load,
    local_store,
    pfs_store,
    store,
    task_pop,
)
from repro.core.sync import Barrier, TaskQueue
from repro.workloads.base import (
    Arena,
    Env,
    Program,
    Workload,
    register,
)

MB = 16  # macroblock edge, pixels


@register
class Mpeg2Workload(Workload):
    """MPEG-2 encoder: macroblock task queue, fused or per-kernel
    structure, PFS and streaming variants (see module docstring)."""

    name = "mpeg2"
    presets = {
        "default": {
            "width": 352,
            "height": 288,
            "frames": 3,
            "mb_cycles": 40000,
            "structure": "fused",
            "pfs": False,
            "icache_miss_per_mb": 1,
            "search_range": 16,
        },
        "small": {
            "width": 176,
            "height": 144,
            "frames": 3,
            "mb_cycles": 40000,
            "structure": "fused",
            "pfs": False,
            "icache_miss_per_mb": 1,
            "search_range": 16,
        },
        "tiny": {
            "width": 64,
            "height": 48,
            "frames": 2,
            "mb_cycles": 4000,
            "structure": "fused",
            "pfs": False,
            "icache_miss_per_mb": 1,
            "search_range": 16,
        },
    }

    def _geometry(self, params: dict):
        width, height = params["width"], params["height"]
        if width % MB or height % MB:
            raise ValueError(f"frame {width}x{height} not macroblock aligned")
        return width // MB, height // MB

    def _frames_layout(self, arena: Arena, params: dict):
        """Per-frame buffers.

        Every input frame is a *distinct* buffer (reading a video stream
        is compulsory traffic — reusing one buffer would let the L2 serve
        frames 2..N for free), and the reference for frame *f* is the
        reconstruction of frame *f-1*, ping-ponged between two buffers.
        Returns (curs, refs, recons, bits) with one entry per frame.
        """
        width, height = params["width"], params["height"]
        frame_bytes = width * height * 3 // 2
        curs = [
            arena.alloc(frame_bytes, f"current{f}")
            for f in range(params["frames"])
        ]
        recon_a = arena.alloc(frame_bytes, "recon_a")
        recon_b = arena.alloc(frame_bytes, "recon_b")
        initial_ref = arena.alloc(frame_bytes, "initial_ref")
        recons = [(recon_a, recon_b)[f % 2] for f in range(params["frames"])]
        refs = [initial_ref] + recons[:-1]
        mbs = (width // MB) * (height // MB)
        bits = arena.alloc(mbs * 8 * params["frames"], "bitstream")
        return curs, refs, recons, bits

    # ------------------------------------------------------------------
    # Cache-coherent variants
    # ------------------------------------------------------------------

    def _build_cached(self, config: MachineConfig, params: dict) -> Program:
        if params["structure"] == "fused":
            return self._build_cached_fused(config, params)
        if params["structure"] == "original":
            return self._build_cached_original(config, params)
        raise ValueError(f"unknown structure {params['structure']!r}")

    def _mb_loads_cached(self, params: dict, cur: int, ref: int,
                         mbx: int, mby: int):
        """Loads for one macroblock: current block plus the search window."""
        width = params["width"]
        rng = params["search_range"]
        luma = width * params["height"]
        # Current macroblock: 16 luma rows + 8 interleaved-chroma rows of 16 B.
        for r in range(MB):
            yield load(cur + (mby * MB + r) * width + mbx * MB, MB, accesses=4)
        for r in range(MB // 2):
            yield load(cur + luma + (mby * MB // 2 + r) * width + mbx * MB,
                       MB, accesses=4)
        # Reference window rows: (16+2*rng) wide, clamped to the frame.
        win_w = MB + 2 * rng
        x0 = min(max(0, mbx * MB - rng), width - win_w)
        for r in range(-rng, MB + rng):
            ry = min(max(0, mby * MB + r), params["height"] - 1)
            yield load(ref + ry * width + x0, win_w, accesses=win_w // 4)

    def _mb_stores_cached(self, params: dict, recon: int, bits: int,
                          mbx: int, mby: int, store_op):
        width = params["width"]
        luma = width * params["height"]
        mbs_x = width // MB
        for r in range(MB):
            yield store_op(recon + (mby * MB + r) * width + mbx * MB,
                           MB, accesses=4)
        for r in range(MB // 2):
            yield store_op(recon + luma + (mby * MB // 2 + r) * width + mbx * MB,
                           MB, accesses=4)
        # Small bitstream append (sequential, shared region written in turns).
        yield store(bits + (mby * mbs_x + mbx) * 8, 8, accesses=2)

    @staticmethod
    def _segments(mbs_x: int, mbs_y: int) -> list[tuple[int, int, int]]:
        """Task-queue granules: half-row segments of adjacent macroblocks.

        Assigning *chunks* of adjacent macroblocks preserves the
        horizontal search-window overlap inside one core's cache (the
        locality-aware scheduling the paper applies to both models);
        single-macroblock tasks would scatter neighbours across cores and
        re-fetch the whole window per macroblock.
        """
        half = max(2, mbs_x // 4)
        segments = []
        for y in range(mbs_y):
            for x0 in range(0, mbs_x, half):
                segments.append((y, x0, min(mbs_x, x0 + half)))
        return segments

    def _build_cached_fused(self, config: MachineConfig, params: dict) -> Program:
        arena = Arena()
        curs, refs, recons, bits = self._frames_layout(arena, params)
        mbs_x, mbs_y = self._geometry(params)
        num_cores = config.num_cores
        frame_barrier = Barrier(num_cores, "mpeg2.frame")
        segments = self._segments(mbs_x, mbs_y)
        queues = [
            TaskQueue(list(segments), name=f"mpeg2.f{f}")
            for f in range(params["frames"])
        ]
        store_op = pfs_store if params["pfs"] else store
        imiss = params["icache_miss_per_mb"]
        mb_cycles = params["mb_cycles"]
        n_mbs = mbs_x * mbs_y

        def make_thread(env: Env):
            for frame, queue in enumerate(queues):
                cur, ref, recon = curs[frame], refs[frame], recons[frame]
                bits_base = bits + frame * n_mbs * 8
                while True:
                    task = yield task_pop(queue)
                    if task is None:
                        break
                    mby, x_first, x_last = task
                    for mbx in range(x_first, x_last):
                        yield from self._mb_loads_cached(
                            params, cur, ref, mbx, mby)
                        # The fused kernel: ME + DCT + quant + reconstruct
                        # on stack-resident temporaries (contracted arrays).
                        yield compute(mb_cycles, l1_accesses=mb_cycles // 2)
                        if imiss:
                            yield icache_miss(imiss)
                        yield from self._mb_stores_cached(
                            params, recon, bits_base, mbx, mby, store_op)
                yield barrier_wait(frame_barrier)

        return Program("mpeg2", [make_thread] * num_cores, arena)

    def _build_cached_original(self, config: MachineConfig, params: dict) -> Program:
        """Kernel-per-frame structure: whole-frame passes with temporaries."""
        arena = Arena()
        curs, refs, recons, bits = self._frames_layout(arena, params)
        width, height = params["width"], params["height"]
        luma = width * height
        # Frame-sized 16-bit temporaries between kernels (predicted block,
        # DCT coefficients, quantized coefficients).
        pred = arena.alloc(2 * luma, "pred")
        coeff = arena.alloc(2 * luma, "coeff")
        qcoeff = arena.alloc(2 * luma, "qcoeff")
        mbs_x, mbs_y = self._geometry(params)
        num_cores = config.num_cores
        barrier = Barrier(num_cores, "mpeg2.pass")
        mb_cycles = params["mb_cycles"]
        #: (reads, writes, fraction of the per-MB compute) for each kernel.
        kernels = [
            (("cur+ref",), ("pred",), 0.45),   # motion estimation
            (("cur", "pred"), ("coeff",), 0.20),
            (("coeff",), ("qcoeff",), 0.10),   # quantization
            (("qcoeff", "pred"), ("recon",), 0.15),
            (("qcoeff",), ("bits",), 0.10),    # VLC
        ]
        regions = {"pred": (pred, 2), "coeff": (coeff, 2),
                   "qcoeff": (qcoeff, 2)}

        def make_thread(env: Env):
            core = env.core_id
            my_rows = range(core, mbs_y, num_cores)
            n_mbs = mbs_x * mbs_y
            for frame in range(params["frames"]):
                cur, ref, recon = curs[frame], refs[frame], recons[frame]
                # Thread-local view: the shared `regions` table plus the
                # frame's own buffers.
                frame_regions = dict(regions,
                                     cur=(cur, 1), recon=(recon, 1))
                bits_base = bits + frame * n_mbs * 8
                for reads, writes, frac in kernels:
                    cycles_mb = max(1, int(mb_cycles * frac))
                    for mby in my_rows:
                        for mbx in range(mbs_x):
                            for tag in reads:
                                if tag == "cur+ref":
                                    gen = self._mb_loads_cached(
                                        params, cur, ref, mbx, mby)
                                    yield from gen
                                else:
                                    base, scale = frame_regions[tag]
                                    for r in range(MB):
                                        addr = base + scale * (
                                            (mby * MB + r) * width + mbx * MB)
                                        yield load(addr, scale * MB,
                                                   accesses=scale * 4)
                            yield compute(cycles_mb, l1_accesses=cycles_mb // 2)
                            for tag in writes:
                                if tag == "bits":
                                    yield store(
                                        bits_base + (mby * mbs_x + mbx) * 8,
                                        8, accesses=2)
                                    continue
                                base, scale = frame_regions[tag]
                                for r in range(MB):
                                    addr = base + scale * (
                                        (mby * MB + r) * width + mbx * MB)
                                    yield store(addr, scale * MB,
                                                accesses=scale * 4)
                    yield barrier_wait(barrier)

        return Program("mpeg2", [make_thread] * num_cores, arena)

    # ------------------------------------------------------------------
    # Streaming variant
    # ------------------------------------------------------------------

    def _build_streaming(self, config: MachineConfig, params: dict) -> Program:
        arena = Arena()
        curs, refs, recons, bits = self._frames_layout(arena, params)
        mbs_x, mbs_y = self._geometry(params)
        width = params["width"]
        luma = width * params["height"]
        num_cores = config.num_cores
        frame_barrier = Barrier(num_cores, "mpeg2.frame")
        segments = self._segments(mbs_x, mbs_y)
        queues = [
            TaskQueue(list(segments), name=f"mpeg2.f{f}")
            for f in range(params["frames"])
        ]
        rng = params["search_range"]
        mb_cycles = params["mb_cycles"]
        win_h = MB + 2 * rng
        mb_luma_bytes = MB * MB
        mb_chroma_bytes = MB * MB // 2
        col_bytes = win_h * MB          # one new 16-wide window column
        out_bytes = mb_luma_bytes + mb_chroma_bytes

        def fetch_mb(cur: int, ref: int, tag: int, mbx: int, mby: int,
                     prime: bool):
            """Strided DMA: current MB rows, chroma rows, and the reference
            window — the full window when ``prime`` (first MB of a
            segment), otherwise just the new 16-wide column (the software
            sliding window that gives streaming its minimal traffic)."""
            yield dma_get(tag, cur + (mby * MB) * width + mbx * MB,
                          mb_luma_bytes, stride=width, block=MB)
            yield dma_get(tag, cur + luma + (mby * MB // 2) * width + mbx * MB,
                          mb_chroma_bytes, stride=width, block=MB)
            y0 = min(max(0, mby * MB - rng), params["height"] - win_h)
            if prime:
                win_w = MB + 2 * rng
                x0 = min(max(0, mbx * MB - rng), width - win_w)
                yield dma_get(tag, ref + y0 * width + x0,
                              win_h * win_w, stride=width, block=win_w)
            else:
                x0 = min(max(0, mbx * MB + rng), width - MB)
                yield dma_get(tag, ref + y0 * width + x0,
                              col_bytes, stride=width, block=MB)

        def make_thread(env: Env):
            ls = env.local_store
            # Double-buffered input (current MB + window column) and output.
            in_bytes = mb_luma_bytes + mb_chroma_bytes + col_bytes
            in_buf = [ls.alloc(in_bytes, f"in{i}") for i in range(2)]
            out_buf = [ls.alloc(out_bytes, f"out{i}") for i in range(2)]
            window = ls.alloc(win_h * 2 * rng, "window")
            issued_4 = issued_5 = False
            for frame, queue in enumerate(queues):
                cur, ref, recon = curs[frame], refs[frame], recons[frame]
                bits_base = bits + frame * mbs_x * mbs_y * 8
                segment = yield task_pop(queue)
                mbs: list[tuple[int, int, bool]] = []

                def extend(seg):
                    mby, x_first, x_last = seg
                    mbs.extend(
                        (x, mby, x == x_first) for x in range(x_first, x_last)
                    )

                if segment is not None:
                    extend(segment)
                    yield from fetch_mb(cur, ref, 0, *mbs[0])
                index = 0
                while index < len(mbs):
                    parity = index & 1
                    if index + 1 >= len(mbs):
                        next_segment = yield task_pop(queue)
                        if next_segment is not None:
                            extend(next_segment)
                    if index + 1 < len(mbs):
                        # Macroscopic prefetch of the next macroblock.
                        yield from fetch_mb(cur, ref, (index + 1) & 1,
                                            *mbs[index + 1])
                    yield dma_wait(parity)
                    if index >= 2:
                        yield dma_wait(4 + parity)
                    yield local_load(in_buf[parity], in_bytes)
                    yield local_load(window, win_h * 2 * rng,
                                     accesses=win_h * rng // 2)
                    yield compute(mb_cycles, l1_accesses=mb_cycles // 2)
                    yield local_store(out_buf[parity], out_bytes)
                    mbx, mby, _ = mbs[index]
                    yield dma_put(4 + parity,
                                  recon + (mby * MB) * width + mbx * MB,
                                  mb_luma_bytes, stride=width, block=MB)
                    yield dma_put(4 + parity,
                                  recon + luma + (mby * MB // 2) * width + mbx * MB,
                                  mb_chroma_bytes, stride=width, block=MB)
                    yield dma_put(4 + parity,
                                  bits_base + (mby * mbs_x + mbx) * 8, 8)
                    index += 1
                # Tag 4 first issues on an even macroblock, tag 5 on an
                # odd one; waiting on a never-issued tag is an error.
                if mbs:
                    issued_4 = True
                    if len(mbs) >= 2:
                        issued_5 = True
                if issued_4:
                    yield dma_wait(4)
                if issued_5:
                    yield dma_wait(5)
                yield barrier_wait(frame_barrier)

        return Program("mpeg2", [make_thread] * num_cores, arena)
