"""The eleven applications of the paper (Table 3), in both memory models.

Every workload builds a :class:`~repro.workloads.base.Program` for either
the cache-coherent or the streaming model.  The two variants perform the
same logical work with the same data-locality optimizations (blocking,
producer-consumer fusion, locality-aware scheduling), differing only in
how data moves — mirroring the paper's methodology (Section 4.2).

MPEG-2 and 179.art additionally provide the *unoptimized* ("original")
cache-based variants used by Figures 9 and 10 to isolate the value of
stream programming on cache-based hardware.
"""

from repro.workloads.base import (
    Arena,
    Env,
    Program,
    Workload,
    WorkloadParams,
    get_workload,
    register,
    workload_names,
)
from repro.workloads import (  # noqa: F401  (registration side effects)
    art,
    depth,
    fem,
    fir,
    h264,
    jpeg,
    mpeg2,
    raytracer,
    sorts,
)

__all__ = [
    "Arena",
    "Env",
    "Program",
    "Workload",
    "WorkloadParams",
    "get_workload",
    "register",
    "workload_names",
]
