"""JPEG encode and decode (IJG release 6b in the paper, Section 4.2).

Both are parallelized *across input images*, "in a manner similar to that
done by an image thumbnail browser" — a task queue of independent images.
Their memory behaviour is mirrored (Section 4.2):

* **Encode** reads a lot of pixel data and writes a small compressed
  stream: read-dominated off-chip traffic.
* **Decode** reads a small compressed stream and writes full images: a
  large *output-only* stream, so the cache model pays superfluous
  write-allocate refills and streaming saves 10-25% energy (Figure 4's
  class; Section 5.2).

Per 8x8 block the DCT/quant (or dequant/IDCT) kernel is a few hundred
VLIW cycles; images are swept in 8-row bands so horizontally adjacent
blocks share cache lines.
"""

from __future__ import annotations

from repro.config import MachineConfig
from repro.core.ops import (
    barrier_wait,
    compute,
    dma_get,
    dma_put,
    dma_wait,
    load,
    local_load,
    local_store,
    pfs_store,
    store,
    task_pop,
)
from repro.core.sync import Barrier, TaskQueue
from repro.workloads.base import (
    Arena,
    Env,
    Program,
    Workload,
    register,
)

BLOCK = 8  # JPEG block edge, pixels


class _JpegBase(Workload):
    """Shared structure for the encoder and decoder."""

    #: True for the encoder (big reads, small writes); False for decode.
    encode = True

    def _layout(self, params: dict):
        arena = Arena()
        img_bytes = params["img_w"] * params["img_h"]
        comp_bytes = max(BLOCK * BLOCK, img_bytes // params["compression"])
        pixels = arena.alloc(img_bytes * params["images"], "pixels")
        compressed = arena.alloc(comp_bytes * params["images"], "compressed")
        return arena, pixels, compressed, img_bytes, comp_bytes

    def _build_cached(self, config: MachineConfig, params: dict) -> Program:
        arena, pixels, compressed, img_bytes, comp_bytes = self._layout(params)
        num_cores = config.num_cores
        finish = Barrier(num_cores, "jpeg.finish")
        queue = TaskQueue(list(range(params["images"])), name="jpeg.images")
        img_w, img_h = params["img_w"], params["img_h"]
        blocks_per_band = img_w // BLOCK
        band_cycles = params["block_cycles"] * blocks_per_band
        encode = self.encode
        use_pfs = params["pfs"] and not encode
        pixel_store = pfs_store if use_pfs else store

        def make_thread(env: Env):
            while True:
                image = yield task_pop(queue)
                if image is None:
                    break
                pix_base = pixels + image * img_bytes
                comp_base = compressed + image * comp_bytes
                comp_per_band = comp_bytes // (img_h // BLOCK)
                for band in range(img_h // BLOCK):
                    band_base = pix_base + band * BLOCK * img_w
                    if encode:
                        for r in range(BLOCK):
                            yield load(band_base + r * img_w, img_w)
                        yield compute(band_cycles,
                                      l1_accesses=band_cycles // 2)
                        yield store(comp_base + band * comp_per_band,
                                    comp_per_band)
                    else:
                        yield load(comp_base + band * comp_per_band,
                                   comp_per_band)
                        yield compute(band_cycles,
                                      l1_accesses=band_cycles // 2)
                        for r in range(BLOCK):
                            yield pixel_store(band_base + r * img_w, img_w)
            yield barrier_wait(finish)

        return Program(self.name, [make_thread] * num_cores, arena)

    def _build_streaming(self, config: MachineConfig, params: dict) -> Program:
        arena, pixels, compressed, img_bytes, comp_bytes = self._layout(params)
        num_cores = config.num_cores
        finish = Barrier(num_cores, "jpeg.finish")
        queue = TaskQueue(list(range(params["images"])), name="jpeg.images")
        img_w, img_h = params["img_w"], params["img_h"]
        blocks_per_band = img_w // BLOCK
        band_cycles = (params["block_cycles"] + params["stream_extra_cycles"]) \
            * blocks_per_band
        band_bytes = BLOCK * img_w
        encode = self.encode

        def make_thread(env: Env):
            ls = env.local_store
            band_buf = [ls.alloc(band_bytes, f"band{i}") for i in range(2)]
            comp_buf = ls.alloc(max(64, comp_bytes // (img_h // BLOCK)), "comp")
            n_bands = img_h // BLOCK
            comp_per_band = comp_bytes // n_bands
            while True:
                image = yield task_pop(queue)
                if image is None:
                    break
                pix_base = pixels + image * img_bytes
                comp_base = compressed + image * comp_bytes
                if encode:
                    # Double-buffer pixel bands in; small compressed puts out.
                    yield dma_get(0, pix_base, band_bytes)
                    for band in range(n_bands):
                        parity = band & 1
                        if band + 1 < n_bands:
                            yield dma_get((band + 1) & 1,
                                          pix_base + (band + 1) * band_bytes,
                                          band_bytes)
                        yield dma_wait(parity)
                        yield local_load(band_buf[parity], band_bytes)
                        yield compute(band_cycles,
                                      l1_accesses=band_cycles // 2)
                        yield local_store(comp_buf, comp_per_band)
                        yield dma_put(2, comp_base + band * comp_per_band,
                                      comp_per_band)
                    yield dma_wait(2)
                else:
                    # Small compressed gets in; double-buffer pixel bands out.
                    for band in range(n_bands):
                        parity = band & 1
                        yield dma_get(parity, comp_base + band * comp_per_band,
                                      comp_per_band)
                        yield dma_wait(parity)
                        if band >= 2:
                            yield dma_wait(2 + parity)
                        yield local_load(comp_buf, comp_per_band)
                        yield compute(band_cycles,
                                      l1_accesses=band_cycles // 2)
                        yield local_store(band_buf[parity], band_bytes)
                        yield dma_put(2 + parity,
                                      pix_base + band * band_bytes, band_bytes)
                    yield dma_wait(2)
                    yield dma_wait(3)
            yield barrier_wait(finish)

        return Program(self.name, [make_thread] * num_cores, arena)


_COMMON = {
    "img_w": 128,
    "img_h": 128,
    "compression": 10,
    "stream_extra_cycles": 20,
    "pfs": False,
}


@register
class JpegEncodeWorkload(_JpegBase):
    """JPEG encode: read-heavy image compression (module docstring)."""

    incoherent_safe = True
    name = "jpeg_enc"
    encode = True
    presets = {
        "default": dict(_COMMON, images=48, block_cycles=400),
        "small": dict(_COMMON, images=12, block_cycles=400),
        "tiny": dict(_COMMON, images=3, block_cycles=200, img_w=64, img_h=64),
    }


@register
class JpegDecodeWorkload(_JpegBase):
    """JPEG decode: write-heavy decompression (module docstring)."""

    incoherent_safe = True
    name = "jpeg_dec"
    encode = False
    presets = {
        "default": dict(_COMMON, images=48, block_cycles=400),
        "small": dict(_COMMON, images=12, block_cycles=400),
        "tiny": dict(_COMMON, images=3, block_cycles=200, img_w=64, img_h=64),
    }
