"""Workload abstractions: programs, environments, and the registry.

A :class:`Workload` knows how to build a :class:`Program` — one operation
generator per core — for either memory model at a given problem scale.
Workloads are registered by name (``fir``, ``mpeg2``, ...) so the harness
and the examples can look them up.

Scaling: the paper's exact datasets (10 CIF frames, 2 MB sort keys, SPEC
reference inputs) would take hours in a Python event simulator, so every
workload exposes *presets*:

* ``default`` — the benchmark scale; big enough that working sets exceed
  the 512 KB L2 where the paper's behaviour depends on it,
* ``small`` — a faster scale for smoke benchmarks,
* ``tiny`` — seconds-fast, for the test suite.

Per-preset parameters live in each workload's ``presets`` table and can
be overridden individually through ``build(..., overrides={...})``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.config import MachineConfig, MemoryModel

#: Word size assumed by access-count defaults.
WORD_BYTES = 4
LINE_BYTES = 32
WORDS_PER_LINE = LINE_BYTES // WORD_BYTES


class Arena:
    """A bump allocator laying out a workload's arrays in the address space.

    Addresses start above zero so that line number 0 is never used (it
    would make bugs involving default-zero addresses invisible).
    """

    def __init__(self, base: int = 0x1_0000) -> None:
        self._next = base
        self.regions: dict[str, tuple[int, int]] = {}

    def alloc(self, nbytes: int, name: str, align: int = LINE_BYTES) -> int:
        """Reserve ``nbytes``; returns the line-aligned base address."""
        if nbytes <= 0:
            raise ValueError(f"{name}: allocation must be positive, got {nbytes}")
        if align & (align - 1):
            raise ValueError(f"{name}: alignment must be a power of two, got {align}")
        base = (self._next + align - 1) & ~(align - 1)
        self._next = base + nbytes
        self.regions[name] = (base, nbytes)
        return base

    def contains(self, addr: int, nbytes: int = 1) -> bool:
        """True if [addr, addr+nbytes) falls inside some allocated region."""
        for base, size in self.regions.values():
            if base <= addr and addr + nbytes <= base + size:
                return True
        return False

    @property
    def total_bytes(self) -> int:
        """Bytes across all allocated regions."""
        return sum(size for _, size in self.regions.values())


class Env:
    """Per-thread environment handed to a thread factory at bind time."""

    def __init__(self, core_id: int, system) -> None:
        self.core_id = core_id
        self.system = system
        self.config: MachineConfig = system.config
        self.model: MemoryModel = system.config.model
        stores = getattr(system.hierarchy, "local_stores", None)
        self.local_store = stores[core_id] if stores is not None else None


ThreadFactory = Callable[[Env], Iterator[tuple]]


class Program:
    """One generator-producing factory per core, plus shared metadata."""

    def __init__(self, name: str, factories: list[ThreadFactory],
                 arena: Arena | None = None) -> None:
        if not factories:
            raise ValueError(f"program {name!r} has no threads")
        self.name = name
        self.factories = factories
        self.arena = arena or Arena()

    @property
    def num_threads(self) -> int:
        """Number of per-core thread factories."""
        return len(self.factories)

    def threads(self, system) -> list[Iterator[tuple]]:
        """Bind the program to a system: instantiate one generator per core."""
        return [
            factory(Env(core_id, system))
            for core_id, factory in enumerate(self.factories)
        ]

    def introspect_threads(self, config: MachineConfig,
                           local_stores: list | None = None
                           ) -> list[Iterator[tuple]]:
        """Bind the program for symbolic inspection — no simulator needed.

        Instantiates one generator per core against a stand-in system
        that exposes only what :class:`Env` reads: ``config`` and
        per-core local stores.  ``local_stores`` must supply one object
        per core implementing the :class:`~repro.mem.local_store.
        LocalStore` allocation surface (``alloc``/``reset``/
        ``allocated_bytes``) for streaming programs; cache-coherent
        programs pass ``None`` and bind with ``env.local_store`` None,
        exactly as on a real CC hierarchy.

        The static dataflow auditor (:mod:`repro.analysis.dataflow`)
        walks these generators to extract address footprints without
        charging any time.
        """
        return self.threads(IntrospectionSystem(config, local_stores))


class IntrospectionSystem:
    """A stand-in for :class:`~repro.core.system.CmpSystem` at bind time.

    Thread factories only dereference ``system.config`` and
    ``system.hierarchy.local_stores`` (via :class:`Env`); this object
    provides exactly those, so programs can be instantiated and walked
    symbolically without building caches, DMA engines, or a simulator.
    """

    class _Hierarchy:
        def __init__(self, local_stores: list | None) -> None:
            self.local_stores = local_stores

    def __init__(self, config: MachineConfig,
                 local_stores: list | None = None) -> None:
        self.config = config
        self.hierarchy = IntrospectionSystem._Hierarchy(local_stores)


@dataclass(frozen=True)
class WorkloadParams:
    """Marker base class for per-workload parameter dataclasses."""


class Workload(abc.ABC):
    """A paper application, buildable for either memory model."""

    #: Registry name, e.g. ``"fir"``.
    name: str = ""
    #: Preset name -> dict of parameter overrides applied to the defaults.
    presets: dict[str, dict] = {}
    #: True when the cache-based parallelization writes disjoint cache
    #: lines between synchronization points, making it valid on the
    #: *incoherent* cache model (Table 1's third option) without extra
    #: flush/invalidate operations.
    incoherent_safe: bool = False

    def build(self, model: MemoryModel | str, config: MachineConfig,
              preset: str = "default", overrides: dict | None = None) -> Program:
        """Build a :class:`Program` for ``config.num_cores`` threads."""
        model = MemoryModel.parse(model)
        if preset not in self.presets:
            raise KeyError(
                f"{self.name}: unknown preset {preset!r}; "
                f"available: {sorted(self.presets)}"
            )
        params = dict(self.presets[preset])
        if overrides:
            unknown = set(overrides) - set(params)
            if unknown:
                raise KeyError(f"{self.name}: unknown parameters {sorted(unknown)}")
            params.update(overrides)
        if model is MemoryModel.STREAMING:
            return self._build_streaming(config, params)
        if model is MemoryModel.INCOHERENT and not self.incoherent_safe:
            raise ValueError(
                f"{self.name}: threads share cache lines between "
                "synchronization points; running it on incoherent caches "
                "would be incorrect on real hardware"
            )
        return self._build_cached(config, params)

    @abc.abstractmethod
    def _build_cached(self, config: MachineConfig, params: dict) -> Program:
        """The cache-coherent variant."""

    @abc.abstractmethod
    def _build_streaming(self, config: MachineConfig, params: dict) -> Program:
        """The streaming-memory variant."""


_REGISTRY: dict[str, Workload] = {}


def register(workload_cls: type[Workload]) -> type[Workload]:
    """Class decorator registering a workload under its ``name``."""
    if not workload_cls.name:
        raise ValueError(f"{workload_cls.__name__} has no name")
    if workload_cls.name in _REGISTRY:
        raise ValueError(f"duplicate workload name {workload_cls.name!r}")
    _REGISTRY[workload_cls.name] = workload_cls()
    return workload_cls


def get_workload(name: str) -> Workload:
    """Look up a registered workload by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def workload_names() -> list[str]:
    """All registered workload names, sorted."""
    return sorted(_REGISTRY)


# ----------------------------------------------------------------------
# Emission helpers shared by the workload implementations
# ----------------------------------------------------------------------

def partition(total: int, parts: int, index: int) -> tuple[int, int]:
    """Split ``total`` items into ``parts`` contiguous shares.

    Returns ``(start, count)`` for share ``index``; earlier shares get the
    remainder, so shares differ in size by at most one.
    """
    if parts <= 0 or not 0 <= index < parts:
        raise ValueError(f"bad partition request parts={parts} index={index}")
    base = total // parts
    extra = total % parts
    count = base + (1 if index < extra else 0)
    start = index * base + min(index, extra)
    return start, count


def line_span(addr: int, nbytes: int) -> int:
    """Number of cache lines [addr, addr+nbytes) touches."""
    first = addr // LINE_BYTES
    last = (addr + nbytes - 1) // LINE_BYTES
    return last - first + 1
