"""KD-tree ray tracer (Section 4.2).

Parallelized across camera rays, assigned to processors in chunks to
improve locality.  Each ray walks the KD-tree from the root to a leaf —
a chain of *dependent, irregular* loads — then intersects a couple of
triangles and accumulates a pixel.  The upper tree levels stay resident
in any reasonable cache; the deep levels are effectively random.

Notably, "our streaming version reads the KD-tree from the cache instead
of streaming it with a DMA controller" (Section 4.2): irregular pointer
chasing is exactly what local stores handle poorly, so the streaming
variant uses its small 8 KB cache for the tree (slightly worse hit rate
than the 32 KB D-cache) and DMA only for ray/pixel I/O — one of the
paper's examples of streaming hardware falling back to caching.

The per-ray traversal paths are generated from a seeded RNG, giving a
deterministic, realistic mix of shared upper-level and divergent
lower-level accesses.
"""

from __future__ import annotations

import numpy as np

from repro.config import MachineConfig
from repro.core.ops import (
    barrier_wait,
    compute,
    dma_get,
    dma_put,
    dma_wait,
    load,
    local_load,
    local_store,
    store,
    task_pop,
)
from repro.core.sync import Barrier, TaskQueue
from repro.workloads.base import (
    Arena,
    Env,
    Program,
    Workload,
    register,
)

NODE_BYTES = 32
TRIANGLE_BYTES = 64


@register
class RaytracerWorkload(Workload):
    """KD-tree ray tracer: irregular dependent loads over a seeded
    tree, rays assigned in chunks (see module docstring)."""

    name = "raytracer"
    presets = {
        "default": {
            "n_rays": 16384,
            "chunk_rays": 64,
            "tree_depth": 13,
            "n_triangles": 16371,
            "node_cycles": 60,
            "ray_cycles": 200,
            "seed": 3,
            "tree_access": "hardware_cache",
        },
        "small": {
            "n_rays": 4096,
            "chunk_rays": 64,
            "tree_depth": 13,
            "n_triangles": 4096,
            "node_cycles": 40,
            "ray_cycles": 120,
            "seed": 3,
            "tree_access": "hardware_cache",
        },
        "tiny": {
            "n_rays": 256,
            "chunk_rays": 32,
            "tree_depth": 8,
            "n_triangles": 256,
            "node_cycles": 40,
            "ray_cycles": 120,
            "seed": 3,
            "tree_access": "hardware_cache",
        },
    }

    def _layout(self, params: dict):
        arena = Arena()
        depth = params["tree_depth"]
        level_bases = []
        for level in range(depth + 1):
            level_bases.append(
                arena.alloc((1 << level) * NODE_BYTES, f"tree.l{level}")
            )
        triangles = arena.alloc(params["n_triangles"] * TRIANGLE_BYTES,
                                "triangles")
        pixels = arena.alloc(params["n_rays"] * 4, "pixels")
        return arena, level_bases, triangles, pixels

    def _chunk_paths(self, params: dict, chunk: int) -> np.ndarray:
        """Deterministic traversal paths for one chunk of rays.

        Returns an (rays, depth) array of left/right decisions.  Rays in
        a chunk come from nearby pixels, so their upper-level decisions
        correlate: the first few levels are shared within the chunk.
        """
        rng = np.random.default_rng(params["seed"] * 100003 + chunk)
        depth = params["tree_depth"]
        rays = params["chunk_rays"]
        bits = rng.integers(0, 2, size=(rays, depth), dtype=np.int64)
        shared_levels = min(6, depth)
        bits[:, :shared_levels] = bits[0, :shared_levels]
        return bits

    def _ray_ops(self, params: dict, level_bases: list[int], triangles: int,
                 bits: np.ndarray):
        """The traversal of one ray: dependent node loads, then triangles."""
        node = 0
        depth = params["tree_depth"]
        for level in range(depth):
            yield load(level_bases[level] + node * NODE_BYTES, NODE_BYTES)
            yield compute(params["node_cycles"],
                          l1_accesses=params["node_cycles"] // 2)
            node = node * 2 + int(bits[level])
        leaf_index = node % params["n_triangles"]
        yield load(triangles + leaf_index * TRIANGLE_BYTES, TRIANGLE_BYTES)
        second = (leaf_index + 1) % params["n_triangles"]
        yield load(triangles + second * TRIANGLE_BYTES, TRIANGLE_BYTES)
        yield compute(params["ray_cycles"],
                      l1_accesses=params["ray_cycles"] // 2)

    def _build_cached(self, config: MachineConfig, params: dict) -> Program:
        arena, level_bases, triangles, pixels = self._layout(params)
        num_cores = config.num_cores
        finish = Barrier(num_cores, "ray.finish")
        chunk_rays = params["chunk_rays"]
        n_chunks = -(-params["n_rays"] // chunk_rays)
        queue = TaskQueue(list(range(n_chunks)), name="ray.chunks")

        def make_thread(env: Env):
            while True:
                chunk = yield task_pop(queue)
                if chunk is None:
                    break
                paths = self._chunk_paths(params, chunk)
                for r in range(chunk_rays):
                    yield from self._ray_ops(params, level_bases, triangles,
                                             paths[r])
                    if r % 8 == 7:
                        # Accumulated pixel line for the last eight rays.
                        yield store(pixels + (chunk * chunk_rays + r - 7) * 4,
                                    32)
            yield barrier_wait(finish)

        return Program("raytracer", [make_thread] * num_cores, arena)

    #: Software-cache emulation costs (Section 2.3: streaming systems may
    #: "use the local store to emulate a software cache" at the price of
    #: extra instructions per access).
    SOFTCACHE_SLOTS = 256            # 8 KB of 32-byte node lines
    SOFTCACHE_PROBE_CYCLES = 6       # hash + tag compare + branch
    SOFTCACHE_MISS_CYCLES = 18       # replacement bookkeeping

    def _build_streaming(self, config: MachineConfig, params: dict) -> Program:
        if params["tree_access"] not in ("hardware_cache", "software_cache"):
            raise ValueError(
                f"unknown tree_access {params['tree_access']!r}")
        arena, level_bases, triangles, pixels = self._layout(params)
        num_cores = config.num_cores
        finish = Barrier(num_cores, "ray.finish")
        chunk_rays = params["chunk_rays"]
        n_chunks = -(-params["n_rays"] // chunk_rays)
        queue = TaskQueue(list(range(n_chunks)), name="ray.chunks")
        use_softcache = params["tree_access"] == "software_cache"
        depth = params["tree_depth"]

        def softcache_ray_ops(params, cache_buf, slots: dict,
                              bits) -> "Iterator[tuple]":
            """One ray's traversal through a local-store software cache.

            Every node visit pays the probe instructions; misses
            additionally issue a *blocking* DMA get (the next node address
            depends on this node's contents, so there is nothing to
            overlap with) plus replacement bookkeeping — exactly the
            Section 2.3 cost the paper's authors avoided by reading the
            tree through a hardware cache instead.
            """
            node = 0
            for level in range(depth):
                addr = level_bases[level] + node * NODE_BYTES
                line = addr // 32
                slot = line % self.SOFTCACHE_SLOTS
                yield compute(self.SOFTCACHE_PROBE_CYCLES)
                if slots.get(slot) == line:
                    yield local_load(cache_buf + slot * 32, 32)
                else:
                    yield dma_get(7, addr, NODE_BYTES)
                    yield dma_wait(7)
                    yield local_store(cache_buf + slot * 32, 32)
                    yield compute(self.SOFTCACHE_MISS_CYCLES)
                    slots[slot] = line
                yield compute(params["node_cycles"],
                              l1_accesses=params["node_cycles"] // 2)
                node = node * 2 + int(bits[level])
            leaf_index = node % params["n_triangles"]
            for tri in (leaf_index, (leaf_index + 1) % params["n_triangles"]):
                yield dma_get(7, triangles + tri * TRIANGLE_BYTES,
                              TRIANGLE_BYTES)
            yield dma_wait(7)
            yield compute(params["ray_cycles"],
                          l1_accesses=params["ray_cycles"] // 2)

        def make_thread(env: Env):
            ls = env.local_store
            pix_buf = ls.alloc(chunk_rays * 4, "pixels")
            cache_buf = 0
            slots: dict[int, int] = {}
            if use_softcache:
                cache_buf = ls.alloc(self.SOFTCACHE_SLOTS * 32, "softcache")
                ls.alloc(2 * TRIANGLE_BYTES, "triangles")
            issued_0 = False
            while True:
                chunk = yield task_pop(queue)
                if chunk is None:
                    break
                paths = self._chunk_paths(params, chunk)
                for r in range(chunk_rays):
                    if use_softcache:
                        yield from softcache_ray_ops(params, cache_buf,
                                                     slots, paths[r])
                    else:
                        # The KD-tree and triangles are read through the
                        # small cache — identical load ops to the cached
                        # variant, hitting the streaming model's 8 KB
                        # cache instead (Section 4.2).
                        yield from self._ray_ops(params, level_bases,
                                                 triangles, paths[r])
                    yield local_store(pix_buf + r * 4, 4, accesses=1)
                yield dma_put(0, pixels + chunk * chunk_rays * 4,
                              chunk_rays * 4)
                issued_0 = True
            # A thread that never drew a chunk has no put to wait for.
            if issued_0:
                yield dma_wait(0)
            yield barrier_wait(finish)

        return Program("raytracer", [make_thread] * num_cores, arena)
