"""179.art — Adaptive Resonance Theory neural network (SPEC CPU2000).

The application is a sequence of data-parallel vector operations and
reductions over the F1 neuron layer and the top-down weight matrix, with
barriers between operations (Section 4.2).  The paper measures 10
invocations of the ``train_match`` function.

Two cache-based variants reproduce Figure 10's stream-programming study:

* **optimized** (the default, used in the model comparison): the main
  data structure reorganized as structure-of-arrays, several large
  temporary vectors replaced with scalars by merging loops — dense
  sequential passes, prefetchable, ~7x faster,
* **original**: the SPEC array-of-structures layout, where every field
  access is a sparsely strided reference that drags a whole cache line
  for 4 useful bytes, plus extra passes through large temporaries.

Select the original variant with ``overrides={"layout": "original"}``.

The streaming variant double-buffers the dense vectors through the local
store with DMA; it is one of the five applications for which streaming
consistently saves 10-25% energy (Section 5.2), almost entirely in DRAM.
"""

from __future__ import annotations

from repro.config import MachineConfig
from repro.core.ops import (
    barrier_wait,
    block,
    compute,
    dma_get,
    dma_put,
    dma_wait,
    load,
    local_load,
    local_store,
    phase_runs,
    store,
    stream,
    stream_get,
    stream_kernel,
    stream_put,
    stream_wait,
)
from repro.core.sync import Barrier
from repro.workloads.base import (
    LINE_BYTES,
    WORD_BYTES,
    WORDS_PER_LINE,
    Arena,
    Env,
    Program,
    Workload,
    partition,
    register,
)

#: Bytes of one neuron record in the original array-of-structures layout
#: (the SPEC struct holds ~16 double/float fields).
AOS_STRIDE = 64


@register
class ArtWorkload(Workload):
    """179.art: data-parallel vector passes with barriers, in the
    optimized SoA or original AoS layout (see module docstring)."""

    name = "art"
    presets = {
        "default": {
            "n_neurons": 24576,
            "weight_cols": 6,
            "invocations": 2,
            "cycles_per_element": 10,
            "layout": "optimized",
            "stream_extra_cycles": 1,
            "block_bytes": 4096,
        },
        "small": {
            "n_neurons": 8192,
            "weight_cols": 6,
            "invocations": 2,
            "cycles_per_element": 10,
            "layout": "optimized",
            "stream_extra_cycles": 1,
            "block_bytes": 4096,
        },
        "tiny": {
            "n_neurons": 1024,
            "weight_cols": 4,
            "invocations": 1,
            "cycles_per_element": 10,
            "layout": "optimized",
            "stream_extra_cycles": 1,
            "block_bytes": 1024,
        },
    }

    #: (name, reads, writes) per train_match invocation, in units of
    #: whole F1-layer vectors.  ``w`` entries denote the weight matrix.
    _VECTOR_PASSES = [
        ("compute_y", ("x", "w"), ()),          # bus activity: x . W
        ("compute_u", ("z",), ("u",)),          # normalize F1 activities
        ("compute_p", ("u", "y"), ("p",)),      # top-down expectation
        ("compute_v", ("x", "p"), ("v",)),      # match vector
        ("reduce_match", ("v", "p"), ()),       # vigilance reduction
        ("update_w", ("p", "w"), ("w",)),       # weight adaptation
    ]

    def _layout_regions(self, arena: Arena, params: dict) -> dict[str, tuple[int, int]]:
        """Allocate the named arrays; returns name -> (base, nbytes)."""
        n = params["n_neurons"]
        cols = params["weight_cols"]
        aos = params["layout"] == "original"
        regions: dict[str, tuple[int, int]] = {}
        vec_bytes = n * (AOS_STRIDE if aos else WORD_BYTES)
        for name in ("x", "z", "u", "p", "v", "y"):
            regions[name] = (arena.alloc(vec_bytes, name), vec_bytes)
        w_bytes = n * cols * WORD_BYTES
        regions["w"] = (arena.alloc(w_bytes, "w"), w_bytes)
        if aos:
            # The original code also streams through large temporaries that
            # the optimized version contracts into scalars (Section 6).
            for name in ("tmp1", "tmp2"):
                regions[name] = (arena.alloc(vec_bytes, name), vec_bytes)
        return regions

    def _build_cached(self, config: MachineConfig, params: dict) -> Program:
        if params["layout"] not in ("optimized", "original"):
            raise ValueError(f"unknown layout {params['layout']!r}")
        arena = Arena()
        regions = self._layout_regions(arena, params)
        num_cores = config.num_cores
        barrier = Barrier(num_cores, "art.pass")
        n = params["n_neurons"]
        cols = params["weight_cols"]
        cyc = params["cycles_per_element"]
        aos = params["layout"] == "original"

        passes = list(self._VECTOR_PASSES)
        if aos:
            # Un-fused loops: the SPEC code streams large temporaries
            # between the vector operations the optimized version merges
            # (Section 6: "we were able to replace several large temporary
            # vectors with scalar values by merging several loops").
            passes = passes + [
                ("spill_tmp1", ("u",), ("tmp1",)),
                ("reload_tmp1", ("tmp1",), ("v",)),
                ("spill_tmp2", ("p",), ("tmp2",)),
                ("reload_tmp2", ("tmp2",), ("u",)),
                ("renorm_read", ("tmp1", "tmp2"), ()),
                ("renorm_write", ("v",), ("tmp1",)),
            ]

        # Pass templates, shared by every core, pass, and invocation:
        # built once at address zero and replayed at the slice's absolute
        # address.  Dense passes batch up to _CHUNK_LINES [line, compute]
        # pairs per block; AoS passes batch one line's worth of strided
        # field touches (the compute lands after the group's first
        # element, exactly where the unbatched loop put it).
        _CHUNK_LINES = 256
        element_compute = compute(cyc * WORDS_PER_LINE,
                                  l1_accesses=cyc * WORDS_PER_LINE // 2)
        dense_cache: dict[tuple, object] = {}
        aos_cache: dict[tuple, object] = {}

        def dense_block(is_write: bool, n_lines: int, tail: int):
            key = (is_write, n_lines, tail)
            tmpl = dense_cache.get(key)
            if tmpl is None:
                op = store if is_write else load
                ops = []
                for k in range(n_lines):
                    ops.append(op(k * LINE_BYTES, LINE_BYTES))
                    ops.append(element_compute)
                if tail:
                    ops.append(op(n_lines * LINE_BYTES, tail))
                    ops.append(element_compute)
                tmpl = dense_cache[key] = block(*ops, name="art.dense")
            return tmpl

        def aos_block(is_write: bool, n_el: int):
            key = (is_write, n_el)
            tmpl = aos_cache.get(key)
            if tmpl is None:
                op = store if is_write else load
                ops = []
                for k in range(n_el):
                    ops.append(op(k * AOS_STRIDE, WORD_BYTES, accesses=1))
                    if not is_write:
                        ops.append(op(k * AOS_STRIDE + 32, WORD_BYTES,
                                      accesses=1))
                    if k == 0:
                        ops.append(element_compute)
                tmpl = aos_cache[key] = block(*ops, name="art.aos")
            return tmpl

        def emit_vector(base: int, is_write: bool, start_el: int, count_el: int):
            """Per-core slice of one whole-vector pass.

            The chunk replays are constant-stride except at the tail, so
            phase_runs coalesces each pass's full-size chunks into one
            phase and passes the odd-size tail through as a plain block.
            """
            if aos and base != regions["w"][0]:
                # Sparsely strided field accesses.  Each pass touches two
                # fields of the 64-byte record (they sit on different
                # cache lines), dragging a whole line per 4 useful bytes.
                def replays():
                    done = 0
                    while done < count_el:
                        group = min(WORDS_PER_LINE, count_el - done)
                        yield (aos_block(is_write, group),
                               base + (start_el + done) * AOS_STRIDE)
                        done += group
                yield from phase_runs(replays(), name="art.aos_pass")
            else:
                def replays():
                    addr = base + start_el * WORD_BYTES
                    remaining = count_el * WORD_BYTES
                    while remaining > 0:
                        span = min(_CHUNK_LINES * LINE_BYTES, remaining)
                        n_lines, tail = divmod(span, LINE_BYTES)
                        yield dense_block(is_write, n_lines, tail), addr
                        addr += span
                        remaining -= span
                yield from phase_runs(replays(), name="art.dense_pass")

        def make_thread(env: Env):
            core = env.core_id
            start, count = partition(n, num_cores, core)
            for _ in range(params["invocations"]):
                for _name, reads, writes in passes:
                    for r in reads:
                        base, _ = regions[r]
                        if r == "w":
                            w_start, w_count = start * cols, count * cols
                            yield from emit_vector(base, False, w_start, w_count)
                        else:
                            yield from emit_vector(base, False, start, count)
                    for w in writes:
                        base, _ = regions[w]
                        if w == "w":
                            w_start, w_count = start * cols, count * cols
                            yield from emit_vector(base, True, w_start, w_count)
                        else:
                            yield from emit_vector(base, True, start, count)
                    yield barrier_wait(barrier)

        return Program("art", [make_thread] * num_cores, arena)

    def _build_streaming(self, config: MachineConfig, params: dict) -> Program:
        arena = Arena()
        # The streaming version necessarily uses the dense layout — the
        # whole point of streaming code is a regular, DMA-friendly shape.
        params = dict(params, layout="optimized")
        regions = self._layout_regions(arena, params)
        num_cores = config.num_cores
        barrier = Barrier(num_cores, "art.pass")
        n = params["n_neurons"]
        cols = params["weight_cols"]
        cyc = params["cycles_per_element"] + params["stream_extra_cycles"]
        block_bytes = params["block_bytes"]

        def make_thread(env: Env):
            core = env.core_id
            ls = env.local_store
            buf = [ls.alloc(block_bytes, f"in{i}") for i in range(2)]
            out_buf = ls.alloc(block_bytes, "out")
            start, count = partition(n, num_cores, core)

            # Local-store kernels, cached per (buffer, transfer size).
            kernel_cache: dict[tuple, object] = {}

            def kernel(buffer: int, size: int, is_write: bool):
                key = (buffer, size, is_write)
                tmpl = kernel_cache.get(key)
                if tmpl is None:
                    touch = local_store if is_write else local_load
                    tmpl = kernel_cache[key] = block(
                        touch(buffer, size),
                        compute(cyc * size // WORD_BYTES,
                                l1_accesses=cyc * size // WORD_BYTES // 2),
                        name="art.kernel")
                return tmpl

            # Vector loops as stream descriptors, cached per slice — the
            # same vectors recur every pass of every invocation.
            vector_cache: dict[tuple, object] = {}

            def vector_stream(base: int, start_el: int, count_el: int,
                              is_write: bool):
                key = (base, start_el, count_el, is_write)
                loop = vector_cache.get(key)
                if loop is not None:
                    return loop
                start_b = start_el * WORD_BYTES
                total = count_el * WORD_BYTES
                offsets = range(0, total, block_bytes)
                sizes = [min(block_bytes, total - off) for off in offsets]
                if is_write:
                    # Compute into the single output buffer, put under
                    # the constant tag 2; the trailing dma_wait(2) stays
                    # with the caller.
                    loop = stream(
                        stream_kernel(tuple(
                            kernel(out_buf, size, True) for size in sizes)),
                        stream_put(2, tuple(
                            ((base + start_b + off, size),)
                            for off, size in zip(offsets, sizes)),
                            alternate=False),
                        count=len(sizes), name="art.write")
                else:
                    # Double-buffered input stream (macroscopic
                    # prefetching); the caller issues the first fetch.
                    loop = stream(
                        stream_get(0, tuple(
                            ((base + start_b + off, size),)
                            for off, size in zip(offsets, sizes)),
                            ahead=1),
                        stream_wait(0),
                        stream_kernel(tuple(
                            kernel(buf[k & 1], size, False)
                            for k, size in enumerate(sizes))),
                        count=len(sizes), name="art.read")
                vector_cache[key] = loop
                return loop

            def stream_vector(base: int, start_el: int, count_el: int,
                              is_write: bool):
                total = count_el * WORD_BYTES
                if total <= 0:
                    return
                loop = vector_stream(base, start_el, count_el, is_write)
                if is_write:
                    yield loop.op()
                    yield dma_wait(2)
                    return
                yield dma_get(0, base + start_el * WORD_BYTES,
                              min(block_bytes, total))
                yield loop.op()

            for _ in range(params["invocations"]):
                for _name, reads, writes in self._VECTOR_PASSES:
                    for r in reads:
                        base, _ = regions[r]
                        if r == "w":
                            yield from stream_vector(base, start * cols,
                                                     count * cols, False)
                        else:
                            yield from stream_vector(base, start, count, False)
                    for w in writes:
                        base, _ = regions[w]
                        if w == "w":
                            yield from stream_vector(base, start * cols,
                                                     count * cols, True)
                        else:
                            yield from stream_vector(base, start, count, True)
                    yield barrier_wait(barrier)

        return Program("art", [make_thread] * num_cores, arena)
