"""Stereo depth extraction (Section 4.2).

Input frames are divided into 32x32 blocks that are statically assigned
to processors.  For each block the kernel loads the left-image block and
a disparity-wide strip of the right image, then runs a sum-of-absolute-
differences search over the disparity range — an extremely compute-dense
kernel (Table 3: 8662 instructions per L1 miss, 11.4 MB/s of off-chip
bandwidth, the lowest of the suite).  Both memory models capture the
locality equally well and perform identically at every core count and
clock rate (Figures 2 and the Section 5.3 discussion).
"""

from __future__ import annotations

from repro.config import MachineConfig
from repro.core.ops import (
    barrier_wait,
    compute,
    dma_get,
    dma_put,
    dma_wait,
    load,
    local_load,
    local_store,
    store,
)
from repro.core.sync import Barrier
from repro.workloads.base import (
    Arena,
    Env,
    Program,
    Workload,
    partition,
    register,
)

TILE = 32  # block edge, pixels


@register
class DepthWorkload(Workload):
    """Stereo depth extraction over static 32x32 blocks (see module
    docstring)."""

    incoherent_safe = True
    name = "depth"
    presets = {
        "default": {
            "width": 352,
            "height": 288,
            "pairs": 3,
            "disparity": 16,
            "block_cycles": 300000,
            "stream_extra_cycles": 500,
        },
        "small": {
            "width": 192,
            "height": 96,
            "pairs": 2,
            "disparity": 16,
            "block_cycles": 90000,
            "stream_extra_cycles": 500,
        },
        "tiny": {
            "width": 128,
            "height": 64,
            "pairs": 1,
            "disparity": 8,
            "block_cycles": 24000,
            "stream_extra_cycles": 100,
        },
    }

    def _geometry(self, params: dict):
        width, height = params["width"], params["height"]
        if width % TILE or height % TILE:
            raise ValueError(f"frame {width}x{height} not {TILE}-aligned")
        return width // TILE, height // TILE

    def _layout(self, params: dict):
        arena = Arena()
        frame = params["width"] * params["height"]
        left = arena.alloc(frame, "left")
        right = arena.alloc(frame, "right")
        disp = arena.alloc(frame, "disparity")
        return arena, left, right, disp

    def _build_cached(self, config: MachineConfig, params: dict) -> Program:
        arena, left, right, disp = self._layout(params)
        tiles_x, tiles_y = self._geometry(params)
        width = params["width"]
        rng = params["disparity"]
        num_cores = config.num_cores
        finish = Barrier(num_cores, "depth.frame")
        n_tiles = tiles_x * tiles_y
        strip_w = TILE + rng

        def make_thread(env: Env):
            start, count = partition(n_tiles, num_cores, env.core_id)
            for _pair in range(params["pairs"]):
                for t in range(start, start + count):
                    tx, ty = t % tiles_x, t // tiles_x
                    x0 = tx * TILE
                    sx0 = min(x0, width - strip_w)
                    for r in range(TILE):
                        row = (ty * TILE + r) * width
                        yield load(left + row + x0, TILE)
                        yield load(right + row + sx0, strip_w)
                    yield compute(params["block_cycles"],
                                  l1_accesses=params["block_cycles"] // 2)
                    for r in range(TILE):
                        yield store(disp + (ty * TILE + r) * width + x0, TILE)
                yield barrier_wait(finish)

        return Program("depth", [make_thread] * num_cores, arena)

    def _build_streaming(self, config: MachineConfig, params: dict) -> Program:
        arena, left, right, disp = self._layout(params)
        tiles_x, tiles_y = self._geometry(params)
        width = params["width"]
        rng = params["disparity"]
        num_cores = config.num_cores
        finish = Barrier(num_cores, "depth.frame")
        n_tiles = tiles_x * tiles_y
        strip_w = TILE + rng
        in_bytes = TILE * TILE + TILE * strip_w
        out_bytes = TILE * TILE
        cycles = params["block_cycles"] + params["stream_extra_cycles"]

        def make_thread(env: Env):
            ls = env.local_store
            in_buf = [ls.alloc(in_bytes, f"in{i}") for i in range(2)]
            out_buf = [ls.alloc(out_bytes, f"out{i}") for i in range(2)]
            start, count = partition(n_tiles, num_cores, env.core_id)

            def fetch(tag: int, t: int):
                tx, ty = t % tiles_x, t // tiles_x
                x0 = tx * TILE
                sx0 = min(x0, width - strip_w)
                row0 = ty * TILE * width
                yield dma_get(tag, left + row0 + x0, TILE * TILE,
                              stride=width, block=TILE)
                yield dma_get(tag, right + row0 + sx0, TILE * strip_w,
                              stride=width, block=strip_w)

            for _pair in range(params["pairs"]):
                if count:
                    yield from fetch(0, start)
                for i in range(count):
                    t = start + i
                    parity = i & 1
                    if i + 1 < count:
                        yield from fetch((i + 1) & 1, t + 1)
                    yield dma_wait(parity)
                    if i >= 2:
                        yield dma_wait(2 + parity)
                    yield local_load(in_buf[parity], in_bytes)
                    yield compute(cycles, l1_accesses=cycles // 2)
                    yield local_store(out_buf[parity], out_bytes)
                    tx, ty = t % tiles_x, t // tiles_x
                    yield dma_put(2 + parity,
                                  disp + ty * TILE * width + tx * TILE,
                                  out_bytes, stride=width, block=TILE)
                # Tag 2 first issues on the first tile, tag 3 on the
                # second; waiting on a never-issued tag is an error.
                if count:
                    yield dma_wait(2)
                if count > 1:
                    yield dma_wait(3)
                yield barrier_wait(finish)

        return Program("depth", [make_thread] * num_cores, arena)
