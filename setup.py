"""Setup shim: enables legacy editable installs on environments without
the `wheel` package (PEP 660 editable wheels need it; `pip install -e .
--no-use-pep517 --no-build-isolation` does not).  All metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
