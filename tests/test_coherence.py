"""MESI coherence: state transitions and global invariants.

The property test drives the real :class:`CacheCoherentHierarchy` with
random interleavings of loads and stores from multiple cores and checks,
after every operation, the single-writer / multiple-reader invariant and
read-your-writes data-race-freedom at the directory level.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig, MachineConfig
from repro.mem.coherence import MesiState, check_global_invariant
from repro.mem.hierarchy import CacheCoherentHierarchy


class TestStateHelpers:
    def test_dirty(self):
        assert MesiState.MODIFIED.is_dirty
        assert not MesiState.EXCLUSIVE.is_dirty
        assert not MesiState.SHARED.is_dirty

    def test_permissions(self):
        assert MesiState.MODIFIED.can_write
        assert MesiState.EXCLUSIVE.can_write
        assert not MesiState.SHARED.can_write
        assert not MesiState.INVALID.can_read

    def test_invariant_checker_accepts_legal(self):
        check_global_invariant([MesiState.MODIFIED, MesiState.INVALID])
        check_global_invariant([MesiState.SHARED, MesiState.SHARED])
        check_global_invariant([MesiState.EXCLUSIVE])

    def test_invariant_checker_rejects_two_owners(self):
        with pytest.raises(AssertionError):
            check_global_invariant([MesiState.MODIFIED, MesiState.MODIFIED])

    def test_invariant_checker_rejects_owner_plus_sharer(self):
        with pytest.raises(AssertionError):
            check_global_invariant([MesiState.EXCLUSIVE, MesiState.SHARED])


def _states(hierarchy, line):
    return [
        entry.state if (entry := l1.lookup(line)) is not None
        else MesiState.INVALID
        for l1 in hierarchy.l1s
    ]


def small_hierarchy(cores=4):
    cfg = MachineConfig(num_cores=cores)
    return CacheCoherentHierarchy(
        cfg, l1_config=CacheConfig(capacity_bytes=512, associativity=2)
    )


class TestProtocolTransitions:
    def test_first_load_gets_exclusive(self):
        h = small_hierarchy()
        h.load_line(0, 100, 0)
        assert h.l1s[0].lookup(100).state is MesiState.EXCLUSIVE

    def test_second_load_downgrades_to_shared(self):
        h = small_hierarchy()
        h.load_line(0, 100, 0)
        h.load_line(1, 100, 1000)
        assert h.l1s[0].lookup(100).state is MesiState.SHARED
        assert h.l1s[1].lookup(100).state is MesiState.SHARED
        assert h.cache_to_cache == 1

    def test_store_miss_gets_modified_and_invalidates(self):
        h = small_hierarchy()
        h.load_line(0, 100, 0)
        h.load_line(1, 100, 1000)
        h.store_line(2, 100, 2000)
        assert h.l1s[2].lookup(100).state is MesiState.MODIFIED
        assert h.l1s[0].lookup(100) is None
        assert h.l1s[1].lookup(100) is None

    def test_store_hit_on_exclusive_is_silent(self):
        h = small_hierarchy()
        h.load_line(0, 100, 0)
        before = h.invalidations_sent
        h.store_line(0, 100, 1000)
        assert h.l1s[0].lookup(100).state is MesiState.MODIFIED
        assert h.invalidations_sent == before
        assert h.upgrades == 0

    def test_store_hit_on_shared_upgrades(self):
        h = small_hierarchy()
        h.load_line(0, 100, 0)
        h.load_line(1, 100, 1000)
        h.store_line(0, 100, 2000)
        assert h.upgrades == 1
        assert h.l1s[0].lookup(100).state is MesiState.MODIFIED
        assert h.l1s[1].lookup(100) is None

    def test_load_from_modified_peer_supplies_and_downgrades(self):
        h = small_hierarchy()
        h.store_line(0, 100, 0)
        h.load_line(1, 100, 1000)
        assert h.l1s[0].lookup(100).state is MesiState.SHARED
        assert h.l1s[1].lookup(100).state is MesiState.SHARED
        # The dirty data was written back to the L2 on the downgrade.
        assert h.uncore.l2.lookup(100) is not None

    def test_store_steals_ownership_from_modified_peer(self):
        h = small_hierarchy()
        h.store_line(0, 100, 0)
        h.store_line(1, 100, 1000)
        assert h.l1s[0].lookup(100) is None
        assert h.l1s[1].lookup(100).state is MesiState.MODIFIED


ops_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),     # core
        st.sampled_from(["load", "store"]),
        st.integers(min_value=0, max_value=31),    # line
    ),
    min_size=1,
    max_size=300,
)


class TestProtocolProperties:
    @settings(max_examples=60, deadline=None)
    @given(ops_strategy)
    def test_global_invariant_holds_under_random_traffic(self, ops):
        h = small_hierarchy()
        now = 0
        for core, op, line in ops:
            now += 1_000_000
            if op == "load":
                h.load_line(core, line, now)
            else:
                h.store_line(core, line, now)
            check_global_invariant(_states(h, line))

    @settings(max_examples=60, deadline=None)
    @given(ops_strategy)
    def test_writer_always_ends_modified(self, ops):
        h = small_hierarchy()
        now = 0
        for core, op, line in ops:
            now += 1_000_000
            if op == "load":
                h.load_line(core, line, now)
            else:
                h.store_line(core, line, now)
                entry = h.l1s[core].lookup(line)
                assert entry is not None
                assert entry.state is MesiState.MODIFIED

    @settings(max_examples=30, deadline=None)
    @given(ops_strategy)
    def test_timing_is_monotonic_per_core(self, ops):
        h = small_hierarchy()
        now = 0
        for core, op, line in ops:
            now += 1_000_000
            if op == "load":
                done = h.load_line(core, line, now)
                assert done >= now
            else:
                stall = h.store_line(core, line, now)
                assert stall >= 0
