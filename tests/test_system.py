"""End-to-end system behaviour: determinism, accounting, fairness."""

import pytest

from repro import MachineConfig, run_workload
from repro.core.system import CmpSystem, run_program
from repro.workloads import get_workload


def run_tiny(name, model="cc", cores=4, **kwargs):
    return run_workload(name, model=model, cores=cores, preset="tiny",
                        **kwargs)


class TestDeterminism:
    @pytest.mark.parametrize("model", ["cc", "str"])
    def test_identical_runs_identical_results(self, model):
        a = run_tiny("fir", model)
        b = run_tiny("fir", model)
        assert a.exec_time_fs == b.exec_time_fs
        assert a.traffic == b.traffic
        assert a.stats == b.stats

    def test_seeded_workloads_are_deterministic(self):
        a = run_tiny("bitonic")
        b = run_tiny("bitonic")
        assert a.exec_time_fs == b.exec_time_fs
        assert a.traffic == b.traffic


class TestAccountingInvariants:
    @pytest.mark.parametrize("model", ["cc", "str"])
    @pytest.mark.parametrize("name", ["fir", "merge", "mpeg2"])
    def test_breakdown_sums_to_execution_time(self, name, model):
        r = run_tiny(name, model)
        assert r.breakdown.total_fs == pytest.approx(r.exec_time_fs, rel=1e-9)

    def test_fractions_sum_to_one(self):
        r = run_tiny("fir")
        assert sum(r.breakdown.fractions().values()) == pytest.approx(1.0)

    def test_traffic_at_least_compulsory(self):
        """FIR must read its whole input from DRAM at least once."""
        r = run_tiny("fir")
        n_bytes = 4 * (1 << 12)
        assert r.traffic.read_bytes >= n_bytes
        assert r.traffic.write_bytes >= n_bytes

    def test_settled_time_covers_execution(self):
        r = run_tiny("fir")
        assert r.settled_fs >= r.exec_time_fs

    def test_bandwidth_bounded_by_channel(self):
        for model in ("cc", "str"):
            r = run_tiny("fir", model, cores=16, clock_ghz=6.4)
            assert r.offchip_mb_per_s <= 6400 * 1.001

    def test_energy_components_positive(self):
        r = run_tiny("fir")
        e = r.energy
        assert e.core > 0 and e.icache > 0 and e.dcache > 0
        assert e.network > 0 and e.l2 > 0 and e.dram > 0
        assert e.local_store == 0            # cache-based model

    def test_streaming_energy_includes_local_store(self):
        r = run_tiny("fir", "str")
        assert r.energy.local_store > 0


class TestScaling:
    def test_more_cores_not_slower(self):
        times = [run_tiny("fir", cores=c).exec_time_fs for c in (1, 4, 16)]
        assert times[0] > times[1] > times[2]

    def test_higher_clock_not_slower(self):
        slow = run_tiny("depth", cores=4, clock_ghz=0.8)
        fast = run_tiny("depth", cores=4, clock_ghz=6.4)
        assert fast.exec_time_fs < slow.exec_time_fs

    def test_compute_bound_app_scales_nearly_linearly(self):
        t1 = run_tiny("depth", cores=1).exec_time_fs
        t4 = run_tiny("depth", cores=4).exec_time_fs
        assert t1 / t4 > 2.5


class TestErrors:
    def test_thread_count_mismatch_rejected(self):
        from repro.workloads.base import Program

        def thread(env):
            yield from ()

        cfg = MachineConfig(num_cores=4)
        with pytest.raises(ValueError, match="threads"):
            CmpSystem(cfg, Program("bad", [thread] * 2))

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("nonesuch")

    def test_unknown_preset_rejected(self):
        cfg = MachineConfig(num_cores=1)
        with pytest.raises(KeyError, match="preset"):
            get_workload("fir").build("cc", cfg, preset="huge")

    def test_unknown_override_rejected(self):
        cfg = MachineConfig(num_cores=1)
        with pytest.raises(KeyError, match="parameters"):
            get_workload("fir").build("cc", cfg, preset="tiny",
                                      overrides={"bogus": 1})


class TestRunProgramApi:
    def test_run_program_equivalent_to_system(self):
        cfg = MachineConfig(num_cores=2)
        wl = get_workload("fir")
        r1 = run_program(cfg, wl.build("cc", cfg, preset="tiny"))
        r2 = CmpSystem(cfg, wl.build("cc", cfg, preset="tiny")).run()
        assert r1.exec_time_fs == r2.exec_time_fs


class TestSelfCheck:
    def test_every_run_is_audited(self):
        """CmpSystem.run() self-validates its result."""
        import repro.core.system as system_mod

        assert system_mod.SELF_CHECK is True

    def test_self_check_can_be_disabled(self, monkeypatch):
        import repro.core.system as system_mod

        monkeypatch.setattr(system_mod, "SELF_CHECK", False)
        r = run_tiny("fir", cores=2)
        assert r.exec_time_fs > 0
