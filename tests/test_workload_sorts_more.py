"""Additional sort coverage: pass scheduling, partner geometry, STR blocks."""

import numpy as np
import pytest

from repro import MachineConfig, run_workload
from repro.core.system import CmpSystem
from repro.workloads.sorts import (
    BitonicSortWorkload,
    MergeSortWorkload,
    apply_bitonic_pass,
    bitonic_pass_schedule,
)


class TestPassGeometry:
    def test_final_merge_strides_halve(self):
        schedule = bitonic_pass_schedule(1 << 8, full_network=False)
        strides = [s for s, _ in schedule]
        assert strides == [128, 64, 32, 16, 8, 4, 2, 1]

    def test_full_network_blocks_grow(self):
        schedule = bitonic_pass_schedule(16, full_network=True)
        blocks = [b for _, b in schedule]
        assert blocks == [2, 4, 4, 8, 8, 8, 16, 16, 16, 16]

    def test_pass_is_involution_free(self):
        """Applying the same ascending pass twice changes nothing more."""
        rng = np.random.default_rng(0)
        arr = rng.integers(0, 100, size=64).astype(np.int64)
        apply_bitonic_pass(arr, 8, 64)
        snapshot = arr.copy()
        modified = apply_bitonic_pass(arr, 8, 64)
        assert not modified.any()
        assert np.array_equal(arr, snapshot)

    def test_descending_blocks_sort_descending(self):
        arr = np.array([1, 2, 3, 4], dtype=np.int64)
        # block=2: pairs alternate ascending/descending.
        apply_bitonic_pass(arr, 1, 2)
        assert list(arr) == [1, 2, 4, 3]


class TestBitonicEmission:
    def test_cc_reads_every_line_once_per_pass(self):
        cfg = MachineConfig(num_cores=1)
        program = BitonicSortWorkload().build("cc", cfg, preset="tiny")
        system = CmpSystem(cfg, program)
        system.run()
        params = BitonicSortWorkload.presets["tiny"]
        n_lines = params["n_keys"] // 8
        n_passes = len(bitonic_pass_schedule(params["n_keys"],
                                             params["full_network"]))
        assert system.hierarchy.load_ops == n_lines * n_passes

    def test_str_put_counts_cover_all_blocks(self):
        cfg = MachineConfig(num_cores=1).with_model("str")
        program = BitonicSortWorkload().build("str", cfg, preset="tiny")
        system = CmpSystem(cfg, program)
        system.run()
        params = BitonicSortWorkload.presets["tiny"]
        n_blocks = params["n_keys"] // params["block_keys"]
        n_passes = len(bitonic_pass_schedule(params["n_keys"],
                                             params["full_network"]))
        puts = sum(e.bytes_written for e in system.hierarchy.dma_engines)
        # Every block written back every pass, modified or not.
        assert puts == n_passes * n_blocks * params["block_keys"] * 4


class TestMergeEmission:
    def test_total_keys_merged_per_level(self):
        """Every level reads and writes the whole array once."""
        cfg = MachineConfig(num_cores=2)
        program = MergeSortWorkload().build("cc", cfg, preset="tiny")
        system = CmpSystem(cfg, program)
        system.run()
        params = MergeSortWorkload.presets["tiny"]
        n_lines = params["n_keys"] * 4 // 32
        levels = MergeSortWorkload._levels(params["n_keys"],
                                           params["chunk_keys"])
        chunk_lines = params["chunk_keys"] * 4 // 32
        expected_loads = (params["n_keys"] // params["chunk_keys"]) \
            * chunk_lines + levels * n_lines
        assert system.hierarchy.load_ops == expected_loads

    def test_ping_pong_ends_in_predictable_buffer(self):
        """With an even level count the result lands back in buffer A."""
        params = MergeSortWorkload.presets["tiny"]
        levels = MergeSortWorkload._levels(params["n_keys"],
                                           params["chunk_keys"])
        assert levels == 3   # documents the tiny preset's shape

    def test_merge_output_traffic_without_pfs(self):
        """CC merge refills its output buffer at every level."""
        r = run_workload("merge", cores=2, preset="tiny")
        pfs = run_workload("merge", cores=2, preset="tiny",
                           overrides={"pfs": True})
        saved = r.traffic.read_bytes - pfs.traffic.read_bytes
        assert saved > 0
        # Refill savings are a whole number of cache lines.
        assert saved % 32 == 0
