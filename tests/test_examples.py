"""Every shipped example must run end to end.

The examples exercise the public API at the ``small`` preset; here we
run them in-process (monkey-patching their scale knobs down where they
expose them) so the suite stays fast while still executing every line.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_directory_complete():
    names = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))
    assert names == [
        "cache_enhancements",
        "custom_workload",
        "memory_model_comparison",
        "quickstart",
        "stream_programming",
        "trace_analysis",
    ]


def test_quickstart_runs(capsys, monkeypatch):
    module = load_example("quickstart")
    monkeypatch.setattr(sys, "argv", ["quickstart.py", "fir", "4"])
    # Shrink: patch run_workload to the tiny preset.
    original = module.run_workload
    monkeypatch.setattr(
        module, "run_workload",
        lambda *a, **kw: original(*a, **{**kw, "preset": "tiny"}))
    module.main()
    out = capsys.readouterr().out
    assert "cc" in out and "str" in out
    assert "execution time" in out


def test_quickstart_rejects_unknown_workload(monkeypatch):
    module = load_example("quickstart")
    monkeypatch.setattr(sys, "argv", ["quickstart.py", "nonesuch"])
    with pytest.raises(SystemExit):
        module.main()


def test_memory_model_comparison_runs(capsys, monkeypatch):
    module = load_example("memory_model_comparison")
    monkeypatch.setattr(sys, "argv", ["x", "fir"])
    from repro.harness import Runner
    monkeypatch.setattr(module, "Runner", lambda preset: Runner(preset="tiny"))
    module.main()
    out = capsys.readouterr().out
    assert "fir" in out
    assert "16" in out


def test_custom_workload_runs(capsys):
    module = load_example("custom_workload")
    module.main()
    out = capsys.readouterr().out
    assert "histogram" in out
    assert "16 cores" in out


def test_custom_workload_program_is_valid():
    """The example's program passes the same discipline as the suite."""
    module = load_example("custom_workload")
    from repro import MachineConfig
    from repro.core.system import run_program

    for model in ("cc", "str"):
        config = MachineConfig(num_cores=4).with_model(model)
        result = run_program(config, module.build_histogram(model, 4))
        # Every sample read exactly once (256 KB), compulsory.
        assert result.traffic.read_bytes >= module.N_ITEMS * 4


def test_cache_enhancements_runs(capsys, monkeypatch):
    module = load_example("cache_enhancements")
    original = module.run_workload
    monkeypatch.setattr(
        module, "run_workload",
        lambda *a, **kw: original(*a, **{**kw, "preset": "tiny"}))
    module.main()
    out = capsys.readouterr().out
    assert "prefetch" in out
    assert "PFS" in out


def test_stream_programming_runs(capsys, monkeypatch):
    module = load_example("stream_programming")
    original = module.run_workload
    monkeypatch.setattr(
        module, "run_workload",
        lambda *a, **kw: original(*a, **{**kw, "preset": "tiny"}))
    module.main()
    out = capsys.readouterr().out
    assert "speedup" in out


def test_trace_analysis_runs(capsys):
    module = load_example("trace_analysis")
    module.main()
    out = capsys.readouterr().out
    assert "ideal LRU hit rate" in out
    assert "core activity" in out
    assert "mpeg2" in out
