"""Additional coverage: preset builds, lock fairness, energy overrides,
write policies, and hierarchy corner cases."""

import pytest

from repro import MachineConfig, run_program
from repro.config import CacheConfig, WritePolicy
from repro.core.ops import compute, lock_acquire, lock_release, store
from repro.core.sync import Lock
from repro.core.system import CmpSystem
from repro.energy.model import EnergyModel, EnergyParams
from repro.workloads import get_workload, workload_names
from repro.workloads.base import Program


@pytest.mark.parametrize("name", workload_names())
@pytest.mark.parametrize("preset", ["tiny", "small", "default"])
@pytest.mark.parametrize("model", ["cc", "str"])
def test_every_preset_builds(name, preset, model):
    """Program construction (not execution) must work at every scale."""
    cfg = MachineConfig(num_cores=16).with_model(model)
    program = get_workload(name).build(model, cfg, preset=preset)
    assert program.num_threads == 16


class TestLockFairness:
    def test_waiters_granted_fifo(self):
        lock = Lock()
        order = []

        def make(core_delay):
            def thread(env):
                yield compute(core_delay)
                yield lock_acquire(lock)
                order.append(env.core_id)
                yield compute(10_000)
                yield lock_release(lock)
            return thread

        cfg = MachineConfig(num_cores=4)
        system = CmpSystem(cfg, Program(
            "locks", [make(d) for d in (10, 20, 30, 40)]))
        system.run()
        assert order == [0, 1, 2, 3]


class TestEnergyParamsOverride:
    def test_custom_params_change_the_result(self):
        cfg = MachineConfig(num_cores=2)
        wl = get_workload("fir")
        base = run_program(cfg, wl.build("cc", cfg, preset="tiny"))
        expensive_dram = EnergyParams(dram_pj_per_byte=2000.0)
        system = CmpSystem(cfg, wl.build("cc", cfg, preset="tiny"),
                           energy_params=expensive_dram)
        costly = system.run()
        assert costly.energy.dram > 2 * base.energy.dram
        assert costly.energy.core == pytest.approx(base.energy.core)

    def test_model_reusable_across_systems(self):
        cfg = MachineConfig(num_cores=1)
        model = EnergyModel(cfg)
        wl = get_workload("fir")
        s1 = CmpSystem(cfg, wl.build("cc", cfg, preset="tiny"))
        s1.run()
        e1 = model.compute(s1)
        e2 = model.compute(s1)
        assert e1.total == e2.total


class TestWritePolicies:
    def test_no_write_allocate_machine_runs_end_to_end(self):
        cfg = MachineConfig(num_cores=2).with_(
            l1=CacheConfig(capacity_bytes=32 * 1024, associativity=2,
                           write_policy=WritePolicy.NO_WRITE_ALLOCATE))
        wl = get_workload("fir")
        r = run_program(cfg, wl.build("cc", cfg, preset="tiny"))
        # No allocation on store misses: no refill reads for the output.
        n_bytes = 4 * (1 << 12)
        assert r.traffic.read_bytes == n_bytes
        assert r.traffic.write_bytes == n_bytes

    def test_no_write_allocate_leaves_l1_clean(self):
        from repro.mem.coherence import MesiState
        from repro.mem.hierarchy import CacheCoherentHierarchy

        cfg = MachineConfig(num_cores=1)
        h = CacheCoherentHierarchy(
            cfg, l1_config=CacheConfig(
                capacity_bytes=1024, associativity=2,
                write_policy=WritePolicy.NO_WRITE_ALLOCATE))
        h.store_line(0, 7, 0)
        assert h.l1s[0].lookup(7) is None
        entry = h.uncore.l2.lookup(7)
        assert entry is not None and entry.state is MesiState.MODIFIED


class TestStoreBufferBackpressure:
    def test_sustained_store_misses_eventually_stall(self):
        cfg = MachineConfig(num_cores=1).with_bandwidth(1.6)

        def thread(env):
            for i in range(256):
                yield store(0x100000 + i * 32, 32)

        system = CmpSystem(cfg, Program("stores", [thread]))
        system.run()
        assert system.processors[0].store_stall_fs > 0

    def test_spaced_stores_never_stall(self):
        cfg = MachineConfig(num_cores=1)

        def thread(env):
            for i in range(64):
                yield store(0x100000 + i * 32, 32)
                yield compute(500)

        system = CmpSystem(cfg, Program("stores", [thread]))
        system.run()
        assert system.processors[0].store_stall_fs == 0
