"""Tagged stream prefetcher (Section 3.2 / [41])."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PrefetcherConfig
from repro.mem.prefetcher import StreamPrefetcher


def make(depth=4, streams=4, history=8):
    return StreamPrefetcher(
        PrefetcherConfig(enabled=True, depth=depth, num_streams=streams,
                         history_size=history)
    )


class TestStreamDetection:
    def test_single_miss_prefetches_nothing(self):
        pf = make()
        assert pf.on_miss(100) == []

    def test_second_sequential_miss_starts_stream(self):
        pf = make(depth=4)
        pf.on_miss(100)
        issued = pf.on_miss(101)
        assert issued == [102, 103, 104, 105]
        assert pf.active_streams == 1

    def test_non_sequential_misses_never_trigger(self):
        pf = make()
        for line in (10, 20, 30, 40, 55):
            assert pf.on_miss(line) == []
        assert pf.active_streams == 0

    def test_established_stream_advances_on_miss(self):
        pf = make(depth=2)
        pf.on_miss(100)
        pf.on_miss(101)           # issues 102, 103
        issued = pf.on_miss(102)  # stream advances; keep 2 ahead of 102
        assert issued == [104]

    def test_history_window_limits_pairing(self):
        pf = make(history=2)
        pf.on_miss(1)
        pf.on_miss(50)
        pf.on_miss(60)   # line 1 has been pushed out of the history
        assert pf.on_miss(2) == []


class TestTaggedBehaviour:
    def test_tagged_hit_rearms_stream(self):
        pf = make(depth=4)
        pf.on_miss(100)
        pf.on_miss(101)                 # prefetched 102..105
        issued = pf.on_tagged_hit(102)  # first demand use of a prefetch
        assert issued == [106]

    def test_tagged_hit_without_stream_restarts(self):
        pf = make(depth=2)
        issued = pf.on_tagged_hit(500)
        assert issued == [501, 502]


class TestStreamTable:
    def test_capacity_bounded_with_lru_replacement(self):
        pf = make(streams=2, depth=1, history=8)
        for base in (100, 200, 300):
            pf.on_miss(base)
            pf.on_miss(base + 1)
        assert pf.active_streams == 2

    def test_independent_streams_tracked(self):
        pf = make(streams=4, depth=2)
        pf.on_miss(100)
        pf.on_miss(200)
        a = pf.on_miss(101)
        b = pf.on_miss(201)
        assert a == [102, 103]
        assert b == [202, 203]
        assert pf.active_streams == 2


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1,
                    max_size=200))
    def test_never_prefetches_backwards(self, misses):
        pf = make()
        for line in misses:
            for issued in pf.on_miss(line):
                assert issued > line

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=16),
           st.integers(min_value=2, max_value=64))
    def test_sequential_walk_stays_depth_ahead(self, depth, length):
        """On a pure sequential stream the prefetcher covers every line."""
        pf = make(depth=depth)
        covered = set()
        demand_misses = 0
        for line in range(length):
            if line in covered:
                covered.update(pf.on_tagged_hit(line))
            else:
                demand_misses += 1
                covered.update(pf.on_miss(line))
        # After the stream is established (2 misses), everything is covered.
        assert demand_misses <= 2
