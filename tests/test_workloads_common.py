"""Properties every workload must satisfy, in both memory models."""

import pytest

from repro.config import MachineConfig, MemoryModel
from repro.core import ops as op_mod
from repro.core.system import CmpSystem, run_program
from repro.workloads import get_workload, workload_names
from repro.workloads.base import Env

ALL = workload_names()
MODELS = ["cc", "str"]


@pytest.mark.parametrize("name", ALL)
@pytest.mark.parametrize("model", MODELS)
class TestEveryWorkload:
    def test_builds_one_thread_per_core(self, name, model):
        cfg = MachineConfig(num_cores=8).with_model(model)
        program = get_workload(name).build(model, cfg, preset="tiny")
        assert program.num_threads == 8

    def test_runs_to_completion(self, name, model):
        cfg = MachineConfig(num_cores=4).with_model(model)
        program = get_workload(name).build(model, cfg, preset="tiny")
        result = run_program(cfg, program)
        assert result.exec_time_fs > 0
        assert result.instructions > 0

    def test_runs_on_one_core(self, name, model):
        """Sequential execution must work (it is every figure's baseline)."""
        cfg = MachineConfig(num_cores=1).with_model(model)
        program = get_workload(name).build(model, cfg, preset="tiny")
        result = run_program(cfg, program)
        assert result.exec_time_fs > 0

    def test_runs_on_sixteen_cores(self, name, model):
        cfg = MachineConfig(num_cores=16).with_model(model)
        program = get_workload(name).build(model, cfg, preset="tiny")
        result = run_program(cfg, program)
        assert result.exec_time_fs > 0

    def test_produces_offchip_traffic(self, name, model):
        cfg = MachineConfig(num_cores=4).with_model(model)
        program = get_workload(name).build(model, cfg, preset="tiny")
        result = run_program(cfg, program)
        assert result.traffic.total_bytes > 0


def drain_ops(program, system, limit=50000):
    """Functionally execute the program's generators, yielding every op.

    Task pops are serviced from the real queue (so task-driven loops make
    progress); barriers and locks are skipped (no timing here); op blocks
    are expanded into the plain ops they replay.
    """
    emitted = 0
    for thread in program.threads(system):
        value = None
        while emitted < limit:
            try:
                op = thread.send(value)
            except StopIteration:
                break
            value = None
            if op[0] == "pop":
                queue = op[1]
                value = queue._items.popleft() if queue._items else None
                continue
            if op[0] == "ph":
                for _, blk, delta in op[1].replays():
                    for sub in blk.materialize(delta):
                        emitted += 1
                        yield sub
                continue
            if op[0] == "blk":
                for sub in op[1].materialize(op[2]):
                    emitted += 1
                    yield sub
                continue
            emitted += 1
            yield op


@pytest.mark.parametrize("name", ALL)
class TestAddressDiscipline:
    def test_cached_accesses_stay_inside_arena(self, name):
        """Every load/store address falls inside an allocated region."""
        cfg = MachineConfig(num_cores=2)
        program = get_workload(name).build("cc", cfg, preset="tiny")
        arena = program.arena
        system = CmpSystem(cfg, program)
        checked = 0
        for op in drain_ops(program, system):
            if op[0] in ("ld", "st", "pfs"):
                _, addr, nbytes, _ = op
                assert arena.contains(addr, nbytes), (
                    f"{name}: access [{addr:#x}, +{nbytes}) outside arena"
                )
                checked += 1
        assert checked > 0

    def test_streaming_dma_stays_inside_arena(self, name):
        cfg = MachineConfig(num_cores=2).with_model("str")
        program = get_workload(name).build("str", cfg, preset="tiny")
        arena = program.arena
        system = CmpSystem(cfg, program)
        checked = 0
        for op in drain_ops(program, system):
            if op[0] in ("dget", "dput"):
                _, _tag, addr, nbytes, stride, block = op
                if stride == 0:
                    assert arena.contains(addr, nbytes), (
                        f"{name}: DMA [{addr:#x}, +{nbytes}) outside arena"
                    )
                else:
                    n_blocks = -(-nbytes // block)
                    last = addr + (n_blocks - 1) * stride
                    assert arena.contains(addr, 1)
                    assert arena.contains(last, min(block, nbytes)), (
                        f"{name}: strided DMA tail {last:#x} outside arena"
                    )
                checked += 1
        assert checked > 0


@pytest.mark.parametrize("name", ALL)
class TestWorkUnaffectedByModel:
    def test_same_arena_layout(self, name):
        """Both variants operate on the same logical data."""
        cfg_cc = MachineConfig(num_cores=2)
        cfg_str = cfg_cc.with_model("str")
        wl = get_workload(name)
        a = wl.build("cc", cfg_cc, preset="tiny").arena
        b = wl.build("str", cfg_str, preset="tiny").arena
        shared = set(a.regions) & set(b.regions)
        assert shared, f"{name}: no common regions between variants"
        for region in shared:
            assert a.regions[region][1] == b.regions[region][1]


@pytest.mark.parametrize("name", ALL)
def test_local_store_budget_respected(name):
    """Streaming variants must fit the 24 KB local store at any scale."""
    for preset in ("tiny", "small", "default"):
        cfg = MachineConfig(num_cores=2).with_model("str")
        program = get_workload(name).build("str", cfg, preset=preset)
        system = CmpSystem(cfg, program)
        threads = program.threads(system)
        # Drive each generator one step so allocations (which happen at
        # the top of each thread body) execute.
        for thread in threads:
            next(thread, None)
        for store in system.hierarchy.local_stores:
            assert store.allocated_bytes <= store.capacity_bytes


def test_workload_names_stable():
    assert workload_names() == sorted([
        "mpeg2", "h264", "raytracer", "jpeg_enc", "jpeg_dec", "depth",
        "fem", "fir", "art", "bitonic", "merge",
    ])
